//! The SPARCLE **admission-control service plane** (DESIGN.md §13): a
//! long-running, deterministic front-end that owns a
//! [`sparcle_core::SparcleSystem`] and serves a sustained stream of
//! placement requests instead of one-shot batch experiments.
//!
//! Three mechanisms make the service plane cheaper than per-request
//! admission while preserving its decisions bitwise:
//!
//! * **Micro-batched admission** — arrivals inside one batch window are
//!   coalesced into a single transaction
//!   ([`sparcle_core::system::SystemTxn::submit_all`]) that runs *one*
//!   warm Best-Effort solve per window instead of one per request,
//!   mirroring how batched failures share one blast-radius solve.
//! * **Snapshot reads** — read-only what-if/γ-probe queries are answered
//!   from an immutable [`sparcle_core::StateSnapshot`] (rates, GR
//!   residuals, predicted capacities), so probes never wait on the
//!   writer — even while a commit is in flight.
//! * **Backpressure + SLO-aware shedding** — when arrivals outrun solve
//!   capacity the ingest queue defers whole windows (charged to the
//!   [`sparcle_runtime::SloLedger`] as deferrals) and sheds
//!   lowest-priority requests first (Guaranteed-Rate requests are
//!   protected; ties shed the youngest), charged as sheds.
//!
//! Everything runs in simulated time: the same request stream produces a
//! byte-identical `service_*` telemetry log across runs and across
//! γ-evaluator thread counts (`SystemConfig::assigner_threads`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod service;

pub use service::{AdmissionService, ProbeAnswer, ServiceConfig, ServiceStats, SolveCostModel};
