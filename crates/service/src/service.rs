//! The deterministic admission service loop.
//!
//! [`AdmissionService::run_traced`] consumes a time-ordered stream of
//! [`ServiceRequest`]s. Submissions are queued into the current batch
//! window; every window boundary the queue is drained (up to
//! `max_batch`) into **one** transaction whose deferred-solve epilogue
//! runs a single warm BE solve for the whole batch. Probes are answered
//! immediately from the last committed [`StateSnapshot`] — including
//! while the writer is still busy with a previous solve, which is
//! exactly the snapshot-read protocol the plane exists for.
//!
//! Time is simulated: the writer's solve cost is modeled by
//! [`SolveCostModel`] and advances `writer_free_at`; a window whose
//! boundary falls while the writer is busy is *deferred* wholesale
//! (every queued request is charged one deferral) and re-examined at the
//! next boundary. Requests deferred past `max_defer_windows`, or pushed
//! out of a full ingest queue, are shed — lowest priority first, with
//! Guaranteed-Rate requests protected by an infinite rank.

#[cfg(feature = "telemetry")]
use sparcle_core::telemetry::Event;
use sparcle_core::trace::TraceHandle;
#[cfg(feature = "telemetry")]
use sparcle_core::DEFER_WRITER_BUSY;
use sparcle_core::{
    Admission, DynamicRankingAssigner, ShedCause, SparcleSystem, StateSnapshot, SystemConfig,
};
use sparcle_model::{Application, Network, QoeClass};
use sparcle_runtime::{Monitor, MonitorConfig, SloLedger, TickInput};
use sparcle_workloads::{RequestKind, ServiceRequest};
use std::collections::VecDeque;
use std::sync::Arc;

// The writer cost model is shared with the runtime's background
// defragmenter, so it lives in `sparcle-runtime` and is re-exported
// here for the service plane's historical public path.
pub use sparcle_runtime::SolveCostModel;

/// Tunables of the admission service plane.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Micro-batch window length in sim-seconds; every boundary
    /// `k × batch_window` closes the current batch. Must be positive.
    pub batch_window: f64,
    /// Maximum requests coalesced into one transaction; the remainder
    /// stays queued for the next window.
    pub max_batch: usize,
    /// Ingest queue capacity; an arrival that would overflow it sheds
    /// the lowest-priority queued request (possibly itself).
    pub queue_capacity: usize,
    /// A request deferred past this many windows by backpressure is
    /// shed instead of deferred again.
    pub max_defer_windows: u64,
    /// Simulated writer-busy time per batched solve.
    pub solve_cost: SolveCostModel,
    /// Optional observability monitor ticked at every window close.
    pub monitor: Option<MonitorConfig>,
    /// Configuration of the owned [`SparcleSystem`].
    pub system: SystemConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_window: 1.0,
            max_batch: 64,
            queue_capacity: 256,
            max_defer_windows: 4,
            solve_cost: SolveCostModel::default(),
            monitor: None,
            system: SystemConfig::default(),
        }
    }
}

/// Decision counters of one service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Batched transactions committed.
    pub batches: u64,
    /// Window boundaries deferred because the writer was busy.
    pub windows_deferred: u64,
    /// Placement decisions served (admitted + rejected, not shed).
    pub decisions: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests shed by backpressure (queue overflow or deferral
    /// budget).
    pub shed: u64,
    /// Probes answered from the snapshot.
    pub probes: u64,
    /// Probes whose what-if assignment was feasible.
    pub probes_feasible: u64,
}

/// The answer to a read-only what-if probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeAnswer {
    /// Whether a fresh assignment path would clear admission (for GR
    /// probes the path must also carry the requested minimum rate).
    pub feasible: bool,
    /// The rate the found path would carry (`0.0` when none was found).
    pub rate: f64,
}

/// A queued placement request awaiting its batch window.
#[derive(Debug, Clone)]
struct Pending {
    index: u64,
    arrival: f64,
    app: Arc<Application>,
    class: &'static str,
    /// Shedding rank: BE priority, or `+∞` for GR (never shed before
    /// any BE request).
    rank: f64,
    deferred: u64,
    /// Id of the last provenance event on this request's lineage (the
    /// `service_ingest`, or the latest `service_defer` that parked it);
    /// 0 when provenance is off.
    #[cfg(feature = "telemetry")]
    last_event: u64,
}

/// The admission service: a [`SparcleSystem`] behind an ingest queue,
/// a micro-batch writer, and a snapshot read path.
///
/// `source` materializes the application for a request index — the
/// service is workload-agnostic; [`sparcle_workloads::RequestStream`]
/// supplies *when* requests arrive, the source supplies *what* arrives.
pub struct AdmissionService<F: FnMut(u64) -> Application> {
    system: SparcleSystem,
    config: ServiceConfig,
    source: F,
    /// Immutable read view, refreshed only after each commit.
    snapshot: StateSnapshot,
    /// Dedicated assigner for probes so reads never touch the writer's
    /// γ-cache state.
    probe_assigner: DynamicRankingAssigner,
    ledger: SloLedger,
    monitor: Option<Monitor>,
    stats: ServiceStats,
    decision_waits: Vec<f64>,
    pending: VecDeque<Pending>,
    writer_free_at: f64,
    /// Next window boundary to close is `(window_seq + 1) × batch_window`.
    window_seq: u64,
    shed_since_batch: u64,
    /// Id of the last committed `service_batch` event — the cause of any
    /// deferral its writer-busy tail forces; 0 before the first commit
    /// or when provenance is off.
    #[cfg(feature = "telemetry")]
    last_batch_id: u64,
}

impl<F: FnMut(u64) -> Application> std::fmt::Debug for AdmissionService<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionService")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("pending", &self.pending.len())
            .field("writer_free_at", &self.writer_free_at)
            .field("window_seq", &self.window_seq)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64) -> Application> AdmissionService<F> {
    /// Creates a service over `network` whose requests are materialized
    /// by `source`.
    ///
    /// # Panics
    ///
    /// Panics when `batch_window` is not finite-positive, or when
    /// `max_batch` or `queue_capacity` is zero.
    pub fn new(network: Network, config: ServiceConfig, source: F) -> Self {
        assert!(
            config.batch_window.is_finite() && config.batch_window > 0.0,
            "batch_window must be finite and positive"
        );
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(
            config.queue_capacity > 0,
            "queue_capacity must be at least 1"
        );
        let probe_assigner =
            DynamicRankingAssigner::with_threads(config.system.assigner_threads.max(1))
                .with_repr(config.system.graph_repr);
        let monitor = config.monitor.clone().map(Monitor::new);
        let system = SparcleSystem::with_config(network, config.system.clone());
        let snapshot = system.snapshot();
        AdmissionService {
            system,
            config,
            source,
            snapshot,
            probe_assigner,
            ledger: SloLedger::default(),
            monitor,
            stats: ServiceStats::default(),
            decision_waits: Vec::new(),
            pending: VecDeque::new(),
            writer_free_at: 0.0,
            window_seq: 0,
            shed_since_batch: 0,
            #[cfg(feature = "telemetry")]
            last_batch_id: 0,
        }
    }

    /// Drives the service over a time-ordered request stream without
    /// telemetry. See [`Self::run_traced`].
    pub fn run(&mut self, requests: impl IntoIterator<Item = ServiceRequest>) {
        self.run_traced(requests, TraceHandle::none());
    }

    /// Drives the service over a time-ordered request stream, then
    /// drains every queued request through its (possibly deferred)
    /// batch window. Emits `service_*` telemetry events into `trace`.
    pub fn run_traced(
        &mut self,
        requests: impl IntoIterator<Item = ServiceRequest>,
        trace: TraceHandle<'_>,
    ) {
        for request in requests {
            self.advance_to(request.time, trace);
            match request.kind {
                RequestKind::Admit => self.enqueue(request, trace),
                RequestKind::Probe => {
                    self.probe(request, trace);
                }
            }
        }
        // Past the stream: keep closing windows until the queue drains
        // (deferred windows eventually pass `writer_free_at`).
        while !self.pending.is_empty() {
            let boundary = (self.window_seq + 1) as f64 * self.config.batch_window;
            self.close_window(boundary, trace);
            self.window_seq += 1;
        }
        trace.counter("service.batches", self.stats.batches);
        trace.counter("service.decisions", self.stats.decisions);
        trace.counter("service.admitted", self.stats.admitted);
        trace.counter("service.rejected", self.stats.rejected);
        trace.counter("service.shed", self.stats.shed);
        trace.counter("service.probes", self.stats.probes);
        trace.counter("service.deferrals", self.ledger.deferrals());
    }

    /// Closes every window boundary at or before `t`, fast-forwarding
    /// over empty stretches without iterating window by window.
    fn advance_to(&mut self, t: f64, trace: TraceHandle<'_>) {
        loop {
            let boundary = (self.window_seq + 1) as f64 * self.config.batch_window;
            if boundary > t {
                return;
            }
            if self.pending.is_empty() {
                // Nothing queued: no boundary up to `t` forms a batch or
                // defers anything, so skipping them is behaviourally
                // identical (the empty-window no-op).
                let skip = (t / self.config.batch_window).floor() as u64;
                self.window_seq = self.window_seq.max(skip);
                return;
            }
            self.close_window(boundary, trace);
            self.window_seq += 1;
        }
    }

    /// Queues one submission; on overflow sheds the lowest-ranked
    /// queued request (possibly the one that just arrived).
    fn enqueue(&mut self, request: ServiceRequest, trace: TraceHandle<'_>) {
        let app = Arc::new((self.source)(request.index));
        let (class, rank) = class_and_rank(&app);
        // Mint the lineage: the ingest event is the causal root of every
        // later event about this request.
        #[cfg(feature = "telemetry")]
        let ingest_id = if trace.is_enabled() && trace.provenance_enabled() {
            trace.event(&Event::ServiceIngest {
                time: request.time,
                request: request.index,
                lineage: request.index,
                class: class.to_owned(),
            })
        } else {
            0
        };
        self.pending.push_back(Pending {
            index: request.index,
            arrival: request.time,
            app,
            class,
            rank,
            deferred: 0,
            #[cfg(feature = "telemetry")]
            last_event: ingest_id,
        });
        if self.pending.len() > self.config.queue_capacity {
            let mut worst = 0;
            for (i, p) in self.pending.iter().enumerate() {
                let w = &self.pending[worst];
                if p.rank < w.rank || (p.rank == w.rank && p.index > w.index) {
                    worst = i;
                }
            }
            let victim = self.pending.remove(worst).expect("index in range");
            self.shed(victim, request.time, ShedCause::QueueOverflow, trace);
        }
    }

    /// Answers a what-if probe from the immutable snapshot — never
    /// touches the writer's state, so it works mid-commit.
    fn probe(&mut self, request: ServiceRequest, trace: TraceHandle<'_>) -> ProbeAnswer {
        let app = (self.source)(request.index);
        // BE probes see the predicted capacities an equal-priority
        // arrival would be admitted against; GR probes see the raw GR
        // residual, exactly like the admission path.
        let capacities = match app.qoe() {
            QoeClass::BestEffort { priority, .. } => self.snapshot.predicted_capacities(*priority),
            QoeClass::GuaranteedRate { .. } => self.snapshot.gr_residual().clone(),
        };
        let answer = match self
            .probe_assigner
            .assign(&app, self.system.network(), &capacities)
        {
            Ok(path) => {
                let clears = path.rate.is_finite() && path.rate > self.config.system.min_path_rate;
                let feasible = match app.qoe() {
                    QoeClass::GuaranteedRate { min_rate, .. } => clears && path.rate >= *min_rate,
                    QoeClass::BestEffort { .. } => clears,
                };
                ProbeAnswer {
                    feasible,
                    rate: path.rate,
                }
            }
            Err(_) => ProbeAnswer {
                feasible: false,
                rate: 0.0,
            },
        };
        self.stats.probes += 1;
        if answer.feasible {
            self.stats.probes_feasible += 1;
        }
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            trace.event(&Event::ServiceProbe {
                time: request.time,
                request: request.index,
                lineage: request.index,
                feasible: answer.feasible,
                rate: answer.rate,
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = trace;
        answer
    }

    /// Closes the window ending at `t`: defers wholesale if the writer
    /// is still busy, otherwise commits one batched transaction.
    fn close_window(&mut self, t: f64, trace: TraceHandle<'_>) {
        if self.writer_free_at > t {
            // Backpressure: the previous solve is still running. Every
            // queued request is charged one deferral; requests past
            // their deferral budget are shed rather than parked again.
            self.stats.windows_deferred += 1;
            self.ledger.record_deferrals(self.pending.len() as u64);
            // The deferral is caused by the batch whose writer-busy tail
            // covers this boundary; it in turn becomes the latest
            // lineage event of everything it parked (or pushed over its
            // deferral budget).
            #[cfg(feature = "telemetry")]
            if trace.is_enabled() && trace.provenance_enabled() {
                // Causes: the batch whose solve is still running, plus
                // the latest lineage event of every request it parks —
                // so a later shed still chains back to its ingest
                // through this deferral.
                let mut causes: Vec<u64> = Vec::with_capacity(self.pending.len() + 1);
                if self.last_batch_id != 0 {
                    causes.push(self.last_batch_id);
                }
                causes.extend(
                    self.pending
                        .iter()
                        .map(|p| p.last_event)
                        .filter(|&c| c != 0),
                );
                causes.sort_unstable();
                causes.dedup();
                let defer_id = trace.event_caused(
                    &Event::ServiceDefer {
                        time: t,
                        window: self.window_seq,
                        queue_depth: self.pending.len() as u64,
                        writer_free: self.writer_free_at,
                        cause: DEFER_WRITER_BUSY.to_owned(),
                    },
                    &causes,
                );
                if defer_id != 0 {
                    for p in self.pending.iter_mut() {
                        p.last_event = defer_id;
                    }
                }
            }
            let budget = self.config.max_defer_windows;
            let mut kept = VecDeque::with_capacity(self.pending.len());
            let mut over: Vec<Pending> = Vec::new();
            for mut p in self.pending.drain(..) {
                p.deferred += 1;
                if p.deferred > budget {
                    over.push(p);
                } else {
                    kept.push_back(p);
                }
            }
            self.pending = kept;
            for victim in over {
                self.shed(victim, t, ShedCause::DeferBudget, trace);
            }
            self.tick_monitor(t, trace);
            return;
        }

        let take = self.pending.len().min(self.config.max_batch);
        if take == 0 {
            return;
        }
        let batch: Vec<Pending> = self.pending.drain(..take).collect();
        let apps: Vec<Arc<Application>> = batch.iter().map(|p| Arc::clone(&p.app)).collect();

        // Accrue the BE-rate integral at the pre-commit rates before the
        // batch changes them.
        self.accrue(t);

        let solves_before = self.system.state_stats().solves;
        let admissions = {
            let mut txn = self.system.begin();
            let admissions = txn
                .submit_all(&apps)
                .expect("service batch: application from the request source failed validation");
            txn.commit();
            admissions
        };
        let batch_solves = self.system.state_stats().solves - solves_before;
        // Publish the post-commit state to the read path.
        self.snapshot = self.system.snapshot();

        let admitted = admissions.iter().filter(|a| a.is_admitted()).count() as u64;
        let rejected = take as u64 - admitted;

        // The batch event precedes its member decisions so every
        // decision can cite the commit that produced it as a cause.
        #[cfg(feature = "telemetry")]
        let batch_id = if trace.is_enabled() {
            trace.event(&Event::ServiceBatch {
                time: t,
                window: self.window_seq,
                size: take as u64,
                admitted,
                rejected,
                shed: self.shed_since_batch,
                queue_depth: self.pending.len() as u64,
                solves: batch_solves,
            })
        } else {
            0
        };
        #[cfg(not(feature = "telemetry"))]
        let _ = batch_solves;

        for (p, admission) in batch.iter().zip(&admissions) {
            let wait = t - p.arrival;
            self.decision_waits.push(wait);
            self.stats.decisions += 1;
            let (outcome, rate, cause) = match admission {
                Admission::Admitted(id) => {
                    ("admitted", self.snapshot.rate_of(*id).unwrap_or(0.0), None)
                }
                Admission::Rejected(reason) => ("rejected", 0.0, Some(reason.cause_code())),
            };
            self.ledger.record_arrival(admission.is_admitted());
            #[cfg(feature = "telemetry")]
            if trace.is_enabled() {
                let mut causes = [0u64; 2];
                let mut n = 0;
                if p.last_event != 0 {
                    causes[n] = p.last_event;
                    n += 1;
                }
                if batch_id != 0 {
                    causes[n] = batch_id;
                    n += 1;
                }
                trace.event_caused(
                    &Event::ServiceDecision {
                        time: t,
                        request: p.index,
                        lineage: p.index,
                        class: p.class.to_owned(),
                        outcome: outcome.to_owned(),
                        wait,
                        rate,
                        cause: cause.map(str::to_owned),
                    },
                    &causes[..n],
                );
            }
            #[cfg(not(feature = "telemetry"))]
            let _ = (outcome, rate, cause);
        }
        self.stats.batches += 1;
        self.stats.admitted += admitted;
        self.stats.rejected += rejected;
        self.writer_free_at = t + self.config.solve_cost.batch_cost(take);
        #[cfg(feature = "telemetry")]
        {
            self.last_batch_id = batch_id;
        }
        self.shed_since_batch = 0;
        self.tick_monitor(t, trace);
    }

    /// Drops one request under backpressure, charging the ledger and
    /// attributing the shed to its cause code.
    fn shed(&mut self, victim: Pending, t: f64, cause: ShedCause, trace: TraceHandle<'_>) {
        self.stats.shed += 1;
        self.shed_since_batch += 1;
        self.ledger.record_shed();
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            let causes = [victim.last_event];
            let n = usize::from(victim.last_event != 0);
            trace.event_caused(
                &Event::ServiceDecision {
                    time: t,
                    request: victim.index,
                    lineage: victim.index,
                    class: victim.class.to_owned(),
                    outcome: "shed".to_owned(),
                    wait: t - victim.arrival,
                    rate: 0.0,
                    cause: Some(cause.code().to_owned()),
                },
                &causes[..n],
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (victim.class, t, trace, cause);
    }

    /// Accrues the ledger's integrals up to `t` at the current rates.
    fn accrue(&mut self, t: f64) {
        let be_rate: f64 = self.system.be_apps().iter().map(|a| a.allocated_rate).sum();
        self.ledger.advance_to(t, [], be_rate);
    }

    /// Folds the window close into the observability monitor, emitting
    /// `monitor_*` events exactly like the churn runtime does.
    fn tick_monitor(&mut self, t: f64, trace: TraceHandle<'_>) {
        let Some(monitor) = self.monitor.as_mut() else {
            return;
        };
        let stats = self.system.state_stats();
        let input = TickInput {
            gr_violation_seconds: self.ledger.total_gr_violation_seconds(),
            arrivals: self.ledger.arrivals(),
            admitted: self.ledger.admitted(),
            cache_hits: stats.gamma_cache_hits,
            cache_misses: stats.gamma_cache_misses,
            solves: stats.solves,
            warm_inner_iters: stats.inner_iters_warm,
            be_rate: self.system.be_apps().iter().map(|a| a.allocated_rate).sum(),
            queue_depth: self.pending.len() as u64,
            backlog: self.pending.iter().filter(|p| p.deferred > 0).count() as u64,
            live: (self.system.be_apps().len() + self.system.gr_apps().len()) as u64,
            migrations: self.ledger.migrations(),
        };
        let sample = monitor.tick(t, &input);
        trace.counter("service.monitor_ticks", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            trace.event(&Event::MonitorSnapshot {
                time: sample.time,
                window: sample.window,
                gr_burn: sample.gr_burn,
                gr_violation_s: sample.gr_violation_s,
                be_rate: sample.be_rate,
                arrival_rate: sample.arrival_rate,
                admit_rate: sample.admit_rate,
                cache_hit_rate: sample.cache_hit_rate,
                cache_lookups: sample.cache_lookups,
                warm_iters_per_solve: sample.warm_iters_per_solve,
                solves: sample.solves,
                queue_depth: sample.queue_depth,
                queue_p95: sample.queue_p95,
                backlog: sample.backlog,
                live: sample.live,
                alerts_firing: sample.alerts_firing,
            });
            for tr in &sample.transitions {
                trace.event(&Event::MonitorAlert {
                    time: t,
                    rule: tr.rule.to_owned(),
                    state: if tr.firing { "firing" } else { "cleared" }.to_owned(),
                    value: tr.value,
                    threshold: tr.threshold,
                });
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = sample;
    }

    /// The owned scheduling system (read-only).
    pub fn system(&self) -> &SparcleSystem {
        &self.system
    }

    /// The last committed state snapshot the read path serves from.
    pub fn snapshot(&self) -> &StateSnapshot {
        &self.snapshot
    }

    /// The SLO ledger charged with sheds, deferrals, and admissions.
    pub fn ledger(&self) -> &SloLedger {
        &self.ledger
    }

    /// Decision counters of the run so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Sim-time waits (arrival → decision) of every served decision, in
    /// decision order. Shed requests are excluded.
    pub fn decision_waits(&self) -> &[f64] {
        &self.decision_waits
    }

    /// Nearest-rank quantile of the decision waits (`NaN` when no
    /// decision was served). `q` is clamped to `[0, 1]`.
    pub fn decision_wait_quantile(&self, q: f64) -> f64 {
        if self.decision_waits.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.decision_waits.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// The request's class label and shedding rank (GR outranks every BE).
fn class_and_rank(app: &Application) -> (&'static str, f64) {
    match app.qoe() {
        QoeClass::GuaranteedRate { .. } => ("gr", f64::INFINITY),
        QoeClass::BestEffort { priority, .. } => ("be", *priority),
    }
}
