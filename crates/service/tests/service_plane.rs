//! Batch-coalescing edge cases and backpressure behaviour of the
//! admission service plane, plus a property test proving that — with
//! shedding disabled — any interleaving of submissions and probes
//! reaches exactly the sequential-admission end state.

use proptest::collection::vec;
use proptest::prelude::*;
use sparcle_core::SparcleSystem;
use sparcle_model::{
    Application, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
};
use sparcle_service::{AdmissionService, ServiceConfig, SolveCostModel};
use sparcle_workloads::{ArrivalTrace, RequestKind, RequestStream, ServiceRequest};

fn star_network() -> Network {
    let mut nb = NetworkBuilder::new();
    let hub = nb.add_ncp("hub", ResourceVec::cpu(50.0));
    for i in 0..4 {
        let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(100.0));
        nb.add_link(format!("l{i}"), hub, leaf, 500.0).unwrap();
    }
    nb.build().unwrap()
}

fn pipeline_app(qoe: QoeClass, cycles: f64, bits: f64) -> Application {
    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("s", ResourceVec::new());
    let w = tb.add_ct("w", ResourceVec::cpu(cycles));
    let t = tb.add_ct("t", ResourceVec::new());
    tb.add_tt("sw", s, w, bits).unwrap();
    tb.add_tt("wt", w, t, bits / 10.0).unwrap();
    let graph = tb.build().unwrap();
    Application::new(graph, qoe, [(s, NcpId::new(0)), (t, NcpId::new(0))]).unwrap()
}

/// The default workload: mostly BE with cycling priorities, every 7th
/// request GR with a small guarantee.
fn mixed_app(index: u64) -> Application {
    if (index + 1).is_multiple_of(7) {
        pipeline_app(QoeClass::guaranteed_rate(0.5, 0.0), 20.0, 50.0)
    } else {
        let priority = 1.0 + (index % 5) as f64;
        pipeline_app(QoeClass::best_effort(priority), 10.0, 50.0)
    }
}

fn free_writer() -> SolveCostModel {
    SolveCostModel {
        fixed: 0.0,
        per_request: 0.0,
    }
}

#[test]
fn probe_only_stream_commits_nothing() {
    let config = ServiceConfig::default();
    let mut service = AdmissionService::new(star_network(), config, mixed_app);
    let requests =
        RequestStream::new(ArrivalTrace::Poisson { rate: 2.0 }, 20.0, 11).with_probe_every(1);
    service.run(requests);
    let stats = *service.stats();
    assert!(stats.probes > 10, "probe stream produced {stats:?}");
    assert!(
        stats.probes_feasible > 0,
        "an empty network must be feasible"
    );
    assert_eq!(
        (stats.batches, stats.decisions, stats.admitted, stats.shed),
        (0, 0, 0, 0),
        "probes must never form a batch"
    );
    // Empty windows are a no-op right down to the state core.
    assert_eq!(service.system().state_stats().solves, 0);
    assert!(service.system().be_apps().is_empty());
    assert!(service.snapshot().is_empty());
}

#[test]
fn windows_of_one_match_sequential_submission_bitwise() {
    let config = ServiceConfig {
        batch_window: 1.0,
        solve_cost: free_writer(),
        ..ServiceConfig::default()
    };
    let mut service = AdmissionService::new(star_network(), config.clone(), mixed_app);
    // One submission per window: every batch has size 1, which the core
    // guarantees is bitwise identical to a plain `submit`.
    let requests = (0..12).map(|i| ServiceRequest {
        time: i as f64 + 0.5,
        index: i,
        kind: RequestKind::Admit,
    });
    service.run(requests);

    let mut reference = SparcleSystem::with_config(star_network(), config.system);
    for i in 0..12 {
        reference.submit(mixed_app(i)).unwrap();
    }

    assert_eq!(service.stats().decisions, 12);
    assert_eq!(
        service.stats().admitted as usize,
        reference.be_apps().len() + reference.gr_apps().len()
    );
    let service_rates: Vec<(usize, f64)> = service
        .system()
        .be_apps()
        .iter()
        .map(|a| (a.id.index(), a.allocated_rate))
        .collect();
    let reference_rates: Vec<(usize, f64)> = reference
        .be_apps()
        .iter()
        .map(|a| (a.id.index(), a.allocated_rate))
        .collect();
    assert_eq!(
        service_rates, reference_rates,
        "size-1 batches must be bitwise"
    );
    assert_eq!(service.system().gr_residual(), reference.gr_residual());
}

#[test]
fn flash_crowd_batches_share_solves() {
    let config = ServiceConfig {
        batch_window: 2.0,
        solve_cost: free_writer(),
        ..ServiceConfig::default()
    };
    let mut service = AdmissionService::new(star_network(), config, mixed_app);
    let requests = RequestStream::new(
        ArrivalTrace::FlashCrowd {
            rate: 0.5,
            burst_rate: 10.0,
            burst_start: 4.0,
            burst_end: 12.0,
        },
        16.0,
        23,
    );
    let total: u64 = {
        let all: Vec<_> = requests.clone().collect();
        all.len() as u64
    };
    service.run(requests);
    let stats = *service.stats();
    assert_eq!(stats.decisions + stats.shed, total, "every request decided");
    assert_eq!(stats.shed, 0, "default queue absorbs this crowd");
    assert!(stats.batches < stats.decisions, "windows must coalesce");
    let be_admitted = service.system().be_apps().len() as u64;
    let solves = service.system().state_stats().solves;
    assert!(
        solves < be_admitted,
        "batched admission must solve less than once per admitted BE app \
         (solves {solves}, admitted {be_admitted})"
    );
    assert_eq!(service.ledger().arrivals(), total);
    assert_eq!(service.ledger().admitted(), stats.admitted);
}

#[test]
fn overflow_sheds_lowest_priority_first_and_protects_gr() {
    let config = ServiceConfig {
        batch_window: 10.0,
        queue_capacity: 2,
        solve_cost: free_writer(),
        ..ServiceConfig::default()
    };
    let factory = |index: u64| match index {
        0 => pipeline_app(QoeClass::best_effort(5.0), 10.0, 50.0),
        1 => pipeline_app(QoeClass::guaranteed_rate(0.5, 0.0), 20.0, 50.0),
        2 => pipeline_app(QoeClass::best_effort(1.0), 10.0, 50.0),
        _ => pipeline_app(QoeClass::best_effort(2.0), 10.0, 50.0),
    };
    let mut service = AdmissionService::new(star_network(), config, factory);
    let requests = (0..4).map(|i| ServiceRequest {
        time: 0.5 + i as f64 * 0.1,
        index: i,
        kind: RequestKind::Admit,
    });
    service.run(requests);
    let stats = *service.stats();
    // Queue of 2: priorities 1.0 then 2.0 are shed on arrival; the
    // priority-5 BE app and the (infinitely ranked) GR app survive.
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.decisions, 2);
    assert_eq!(stats.admitted, 2);
    assert_eq!(service.system().gr_apps().len(), 1, "GR must be protected");
    assert_eq!(service.system().be_apps().len(), 1);
    assert_eq!(service.system().be_apps()[0].priority, 5.0);
    assert_eq!(service.ledger().sheds(), 2);
}

#[test]
fn busy_writer_defers_windows_then_sheds_over_budget() {
    let config = ServiceConfig {
        batch_window: 1.0,
        max_defer_windows: 1,
        solve_cost: SolveCostModel {
            fixed: 5.0,
            per_request: 0.0,
        },
        ..ServiceConfig::default()
    };
    let mut service = AdmissionService::new(star_network(), config, mixed_app);
    // First submission commits at t=1 and occupies the writer until
    // t=6; the second (arriving at 1.5) sees its windows at 2.0 and 3.0
    // deferred, exhausting a budget of one deferral — it is shed.
    let requests = [
        ServiceRequest {
            time: 0.5,
            index: 0,
            kind: RequestKind::Admit,
        },
        ServiceRequest {
            time: 1.5,
            index: 1,
            kind: RequestKind::Admit,
        },
    ];
    service.run(requests);
    let stats = *service.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.shed, 1, "over-budget request must be shed");
    assert!(stats.windows_deferred >= 2, "stats: {stats:?}");
    assert_eq!(service.ledger().deferrals(), 2);
    assert_eq!(service.ledger().sheds(), 1);
}

#[test]
fn rejected_batch_leaves_snapshot_readers_unperturbed() {
    // Index 0 is placeable; every later submission asks for an absurd
    // per-unit cycle count no path can clear, so the whole second batch
    // is rejected and the committed state must be byte-for-byte the
    // state after the first batch.
    let factory = |index: u64| {
        if index == 0 {
            pipeline_app(QoeClass::best_effort(1.0), 10.0, 50.0)
        } else {
            pipeline_app(QoeClass::best_effort(1.0), 1e12, 50.0)
        }
    };
    let config = ServiceConfig {
        batch_window: 1.0,
        solve_cost: free_writer(),
        ..ServiceConfig::default()
    };
    let mut service = AdmissionService::new(star_network(), config, factory);
    service.run([ServiceRequest {
        time: 0.5,
        index: 0,
        kind: RequestKind::Admit,
    }]);
    let snapshot_before = service.snapshot().clone();
    assert_eq!(snapshot_before.len(), 1);

    let mut requests: Vec<ServiceRequest> = (1..4)
        .map(|i| ServiceRequest {
            time: 1.0 + i as f64 * 0.1,
            index: i,
            kind: RequestKind::Admit,
        })
        .collect();
    requests.push(ServiceRequest {
        time: 1.4,
        index: 4,
        kind: RequestKind::Probe,
    });
    service.run(requests);

    assert_eq!(service.stats().rejected, 3);
    assert_eq!(
        service.snapshot(),
        &snapshot_before,
        "an all-rejected batch must leave the read snapshot untouched"
    );
}

/// One step of a generated request interleaving.
#[derive(Debug, Clone)]
struct Step {
    gap: f64,
    probe: bool,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    vec(
        (0.01f64..1.5, 0u32..2).prop_map(|(gap, probe)| Step {
            gap,
            probe: probe == 1,
        }),
        1..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With a free writer and an unbounded queue (no sheds, no
    /// deferrals), ANY interleaving of submissions and probes reaches
    /// the same *decisions* as sequentially submitting the same
    /// applications in arrival order: identical admitted ids,
    /// placements, and GR residual, bitwise. Probes are pure reads —
    /// they must never perturb the outcome. Final BE rates are NOT
    /// compared bitwise here: both schedules run warm solves with a
    /// truncated barrier schedule, so each carries its own truncation
    /// error toward the same proportional-fair optimum (exact rate
    /// equality for size-1 batches is covered above).
    #[test]
    fn any_interleaving_matches_sequential_admission(steps in arb_steps()) {
        let config = ServiceConfig {
            batch_window: 1.0,
            solve_cost: free_writer(),
            queue_capacity: usize::MAX,
            max_batch: usize::MAX,
            ..ServiceConfig::default()
        };
        let mut t = 0.0;
        let mut requests = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            t += step.gap;
            requests.push(ServiceRequest {
                time: t,
                index: i as u64,
                kind: if step.probe { RequestKind::Probe } else { RequestKind::Admit },
            });
        }
        let mut service = AdmissionService::new(star_network(), config.clone(), mixed_app);
        service.run(requests.clone());

        let mut reference = SparcleSystem::with_config(star_network(), config.system);
        for request in &requests {
            if request.kind == RequestKind::Admit {
                reference.submit(mixed_app(request.index)).unwrap();
            }
        }

        let admits = requests.iter().filter(|r| r.kind == RequestKind::Admit).count() as u64;
        prop_assert_eq!(service.stats().decisions, admits);
        prop_assert_eq!(service.stats().shed, 0);

        let service_be: Vec<usize> =
            service.system().be_apps().iter().map(|a| a.id.index()).collect();
        let reference_be: Vec<usize> =
            reference.be_apps().iter().map(|a| a.id.index()).collect();
        prop_assert_eq!(service_be, reference_be, "admitted BE ids must match");
        let service_gr: Vec<usize> =
            service.system().gr_apps().iter().map(|a| a.id.index()).collect();
        let reference_gr: Vec<usize> =
            reference.gr_apps().iter().map(|a| a.id.index()).collect();
        prop_assert_eq!(service_gr, reference_gr, "admitted GR ids must match");
        prop_assert_eq!(service.system().gr_residual(), reference.gr_residual());
        let service_snapshot = service.system().snapshot();
        let reference_snapshot = reference.snapshot();
        for app in service.system().be_apps() {
            prop_assert_eq!(
                service_snapshot.elements_of(app.id),
                reference_snapshot.elements_of(app.id),
                "placement of app {} must be bitwise identical",
                app.id.index()
            );
            prop_assert!(
                app.allocated_rate.is_finite() && app.allocated_rate > 0.0,
                "app {} rate {}",
                app.id.index(),
                app.allocated_rate
            );
        }
    }
}
