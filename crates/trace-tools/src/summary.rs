//! Whole-trace rollups: event-kind counts, per-app admission/rate
//! stats from the `runtime_*` family, reconcile aggregates by policy,
//! peak queue depth from the DES samples, and the final counter
//! snapshot.

use std::collections::BTreeMap;

use sparcle_telemetry::Json;

use crate::{kind_of, num_field};

/// Admission and lifetime facts for one application id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppStats {
    /// Service class from the arrival event (empty when unknown).
    pub class: String,
    /// Whether the placement engine admitted the app.
    pub admitted: bool,
    /// Offered rate at arrival.
    pub rate: f64,
    /// Arrival time.
    pub arrived_at: f64,
    /// Departure time, when a `runtime_departure` was seen.
    pub departed_at: Option<f64>,
}

/// Aggregate over all `runtime_reconcile` events of one policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconcileStats {
    /// Number of reconcile passes.
    pub count: u64,
    /// Summed restored placements.
    pub restored: u64,
    /// Summed re-placed placements.
    pub replaced: u64,
    /// Summed failures to re-place.
    pub failed: u64,
    /// Summed reconcile latency (divide by `count` for the mean).
    pub total_latency: f64,
}

/// Aggregate over the admission-service plane's `service_*` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Batched transactions (`service_batch` events).
    pub batches: u64,
    /// Summed batch sizes (divide by `batches` for the mean).
    pub batched_requests: u64,
    /// Summed warm solves charged to batches.
    pub solves: u64,
    /// Highest post-batch ingest queue depth.
    pub peak_queue_depth: u64,
    /// Decision count per outcome (`admitted` / `rejected` / `shed`).
    pub outcomes: BTreeMap<String, u64>,
    /// Summed arrival→decision wait over all decisions.
    pub total_wait: f64,
    /// Largest single arrival→decision wait.
    pub max_wait: f64,
    /// Snapshot probes answered (`service_probe` events).
    pub probes: u64,
    /// Probes whose what-if placement was feasible.
    pub probes_feasible: u64,
}

impl ServiceStats {
    fn is_empty(&self) -> bool {
        self.batches == 0 && self.outcomes.is_empty() && self.probes == 0
    }

    fn decisions(&self) -> u64 {
        self.outcomes.values().sum()
    }
}

/// Negative-decision counts by stable cause code (DESIGN.md §14), plus
/// the per-element displacement rollup that names the bottlenecks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CauseTaxonomy {
    /// Rejections by cause code: `runtime_arrival` with
    /// `admitted=false`, `service_decision` with `outcome="rejected"`,
    /// and `runtime_readmit` with `outcome="failed"`.
    pub rejections: BTreeMap<String, u64>,
    /// Sheds by cause code (`service_decision` with `outcome="shed"`).
    pub sheds: BTreeMap<String, u64>,
    /// Deferred windows by cause code (`service_defer`).
    pub deferrals: BTreeMap<String, u64>,
    /// Displacements by cause code (`runtime_displace`).
    pub displacements: BTreeMap<String, u64>,
    /// Displacements per failing element — the elements that actually
    /// cost placements, most-destructive first in the render.
    pub bottleneck_elements: BTreeMap<String, u64>,
}

impl CauseTaxonomy {
    /// True when the trace carried no cause-coded negative decisions.
    pub fn is_empty(&self) -> bool {
        self.rejections.is_empty()
            && self.sheds.is_empty()
            && self.deferrals.is_empty()
            && self.displacements.is_empty()
    }

    fn add(map: &mut BTreeMap<String, u64>, code: &str) {
        *map.entry(code.to_owned()).or_insert(0) += 1;
    }

    /// Folds one parsed event into the taxonomy (no-op for kinds that
    /// carry no cause code).
    pub fn observe(&mut self, event: &Json) {
        fn cause(e: &Json) -> Option<&str> {
            e.get("cause").and_then(Json::as_str)
        }
        match kind_of(event) {
            "runtime_arrival" if event.get("admitted").and_then(Json::as_bool) == Some(false) => {
                Self::add(&mut self.rejections, cause(event).unwrap_or("?"));
            }
            "runtime_readmit" if event.get("outcome").and_then(Json::as_str) == Some("failed") => {
                Self::add(&mut self.rejections, cause(event).unwrap_or("?"));
            }
            "runtime_displace" => {
                Self::add(&mut self.displacements, cause(event).unwrap_or("?"));
                if let Some(element) = event.get("element").and_then(Json::as_str) {
                    Self::add(&mut self.bottleneck_elements, element);
                }
            }
            "service_decision" => match event.get("outcome").and_then(Json::as_str) {
                Some("rejected") => Self::add(&mut self.rejections, cause(event).unwrap_or("?")),
                Some("shed") => Self::add(&mut self.sheds, cause(event).unwrap_or("?")),
                _ => {}
            },
            "service_defer" => Self::add(&mut self.deferrals, cause(event).unwrap_or("?")),
            _ => {}
        }
    }

    /// The cause-taxonomy table: one row per (family, code), then the
    /// top bottleneck elements by displacement count.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("\ncause taxonomy (negative decisions by cause code):\n");
        for (family, map) in [
            ("rejected", &self.rejections),
            ("shed", &self.sheds),
            ("deferred", &self.deferrals),
            ("displaced", &self.displacements),
        ] {
            for (code, count) in map {
                out.push_str(&format!("  {family:<10} {code:<28} {count:>6}\n"));
            }
        }
        if !self.bottleneck_elements.is_empty() {
            out.push_str("  top bottleneck elements (by displacements):\n");
            let mut elements: Vec<(&String, &u64)> = self.bottleneck_elements.iter().collect();
            elements.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (element, count) in elements.into_iter().take(5) {
                out.push_str(&format!("    {element:<26} {count:>6}\n"));
            }
        }
        out
    }
}

/// Folds a whole parsed trace into its [`CauseTaxonomy`].
pub fn collect_causes(events: &[Json]) -> CauseTaxonomy {
    let mut taxonomy = CauseTaxonomy::default();
    for event in events {
        taxonomy.observe(event);
    }
    taxonomy
}

/// Everything the `summary` subcommand reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Event count per `type` tag.
    pub kind_counts: BTreeMap<String, u64>,
    /// Per-app rollups keyed by app id (`runtime_arrival`/`_departure`).
    pub apps: BTreeMap<u64, AppStats>,
    /// Reconcile aggregates keyed by policy name.
    pub reconciles: BTreeMap<String, ReconcileStats>,
    /// Admission-service plane rollup (`service_*` events).
    pub service: ServiceStats,
    /// Negative decisions by cause code (DESIGN.md §14).
    pub causes: CauseTaxonomy,
    /// Highest `sim_queue_depth.depth` sample.
    pub peak_queue_depth: Option<u64>,
    /// Last `sim_queue_depth.processed` sample (monotone in the DES).
    pub processed: Option<u64>,
    /// Counters from the final snapshot line, in snapshot order.
    pub counters: Vec<(String, f64)>,
}

/// Folds a parsed trace into a [`TraceSummary`]. Unknown event kinds
/// are counted but otherwise ignored, so newer traces still summarize.
pub fn summarize(events: &[Json]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for event in events {
        let kind = kind_of(event);
        *s.kind_counts.entry(kind.to_owned()).or_insert(0) += 1;
        s.causes.observe(event);
        match kind {
            "runtime_arrival" => {
                let Some(app) = num_field(event, "app").map(|v| v as u64) else {
                    continue;
                };
                let entry = s.apps.entry(app).or_default();
                entry.class = event
                    .get("class")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                entry.admitted = event
                    .get("admitted")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                entry.rate = num_field(event, "rate").unwrap_or(0.0);
                entry.arrived_at = num_field(event, "time").unwrap_or(0.0);
            }
            "runtime_departure" => {
                let Some(app) = num_field(event, "app").map(|v| v as u64) else {
                    continue;
                };
                s.apps.entry(app).or_default().departed_at = num_field(event, "time");
            }
            "runtime_reconcile" => {
                let policy = event
                    .get("policy")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let entry = s.reconciles.entry(policy).or_default();
                entry.count += 1;
                entry.restored += num_field(event, "restored").map_or(0, |v| v as u64);
                entry.replaced += num_field(event, "replaced").map_or(0, |v| v as u64);
                entry.failed += num_field(event, "failed").map_or(0, |v| v as u64);
                entry.total_latency += num_field(event, "latency").unwrap_or(0.0);
            }
            "service_batch" => {
                s.service.batches += 1;
                s.service.batched_requests += num_field(event, "size").map_or(0, |v| v as u64);
                s.service.solves += num_field(event, "solves").map_or(0, |v| v as u64);
                if let Some(depth) = num_field(event, "queue_depth").map(|v| v as u64) {
                    s.service.peak_queue_depth = s.service.peak_queue_depth.max(depth);
                }
            }
            "service_decision" => {
                let outcome = event
                    .get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned();
                *s.service.outcomes.entry(outcome).or_insert(0) += 1;
                if let Some(wait) = num_field(event, "wait") {
                    s.service.total_wait += wait;
                    s.service.max_wait = s.service.max_wait.max(wait);
                }
            }
            "service_probe" => {
                s.service.probes += 1;
                if event.get("feasible").and_then(Json::as_bool) == Some(true) {
                    s.service.probes_feasible += 1;
                }
            }
            "sim_queue_depth" => {
                if let Some(depth) = num_field(event, "depth").map(|v| v as u64) {
                    s.peak_queue_depth = Some(s.peak_queue_depth.unwrap_or(0).max(depth));
                }
                if let Some(p) = num_field(event, "processed").map(|v| v as u64) {
                    s.processed = Some(p);
                }
            }
            "snapshot" => {
                if let Some(Json::Obj(pairs)) = event.get("counters") {
                    for (name, value) in pairs {
                        if let Some(v) = value.as_num() {
                            s.counters.push((name.clone(), v));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    s
}

impl TraceSummary {
    /// How many apps the trace admitted (vs. total seen arriving).
    pub fn admitted_count(&self) -> (usize, usize) {
        let admitted = self.apps.values().filter(|a| a.admitted).count();
        (admitted, self.apps.len())
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("events by kind:\n");
        for (kind, count) in &self.kind_counts {
            out.push_str(&format!("  {kind:<24} {count:>8}\n"));
        }
        if !self.apps.is_empty() {
            let (admitted, total) = self.admitted_count();
            out.push_str(&format!("\napps: {admitted}/{total} admitted\n"));
            for (app, stats) in &self.apps {
                let lifetime = match stats.departed_at {
                    Some(d) => format!("{:.3}..{d:.3}", stats.arrived_at),
                    None => format!("{:.3}..", stats.arrived_at),
                };
                out.push_str(&format!(
                    "  app {app:>4} [{}] {} rate {:.3} alive {lifetime}\n",
                    stats.class,
                    if stats.admitted {
                        "admitted"
                    } else {
                        "rejected"
                    },
                    stats.rate,
                ));
            }
        }
        if !self.reconciles.is_empty() {
            out.push_str("\nreconcile passes by policy:\n");
            for (policy, r) in &self.reconciles {
                let mean = if r.count == 0 {
                    0.0
                } else {
                    r.total_latency / r.count as f64
                };
                out.push_str(&format!(
                    "  {policy:<12} passes {:>4}  restored {:>4}  replaced {:>4}  failed {:>4}  \
                     mean latency {mean:.3}\n",
                    r.count, r.restored, r.replaced, r.failed,
                ));
            }
        }
        if !self.service.is_empty() {
            let svc = &self.service;
            let decisions = svc.decisions();
            let mean_batch = if svc.batches == 0 {
                0.0
            } else {
                svc.batched_requests as f64 / svc.batches as f64
            };
            let mean_wait = if decisions == 0 {
                0.0
            } else {
                svc.total_wait / decisions as f64
            };
            out.push_str("\nadmission service (service_* rollup):\n");
            out.push_str(&format!(
                "  batches {:>4}  requests {:>5}  mean batch {mean_batch:.2}  solves {:>4}  \
                 peak queue {}\n",
                svc.batches, svc.batched_requests, svc.solves, svc.peak_queue_depth,
            ));
            out.push_str(&format!(
                "  decisions {decisions} ({})  mean wait {mean_wait:.3}  max wait {:.3}\n",
                svc.outcomes
                    .iter()
                    .map(|(o, n)| format!("{o} {n}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                svc.max_wait,
            ));
            out.push_str(&format!(
                "  probes {} ({} feasible)\n",
                svc.probes, svc.probes_feasible,
            ));
        }
        out.push_str(&self.causes.render());
        if let Some(peak) = self.peak_queue_depth {
            out.push_str(&format!(
                "\nDES: peak queue depth {peak}, events processed {}\n",
                self.processed.unwrap_or(0)
            ));
        }
        out.push_str(&self.render_state_core());
        if !self.counters.is_empty() {
            out.push_str("\nfinal counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<32} {value}\n"));
            }
        }
        out
    }

    fn counter(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Rolls the `system.*` state-core work counters (exported by the
    /// churn runtime's final snapshot) into derived health ratios:
    /// warm-solve share, Newton iterations per solve, rollback rate,
    /// and the γ-cache hit rate. Empty when the trace carries none.
    fn render_state_core(&self) -> String {
        if !self.counters.iter().any(|(n, _)| n.starts_with("system.")) {
            return String::new();
        }
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let mut out = String::new();
        out.push_str("\nstate core (system.* rollup):\n");
        let (solves, warm, cold) = (
            self.counter("system.solves"),
            self.counter("system.warm_solves"),
            self.counter("system.cold_solves"),
        );
        out.push_str(&format!(
            "  solves {solves} (warm {warm} / cold {cold}, warm share {:.1}%)\n",
            100.0 * ratio(warm, solves)
        ));
        out.push_str(&format!(
            "  newton iters/solve: warm {:.1}, cold {:.1}\n",
            ratio(self.counter("system.warm_inner_iters"), warm),
            ratio(self.counter("system.cold_inner_iters"), cold),
        ));
        out.push_str(&format!(
            "  residual maintenance: {} element updates, {} full recomputes\n",
            self.counter("system.residual_element_updates"),
            self.counter("system.residual_full_recomputes"),
        ));
        let (commits, rollbacks) = (
            self.counter("system.txn_commits"),
            self.counter("system.txn_rollbacks"),
        );
        out.push_str(&format!(
            "  transactions: {commits} commits, {rollbacks} rollbacks ({:.1}% rolled back)\n",
            100.0 * ratio(rollbacks, commits + rollbacks)
        ));
        let (hits, misses) = (
            self.counter("system.gamma_cache_hits"),
            self.counter("system.gamma_cache_misses"),
        );
        out.push_str(&format!(
            "  gamma cache: {hits} hits / {misses} misses ({:.1}% hit rate)\n",
            100.0 * ratio(hits, hits + misses)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_trace;

    fn runtime_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"run_start","name":"t"}"#,
            r#"{"type":"runtime_arrival","time":0.5,"app":0,"class":"gold","admitted":true,"rate":2.5}"#,
            r#"{"type":"runtime_arrival","time":0.7,"app":1,"class":"be","admitted":false,"rate":1.0}"#,
            r#"{"type":"runtime_departure","time":3.0,"app":0}"#,
            r#"{"type":"runtime_reconcile","time":1.0,"policy":"fifo","restored":2,"replaced":1,"failed":0,"latency":0.4}"#,
            r#"{"type":"runtime_reconcile","time":2.0,"policy":"fifo","restored":1,"replaced":0,"failed":1,"latency":0.6}"#,
            r#"{"type":"sim_queue_depth","time":1.0,"depth":4,"processed":10}"#,
            r#"{"type":"sim_queue_depth","time":2.0,"depth":9,"processed":25}"#,
            r#"{"type":"sim_queue_depth","time":3.0,"depth":2,"processed":40}"#,
            r#"{"type":"snapshot","counters":{"engine.rounds":12,"gamma.cache_hits":30}}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn counts_kinds_and_rolls_up_apps() {
        let s = summarize(&runtime_trace());
        assert_eq!(s.kind_counts["runtime_arrival"], 2);
        assert_eq!(s.kind_counts["sim_queue_depth"], 3);
        assert_eq!(s.admitted_count(), (1, 2));
        let app0 = &s.apps[&0];
        assert_eq!(app0.class, "gold");
        assert!(app0.admitted);
        assert_eq!(app0.departed_at, Some(3.0));
        assert_eq!(s.apps[&1].departed_at, None);
    }

    #[test]
    fn aggregates_reconciles_and_queue_depth() {
        let s = summarize(&runtime_trace());
        let fifo = &s.reconciles["fifo"];
        assert_eq!(fifo.count, 2);
        assert_eq!((fifo.restored, fifo.replaced, fifo.failed), (3, 1, 1));
        assert!((fifo.total_latency - 1.0).abs() < 1e-9);
        assert_eq!(s.peak_queue_depth, Some(9));
        assert_eq!(s.processed, Some(40));
    }

    #[test]
    fn captures_snapshot_counters_in_order() {
        let s = summarize(&runtime_trace());
        assert_eq!(
            s.counters,
            vec![
                ("engine.rounds".to_owned(), 12.0),
                ("gamma.cache_hits".to_owned(), 30.0),
            ]
        );
    }

    #[test]
    fn render_mentions_every_section() {
        let report = summarize(&runtime_trace()).render();
        assert!(report.contains("events by kind:"));
        assert!(report.contains("apps: 1/2 admitted"));
        assert!(report.contains("reconcile passes by policy:"));
        assert!(report.contains("peak queue depth 9"));
        assert!(report.contains("engine.rounds"));
    }

    #[test]
    fn system_counters_get_a_rollup_section() {
        let lines = [
            r#"{"type":"snapshot","counters":{"system.solves":40,"system.warm_solves":30,"system.cold_solves":10,"system.warm_inner_iters":1500,"system.cold_inner_iters":2100,"system.residual_element_updates":12,"system.residual_full_recomputes":1,"system.txn_commits":36,"system.txn_rollbacks":4,"system.gamma_cache_hits":95,"system.gamma_cache_misses":5}}"#,
        ];
        let report = summarize(&load_trace(&lines.join("\n")).unwrap()).render();
        assert!(report.contains("state core (system.* rollup):"));
        assert!(report.contains("warm share 75.0%"));
        assert!(report.contains("warm 50.0, cold 210.0"));
        assert!(report.contains("10.0% rolled back"));
        assert!(report.contains("95.0% hit rate"));
    }

    #[test]
    fn traces_without_system_counters_skip_the_rollup() {
        let report = summarize(&runtime_trace()).render();
        assert!(!report.contains("state core"));
    }

    fn service_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"service_batch","time":1.0,"window":1,"size":3,"admitted":2,"rejected":1,"shed":0,"queue_depth":2,"solves":1}"#,
            r#"{"type":"service_batch","time":2.0,"window":2,"size":5,"admitted":5,"rejected":0,"shed":1,"queue_depth":7,"solves":1}"#,
            r#"{"type":"service_decision","time":1.0,"request":0,"class":"be","outcome":"admitted","wait":0.4,"rate":1.5}"#,
            r#"{"type":"service_decision","time":1.0,"request":1,"class":"gr","outcome":"rejected","wait":0.2,"rate":0.0}"#,
            r#"{"type":"service_decision","time":2.0,"request":2,"class":"be","outcome":"shed","wait":1.4,"rate":0.0}"#,
            r#"{"type":"service_probe","time":1.5,"request":3,"feasible":true,"rate":2.0}"#,
            r#"{"type":"service_probe","time":1.6,"request":4,"feasible":false,"rate":0.0}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn service_events_get_a_rollup() {
        let s = summarize(&service_trace());
        let svc = &s.service;
        assert_eq!(svc.batches, 2);
        assert_eq!(svc.batched_requests, 8);
        assert_eq!(svc.solves, 2);
        assert_eq!(svc.peak_queue_depth, 7);
        assert_eq!(svc.outcomes["admitted"], 1);
        assert_eq!(svc.outcomes["rejected"], 1);
        assert_eq!(svc.outcomes["shed"], 1);
        assert_eq!(svc.decisions(), 3);
        assert!((svc.total_wait - 2.0).abs() < 1e-9);
        assert_eq!(svc.max_wait, 1.4);
        assert_eq!((svc.probes, svc.probes_feasible), (2, 1));
    }

    #[test]
    fn service_rollup_renders_a_section() {
        let report = summarize(&service_trace()).render();
        assert!(report.contains("admission service (service_* rollup):"));
        assert!(report.contains("mean batch 4.00"), "{report}");
        assert!(
            report.contains("admitted 1, rejected 1, shed 1"),
            "{report}"
        );
        assert!(report.contains("probes 2 (1 feasible)"), "{report}");
    }

    #[test]
    fn traces_without_service_events_skip_the_service_section() {
        let report = summarize(&runtime_trace()).render();
        assert!(!report.contains("admission service"));
    }

    fn caused_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"runtime_arrival","id":1,"time":0.5,"app":0,"lineage":0,"class":"be","admitted":false,"rate":1.0,"cause":"no_path"}"#,
            r#"{"type":"runtime_displace","id":2,"time":1.0,"app":1,"lineage":1,"element":"link:2->4","cause":"element_failure"}"#,
            r#"{"type":"runtime_displace","id":3,"time":1.5,"app":2,"lineage":2,"element":"link:2->4","cause":"element_failure"}"#,
            r#"{"type":"runtime_displace","id":4,"time":1.6,"app":3,"lineage":3,"element":"node:7","cause":"element_failure"}"#,
            r#"{"type":"runtime_readmit","id":5,"time":2.0,"app":1,"lineage":1,"outcome":"failed","rate":0.0,"cause":"placement_unfit","causes":[2]}"#,
            r#"{"type":"service_decision","id":6,"time":3.0,"request":9,"lineage":9,"class":"be","outcome":"shed","wait":1.0,"rate":0.0,"cause":"defer_budget"}"#,
            r#"{"type":"service_decision","id":7,"time":3.0,"request":10,"lineage":10,"class":"gr","outcome":"rejected","wait":0.5,"rate":0.0,"cause":"availability_unreachable"}"#,
            r#"{"type":"service_defer","id":8,"time":4.0,"window":4,"queue_depth":3,"writer_free":4.5,"cause":"writer_busy"}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn cause_taxonomy_counts_by_family_and_code() {
        let s = summarize(&caused_trace());
        assert_eq!(s.causes.rejections["no_path"], 1);
        assert_eq!(s.causes.rejections["placement_unfit"], 1);
        assert_eq!(s.causes.rejections["availability_unreachable"], 1);
        assert_eq!(s.causes.sheds["defer_budget"], 1);
        assert_eq!(s.causes.deferrals["writer_busy"], 1);
        assert_eq!(s.causes.displacements["element_failure"], 3);
        assert_eq!(s.causes.bottleneck_elements["link:2->4"], 2);
    }

    #[test]
    fn cause_taxonomy_renders_with_bottleneck_elements_first_by_count() {
        let report = summarize(&caused_trace()).render();
        assert!(report.contains("cause taxonomy"), "{report}");
        assert!(report.contains("rejected   no_path"), "{report}");
        assert!(report.contains("shed       defer_budget"), "{report}");
        assert!(report.contains("deferred   writer_busy"), "{report}");
        assert!(report.contains("displaced  element_failure"), "{report}");
        let link = report.find("link:2->4").expect("busiest element listed");
        let node = report.find("node:7").expect("other element listed");
        assert!(link < node, "elements must sort by displacement count");
    }

    #[test]
    fn traces_without_causes_skip_the_taxonomy() {
        let report = summarize(&service_trace()).render();
        // The fixture's decisions carry no cause codes for the negative
        // outcomes, so they land in the "?" bucket — but a trace with
        // only positive decisions must skip the section entirely.
        let positive = load_trace(
            r#"{"type":"service_decision","id":1,"time":1.0,"request":0,"lineage":0,"class":"be","outcome":"admitted","wait":0.4,"rate":1.5}"#,
        )
        .unwrap();
        assert!(!summarize(&positive).render().contains("cause taxonomy"));
        assert!(report.contains("cause taxonomy"), "{report}");
    }

    #[test]
    fn empty_trace_summarizes_to_defaults() {
        let s = summarize(&[]);
        assert!(s.kind_counts.is_empty());
        assert_eq!(s.peak_queue_depth, None);
        assert!(s.render().contains("events by kind:"));
    }
}
