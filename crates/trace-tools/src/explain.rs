//! `sparcle-trace explain` — reconstructs one application's (or service
//! request's) causal lifecycle from a provenance-stamped trace.
//!
//! Every trace line carries a monotonic `id` and, for caused events, a
//! `causes` back-reference list (DESIGN.md §14). Given a subject — an
//! app id, a lineage, or a picked outcome — this module:
//!
//! 1. selects the subject's **lifecycle events** (`runtime_arrival`,
//!    `runtime_displace`, `runtime_readmit`, `runtime_migrate`,
//!    `runtime_probe`, `runtime_departure`; `service_ingest`,
//!    `service_decision`, `service_probe`);
//! 2. pulls in the **causal context** — the transitive closure of their
//!    `causes` edges (failing elements, batch commits, window
//!    deferrals, earlier reconcile state);
//! 3. checks **completeness**: every non-root lifecycle hop must reach
//!    a lifecycle root (the arrival or ingest) through cause edges —
//!    an event that cannot is an *orphan* and fails the explanation;
//! 4. renders the timeline in id order with each hop's cause links,
//!    what-if probe answers attached, and the trace-wide cause
//!    taxonomy as a footer.
//!
//! The output is a pure function of the trace bytes, so it inherits the
//! emitters' determinism contract: byte-identical across runs and
//! evaluator thread counts.

use std::collections::{BTreeMap, BTreeSet};

use sparcle_telemetry::Json;

use crate::summary::collect_causes;
use crate::{kind_of, num_field};

/// Per-subject lifecycle kinds: events that narrate one app/request.
const LIFECYCLE_KINDS: &[&str] = &[
    "runtime_arrival",
    "runtime_displace",
    "runtime_readmit",
    "runtime_migrate",
    "runtime_probe",
    "runtime_departure",
    "service_ingest",
    "service_decision",
    "service_probe",
];

/// Kinds that root a lifecycle: they may have no causes.
const ROOT_KINDS: &[&str] = &["runtime_arrival", "service_ingest"];

/// Read-only what-if probes: attached to the timeline but exempt from
/// the completeness check when uncaused (a snapshot read is exogenous).
const PROBE_KINDS: &[&str] = &["runtime_probe", "service_probe"];

/// How the explain subject is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selector {
    /// Match `app` (runtime family) or `request` (service family).
    App(u64),
    /// Match the `lineage` key on either family.
    Lineage(u64),
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Selector::App(n) => write!(f, "app {n}"),
            Selector::Lineage(n) => write!(f, "lineage {n}"),
        }
    }
}

/// One rendered hop of the causal timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The event's provenance id.
    pub id: u64,
    /// Its cause ids (possibly empty).
    pub causes: Vec<u64>,
    /// The event's `type` tag.
    pub kind: String,
    /// `key=value` detail of every other field.
    pub detail: String,
    /// False for the subject's own lifecycle events, true for causal
    /// context pulled in through `causes` edges.
    pub context: bool,
}

/// A reconstructed causal lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The subject as selected (`app N` / `lineage N`).
    pub subject: String,
    /// Every included event, in id (= emission) order.
    pub timeline: Vec<TimelineEntry>,
    /// Ids of lifecycle events that cannot reach a lifecycle root
    /// through cause edges. Empty for a complete explanation.
    pub orphans: Vec<u64>,
    /// The trace-wide cause-taxonomy footer.
    pub taxonomy: String,
}

impl Explanation {
    /// Whether every lifecycle hop is cause-linked back to its root.
    pub fn is_complete(&self) -> bool {
        self.orphans.is_empty()
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("causal lifecycle of {}:\n", self.subject);
        let width = self
            .timeline
            .iter()
            .map(|e| e.id.to_string().len())
            .max()
            .unwrap_or(1);
        for entry in &self.timeline {
            let marker = if entry.context { " " } else { "*" };
            let links = if entry.causes.is_empty() {
                String::new()
            } else {
                format!(
                    "  <- {}",
                    entry
                        .causes
                        .iter()
                        .map(|c| format!("#{c}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            out.push_str(&format!(
                "{marker} #{:>width$} {:<20} {}{links}\n",
                entry.id, entry.kind, entry.detail
            ));
        }
        out.push_str(&format!(
            "\n{} lifecycle event(s) (*), {} context event(s); ",
            self.timeline.iter().filter(|e| !e.context).count(),
            self.timeline.iter().filter(|e| e.context).count(),
        ));
        if self.is_complete() {
            out.push_str("every hop cause-linked to its root\n");
        } else {
            out.push_str(&format!(
                "INCOMPLETE: orphan event(s) {}\n",
                self.orphans
                    .iter()
                    .map(|c| format!("#{c}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str(&self.taxonomy);
        out
    }
}

fn id_of(event: &Json) -> Option<u64> {
    num_field(event, "id").map(|v| v as u64)
}

fn causes_of(event: &Json) -> Vec<u64> {
    match event.get("causes") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(Json::as_num)
            .map(|v| v as u64)
            .collect(),
        _ => Vec::new(),
    }
}

fn matches(event: &Json, selector: Selector) -> bool {
    match selector {
        Selector::App(n) => {
            num_field(event, "app").map(|v| v as u64) == Some(n)
                || num_field(event, "request").map(|v| v as u64) == Some(n)
        }
        Selector::Lineage(n) => num_field(event, "lineage").map(|v| v as u64) == Some(n),
    }
}

/// Every field except the provenance stamps and the `type` tag, as
/// deterministic `key=value` pairs in emission order.
fn detail_of(event: &Json) -> String {
    let Json::Obj(pairs) = event else {
        return String::new();
    };
    pairs
        .iter()
        .filter(|(k, _)| !matches!(k.as_str(), "type" | "id" | "causes"))
        .map(|(k, v)| match v {
            Json::Str(s) => format!("{k}={s}"),
            other => format!("{k}={}", other.render()),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Picks the first lineage whose final service/runtime outcome matches
/// `outcome` (`"admitted"`, `"rejected"`, `"shed"`, or `"migrated"`) —
/// the nightly CI's way of selecting a subject without hardcoding ids.
pub fn pick_lineage(events: &[Json], outcome: &str) -> Option<u64> {
    for event in events {
        let hit = match kind_of(event) {
            "service_decision" => event.get("outcome").and_then(Json::as_str) == Some(outcome),
            "runtime_arrival" => {
                let admitted = event.get("admitted").and_then(Json::as_bool);
                (outcome == "admitted" && admitted == Some(true))
                    || (outcome == "rejected" && admitted == Some(false))
            }
            "runtime_migrate" => {
                outcome == "migrated"
                    && event.get("outcome").and_then(Json::as_str) == Some("migrated")
            }
            _ => false,
        };
        if hit {
            if let Some(lineage) = num_field(event, "lineage").map(|v| v as u64) {
                return Some(lineage);
            }
        }
    }
    None
}

/// Reconstructs the causal lifecycle of `selector`'s subject.
///
/// # Errors
///
/// Returns a message when the trace has no lifecycle events for the
/// subject (wrong id, or a trace recorded without provenance).
pub fn explain(events: &[Json], selector: Selector) -> Result<Explanation, String> {
    let mut by_id: BTreeMap<u64, &Json> = BTreeMap::new();
    for event in events {
        if let Some(id) = id_of(event) {
            by_id.insert(id, event);
        }
    }

    let lifecycle: BTreeSet<u64> = events
        .iter()
        .filter(|e| LIFECYCLE_KINDS.contains(&kind_of(e)) && matches(e, selector))
        .filter_map(id_of)
        .collect();
    if lifecycle.is_empty() {
        return Err(format!(
            "no lifecycle events for {selector} — wrong id, or the trace was recorded without \
             provenance"
        ));
    }

    // Causal closure: everything the lifecycle transitively cites.
    let mut include = lifecycle.clone();
    let mut stack: Vec<u64> = include
        .iter()
        .filter_map(|id| by_id.get(id))
        .flat_map(|e| causes_of(e))
        .collect();
    while let Some(id) = stack.pop() {
        if include.insert(id) {
            if let Some(event) = by_id.get(&id) {
                stack.extend(causes_of(event));
            }
        }
    }

    // Completeness: each lifecycle event must reach a lifecycle root of
    // this subject through cause edges. Roots pass trivially; uncaused
    // probes are exogenous reads and exempt.
    let roots: BTreeSet<u64> = lifecycle
        .iter()
        .filter(|id| {
            by_id
                .get(id)
                .is_some_and(|e| ROOT_KINDS.contains(&kind_of(e)))
        })
        .copied()
        .collect();
    let mut orphans = Vec::new();
    for &id in &lifecycle {
        let event = by_id[&id];
        if roots.contains(&id) {
            continue;
        }
        if PROBE_KINDS.contains(&kind_of(event)) && causes_of(event).is_empty() {
            continue;
        }
        let mut seen = BTreeSet::new();
        let mut frontier = causes_of(event);
        let mut reached = false;
        while let Some(c) = frontier.pop() {
            if roots.contains(&c) {
                reached = true;
                break;
            }
            if seen.insert(c) {
                if let Some(e) = by_id.get(&c) {
                    frontier.extend(causes_of(e));
                }
            }
        }
        if !reached {
            orphans.push(id);
        }
    }

    let timeline = include
        .iter()
        .filter_map(|id| by_id.get(id).map(|e| (*id, *e)))
        .map(|(id, event)| TimelineEntry {
            id,
            causes: causes_of(event),
            kind: kind_of(event).to_owned(),
            detail: detail_of(event),
            context: !lifecycle.contains(&id),
        })
        .collect();

    Ok(Explanation {
        subject: selector.to_string(),
        timeline,
        orphans,
        taxonomy: collect_causes(events).render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_trace;

    /// A service lineage: ingest -> (batch) -> deferred -> shed; plus an
    /// unrelated admitted request and a what-if probe on the subject.
    fn service_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"service_ingest","id":1,"time":0.1,"request":0,"lineage":0,"class":"be"}"#,
            r#"{"type":"service_ingest","id":2,"time":0.2,"request":1,"lineage":1,"class":"gr"}"#,
            r#"{"type":"service_batch","id":3,"time":1.0,"window":1,"size":1,"admitted":1,"rejected":0,"shed":0,"queue_depth":1,"solves":1}"#,
            r#"{"type":"service_decision","id":4,"time":1.0,"request":1,"lineage":1,"class":"gr","outcome":"admitted","wait":0.8,"rate":2.0,"cause":null,"causes":[2,3]}"#,
            r#"{"type":"service_defer","id":5,"time":2.0,"window":2,"queue_depth":1,"writer_free":2.5,"cause":"writer_busy","causes":[1,3]}"#,
            r#"{"type":"service_probe","id":6,"time":2.2,"request":0,"lineage":0,"feasible":false,"rate":0.0}"#,
            r#"{"type":"service_decision","id":7,"time":3.0,"request":0,"lineage":0,"class":"be","outcome":"shed","wait":2.9,"rate":0.0,"cause":"defer_budget","causes":[5]}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn explain_reconstructs_a_complete_cause_linked_lifecycle() {
        let events = service_trace();
        let x = explain(&events, Selector::Lineage(0)).unwrap();
        assert!(x.is_complete(), "orphans: {:?}", x.orphans);
        let ids: Vec<u64> = x.timeline.iter().map(|e| e.id).collect();
        // Lifecycle 1, 6, 7 plus context 5 (the deferral) and 3 (the
        // batch the deferral blames) — but NOT the other lineage's
        // ingest/decision.
        assert_eq!(ids, vec![1, 3, 5, 6, 7]);
        let shed = x.timeline.iter().find(|e| e.id == 7).unwrap();
        assert!(!shed.context);
        assert!(
            shed.detail.contains("cause=defer_budget"),
            "{}",
            shed.detail
        );
        let defer = x.timeline.iter().find(|e| e.id == 5).unwrap();
        assert!(defer.context, "the deferral is context, not lifecycle");
    }

    #[test]
    fn explain_by_app_selects_request_events_too() {
        let events = service_trace();
        let x = explain(&events, Selector::App(1)).unwrap();
        assert!(x.is_complete());
        let ids: Vec<u64> = x.timeline.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn render_marks_lifecycle_hops_and_links_causes() {
        let events = service_trace();
        let report = explain(&events, Selector::Lineage(0)).unwrap().render();
        assert!(report.contains("causal lifecycle of lineage 0"), "{report}");
        assert!(report.contains("* #7 service_decision"), "{report}");
        assert!(report.contains("<- #5"), "{report}");
        assert!(
            report.contains("every hop cause-linked to its root"),
            "{report}"
        );
        assert!(report.contains("cause taxonomy"), "{report}");
    }

    #[test]
    fn orphaned_lifecycle_events_fail_completeness() {
        // A displace that cites nothing: the chain to its arrival is
        // broken, so the explanation must say INCOMPLETE.
        let events = load_trace(
            &[
                r#"{"type":"runtime_arrival","id":1,"time":0.5,"app":3,"lineage":3,"class":"be","admitted":true,"rate":1.0,"cause":null}"#,
                r#"{"type":"runtime_displace","id":2,"time":1.0,"app":3,"lineage":3,"element":"node:1","cause":"element_failure"}"#,
            ]
            .join("\n"),
        )
        .unwrap();
        let x = explain(&events, Selector::App(3)).unwrap();
        assert_eq!(x.orphans, vec![2]);
        assert!(x.render().contains("INCOMPLETE"), "{}", x.render());
    }

    #[test]
    fn unknown_subjects_error_instead_of_rendering_nothing() {
        let events = service_trace();
        let err = explain(&events, Selector::App(99)).unwrap_err();
        assert!(err.contains("no lifecycle events"), "{err}");
        assert!(err.contains("app 99"), "{err}");
    }

    #[test]
    fn pick_lineage_finds_the_first_matching_outcome() {
        let events = service_trace();
        assert_eq!(pick_lineage(&events, "admitted"), Some(1));
        assert_eq!(pick_lineage(&events, "shed"), Some(0));
        assert_eq!(pick_lineage(&events, "rejected"), None);
    }

    /// A runtime lifecycle that includes a planned migration: arrival ->
    /// migrate (defrag) -> departure, each hop citing the previous one.
    fn migration_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"runtime_arrival","id":1,"time":0.5,"app":4,"lineage":4,"class":"be","admitted":true,"rate":1.0,"cause":null}"#,
            r#"{"type":"runtime_migrate","id":2,"time":5.0,"app":4,"lineage":4,"outcome":"migrated","old_rate":1.0,"new_rate":2.5,"cause":"defrag_net_gain","causes":[1]}"#,
            r#"{"type":"runtime_departure","id":3,"time":9.0,"app":4,"lineage":4,"causes":[2]}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn migrations_are_lifecycle_hops() {
        let events = migration_trace();
        let x = explain(&events, Selector::App(4)).unwrap();
        assert!(x.is_complete(), "orphans: {:?}", x.orphans);
        let ids: Vec<u64> = x.timeline.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let migrate = x.timeline.iter().find(|e| e.id == 2).unwrap();
        assert!(!migrate.context, "a planned move narrates the subject");
        assert!(
            migrate.detail.contains("cause=defrag_net_gain"),
            "{}",
            migrate.detail
        );
        // The departure chains through the migration to the arrival.
        assert!(
            x.render().contains("* #2 runtime_migrate"),
            "{}",
            x.render()
        );
    }

    #[test]
    fn pick_lineage_selects_migrated_subjects() {
        let events = migration_trace();
        assert_eq!(pick_lineage(&events, "migrated"), Some(4));
        // A kept (rolled-back) probe is not a migrated subject.
        let kept = load_trace(
            r#"{"type":"runtime_migrate","id":1,"time":5.0,"app":7,"lineage":7,"outcome":"kept","old_rate":1.0,"new_rate":1.0,"cause":"defrag_net_gain"}"#,
        )
        .unwrap();
        assert_eq!(pick_lineage(&kept, "migrated"), None);
    }
}
