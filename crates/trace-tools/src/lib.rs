//! # sparcle-trace-tools
//!
//! Read-side analysis for SPARCLE JSONL telemetry traces (the
//! write-side lives in `sparcle-telemetry`; DESIGN.md §7 and §9 cover
//! the formats). Four operations, shared by the `sparcle-trace` binary
//! and the in-process tests:
//!
//! * [`summary`] — per-kind event counts plus per-app rate/SLO rollups
//!   from the `runtime_*`/`sim_*` event families, and the cause-
//!   taxonomy rollup of every negative decision;
//! * [`explain`] — reconstructs one app's/request's causal lifecycle
//!   from the provenance `id`/`causes` stamps (DESIGN.md §14);
//! * [`report`] — the observability plane's `monitor_*` families as a
//!   health-over-time table and an alert timeline;
//! * [`profile`] — reconstructs the `span_open`/`span_close` tree and
//!   aggregates it into a self/total-time table, flamegraph-compatible
//!   folded stacks, and per-placement-round critical-path attribution;
//! * [`diff`] — semantic comparison of two traces that ignores
//!   wall-clock span timestamps and localizes the first diverging
//!   event;
//! * validation — [`sparcle_telemetry::schema::validate_trace`],
//!   re-exported here so the binary can run the schema check offline.
//!
//! The crate depends only on `sparcle-telemetry` (the data model), so
//! it can inspect traces produced by any build configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod explain;
pub mod profile;
pub mod report;
pub mod summary;

pub use sparcle_telemetry::schema::{validate_line, validate_trace, validate_trace_lenient};
use sparcle_telemetry::{parse_json, Json};

/// A trace that failed to load: 1-based line number plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 for whole-file
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace into one [`Json`] value per non-empty line.
///
/// Purely syntactic — schema validation is separate (see
/// [`validate_trace`]), so `diff` and `profile` can still operate on
/// traces written by newer emitters with unknown event kinds.
///
/// # Errors
///
/// Returns the first line that is not valid JSON.
pub fn load_trace(contents: &str) -> Result<Vec<Json>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in contents.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(|e| TraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(json);
    }
    Ok(events)
}

/// Like [`load_trace`], but tolerant of a truncated final line — the
/// signature of a writer killed mid-`write` (crash, OOM, disk full).
/// Returns the parsed events plus whether the final line was dropped,
/// so callers can warn instead of refusing the whole trace.
///
/// Only the *last* non-empty line gets this leniency: a parse failure
/// anywhere earlier is still corruption and still errors.
///
/// # Errors
///
/// Returns the first non-final line that is not valid JSON.
pub fn load_trace_lenient(contents: &str) -> Result<(Vec<Json>, bool), TraceError> {
    let lines: Vec<(usize, &str)> = contents
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut events = Vec::with_capacity(lines.len());
    for (pos, &(i, line)) in lines.iter().enumerate() {
        match parse_json(line) {
            Ok(json) => events.push(json),
            Err(_) if pos + 1 == lines.len() => return Ok((events, true)),
            Err(e) => {
                return Err(TraceError {
                    line: i + 1,
                    message: e.to_string(),
                })
            }
        }
    }
    Ok((events, false))
}

/// The `type` tag of one parsed trace line (`"?"` when absent).
pub fn kind_of(event: &Json) -> &str {
    event.get("type").and_then(Json::as_str).unwrap_or("?")
}

pub(crate) fn num_field(event: &Json, key: &str) -> Option<f64> {
    event.get(key).and_then(Json::as_num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_trace_parses_lines_and_reports_position() {
        let events = load_trace("{\"type\":\"run_start\",\"name\":\"x\"}\n\n{\"a\":1}\n").unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(kind_of(&events[0]), "run_start");
        assert_eq!(kind_of(&events[1]), "?");

        let err = load_trace("{\"ok\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn lenient_load_skips_only_a_truncated_final_line() {
        // A writer killed mid-line leaves a half-written tail: drop it.
        let (events, truncated) =
            load_trace_lenient("{\"type\":\"run_start\",\"id\":1,\"name\":\"x\"}\n{\"type\":\"com")
                .unwrap();
        assert!(truncated);
        assert_eq!(events.len(), 1);
        assert_eq!(kind_of(&events[0]), "run_start");

        // An intact trace reports no truncation.
        let (events, truncated) =
            load_trace_lenient("{\"type\":\"run_start\",\"id\":1,\"name\":\"x\"}\n").unwrap();
        assert!(!truncated);
        assert_eq!(events.len(), 1);

        // Mid-file corruption is not truncation: still an error, with
        // the position of the bad line.
        let err = load_trace_lenient("garbage\n{\"ok\":1}\n").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
