//! # sparcle-trace-tools
//!
//! Read-side analysis for SPARCLE JSONL telemetry traces (the
//! write-side lives in `sparcle-telemetry`; DESIGN.md §7 and §9 cover
//! the formats). Four operations, shared by the `sparcle-trace` binary
//! and the in-process tests:
//!
//! * [`summary`] — per-kind event counts plus per-app rate/SLO rollups
//!   from the `runtime_*`/`sim_*` event families;
//! * [`report`] — the observability plane's `monitor_*` families as a
//!   health-over-time table and an alert timeline;
//! * [`profile`] — reconstructs the `span_open`/`span_close` tree and
//!   aggregates it into a self/total-time table, flamegraph-compatible
//!   folded stacks, and per-placement-round critical-path attribution;
//! * [`diff`] — semantic comparison of two traces that ignores
//!   wall-clock span timestamps and localizes the first diverging
//!   event;
//! * validation — [`sparcle_telemetry::schema::validate_trace`],
//!   re-exported here so the binary can run the schema check offline.
//!
//! The crate depends only on `sparcle-telemetry` (the data model), so
//! it can inspect traces produced by any build configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod profile;
pub mod report;
pub mod summary;

pub use sparcle_telemetry::schema::{validate_line, validate_trace};
use sparcle_telemetry::{parse_json, Json};

/// A trace that failed to load: 1-based line number plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 for whole-file
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace into one [`Json`] value per non-empty line.
///
/// Purely syntactic — schema validation is separate (see
/// [`validate_trace`]), so `diff` and `profile` can still operate on
/// traces written by newer emitters with unknown event kinds.
///
/// # Errors
///
/// Returns the first line that is not valid JSON.
pub fn load_trace(contents: &str) -> Result<Vec<Json>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in contents.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(|e| TraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(json);
    }
    Ok(events)
}

/// The `type` tag of one parsed trace line (`"?"` when absent).
pub fn kind_of(event: &Json) -> &str {
    event.get("type").and_then(Json::as_str).unwrap_or("?")
}

pub(crate) fn num_field(event: &Json, key: &str) -> Option<f64> {
    event.get(key).and_then(Json::as_num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_trace_parses_lines_and_reports_position() {
        let events = load_trace("{\"type\":\"run_start\",\"name\":\"x\"}\n\n{\"a\":1}\n").unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(kind_of(&events[0]), "run_start");
        assert_eq!(kind_of(&events[1]), "?");

        let err = load_trace("{\"ok\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
