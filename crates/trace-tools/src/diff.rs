//! Semantic trace comparison.
//!
//! Two traces of the same seeded run are byte-identical *except* for
//! wall-clock span timestamps (`t_ns` on `span_open`, `dur_ns` on
//! `span_close`) — see the determinism contract in
//! `sparcle_telemetry::span`. The diff therefore strips those keys from
//! every event and compares the normalized renders line by line,
//! reporting the **first** diverging event with its index and kind —
//! turning a failed byte-identity assert into an actionable pointer at
//! the exact decision where two runs parted ways.

use sparcle_telemetry::Json;

use crate::kind_of;

/// Keys excluded from comparison: wall-clock span timestamps.
pub const WALL_CLOCK_KEYS: &[&str] = &["t_ns", "dur_ns"];

/// Strips the wall-clock keys from an event (top level only — span
/// timestamps never nest).
pub fn normalize(event: &Json) -> Json {
    match event {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !WALL_CLOCK_KEYS.contains(&k.as_str()))
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Which input trace a [`Divergence::Length`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first trace.
    A,
    /// The second trace.
    B,
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Side::A => "first",
            Side::B => "second",
        })
    }
}

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Event `index` (0-based) differs between the traces.
    Event {
        /// 0-based event index (= line index among non-empty lines).
        index: usize,
        /// The event kind in the first trace.
        kind_a: String,
        /// The event kind in the second trace.
        kind_b: String,
        /// Normalized render of the first trace's event.
        a: String,
        /// Normalized render of the second trace's event.
        b: String,
    },
    /// One trace is a strict prefix of the other.
    Length {
        /// Events in the shorter trace (also the index of the first
        /// unmatched event in the longer one).
        shorter: usize,
        /// Events in the longer trace.
        longer: usize,
        /// Which trace is longer.
        which_longer: Side,
        /// Kind of the longer trace's first unmatched event.
        extra_kind: String,
    },
}

impl Divergence {
    /// The 0-based index of the first diverging event.
    pub fn index(&self) -> usize {
        match self {
            Divergence::Event { index, .. } => *index,
            Divergence::Length { shorter, .. } => *shorter,
        }
    }

    /// Human-readable report naming the index and kinds.
    pub fn render(&self) -> String {
        match self {
            Divergence::Event {
                index,
                kind_a,
                kind_b,
                a,
                b,
            } => format!(
                "first diverging event at index {index}: kind {kind_a:?} vs {kind_b:?}\n- {a}\n+ {b}"
            ),
            Divergence::Length {
                shorter,
                longer,
                which_longer,
                extra_kind,
            } => format!(
                "traces diverge at index {shorter}: the {which_longer} trace continues with \
                 {extra} more event(s), starting with kind {extra_kind:?}",
                extra = longer - shorter,
            ),
        }
    }
}

/// Compares two parsed traces semantically (wall-clock keys stripped).
/// Returns `None` when they are equivalent.
pub fn diff_traces(a: &[Json], b: &[Json]) -> Option<Divergence> {
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        let na = normalize(ea);
        let nb = normalize(eb);
        if na != nb {
            return Some(Divergence::Event {
                index: i,
                kind_a: kind_of(ea).to_owned(),
                kind_b: kind_of(eb).to_owned(),
                a: na.render(),
                b: nb.render(),
            });
        }
    }
    if a.len() != b.len() {
        let (shorter, longer, which_longer, extra) = if a.len() > b.len() {
            (b.len(), a.len(), Side::A, &a[b.len()])
        } else {
            (a.len(), b.len(), Side::B, &b[a.len()])
        };
        return Some(Divergence::Length {
            shorter,
            longer,
            which_longer,
            extra_kind: kind_of(extra).to_owned(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_trace;

    fn trace(lines: &[&str]) -> Vec<Json> {
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn wall_clock_keys_are_ignored() {
        let a = trace(&[
            r#"{"type":"span_open","id":0,"parent":null,"name":"x","t_ns":100}"#,
            r#"{"type":"span_close","id":0,"name":"x","dur_ns":5000,"aborted":false}"#,
        ]);
        let b = trace(&[
            r#"{"type":"span_open","id":0,"parent":null,"name":"x","t_ns":99999}"#,
            r#"{"type":"span_close","id":0,"name":"x","dur_ns":1,"aborted":false}"#,
        ]);
        assert_eq!(diff_traces(&a, &b), None);
    }

    #[test]
    fn structural_differences_are_reported_with_index_and_kind() {
        let a = trace(&[
            r#"{"type":"run_start","name":"x"}"#,
            r#"{"type":"commit","ct":1,"host":2}"#,
        ]);
        let b = trace(&[
            r#"{"type":"run_start","name":"x"}"#,
            r#"{"type":"commit","ct":1,"host":3}"#,
        ]);
        let d = diff_traces(&a, &b).expect("diverges");
        assert_eq!(d.index(), 1);
        match &d {
            Divergence::Event { kind_a, kind_b, .. } => {
                assert_eq!(kind_a, "commit");
                assert_eq!(kind_b, "commit");
            }
            other => panic!("expected Event divergence, got {other:?}"),
        }
        assert!(d.render().contains("index 1"));
    }

    #[test]
    fn span_structure_still_compares() {
        // Same timestamps, different span name: must diverge.
        let a = trace(&[r#"{"type":"span_open","id":0,"parent":null,"name":"x","t_ns":1}"#]);
        let b = trace(&[r#"{"type":"span_open","id":0,"parent":null,"name":"y","t_ns":1}"#]);
        let d = diff_traces(&a, &b).expect("diverges");
        assert_eq!(d.index(), 0);
    }

    #[test]
    fn prefix_traces_report_length_divergence() {
        let a = trace(&[r#"{"type":"run_start","name":"x"}"#]);
        let b = trace(&[
            r#"{"type":"run_start","name":"x"}"#,
            r#"{"type":"commit","ct":1,"host":2}"#,
        ]);
        let d = diff_traces(&a, &b).expect("diverges");
        match &d {
            Divergence::Length {
                shorter,
                longer,
                which_longer,
                extra_kind,
            } => {
                assert_eq!((*shorter, *longer), (1, 2));
                assert_eq!(*which_longer, Side::B);
                assert_eq!(extra_kind, "commit");
            }
            other => panic!("expected Length divergence, got {other:?}"),
        }
    }
}
