//! Span profiling: tree reconstruction, self/total-time attribution,
//! flamegraph folded stacks, and critical-path extraction.
//!
//! Input is the `span_open`/`span_close` event pairs emitted by
//! `sparcle_telemetry::span` (enabled with `--trace-spans` on the
//! experiment binaries). `span_open` carries the span id (the `span`
//! key — `id` is the line's provenance stamp), parent id, and a
//! monotonic-relative `t_ns`; `span_close` carries the measured
//! `dur_ns` and the `aborted` flag. From those this module rebuilds the
//! span forest and derives:
//!
//! * a per-name **self/total table** (self = duration minus the sum of
//!   child durations, clamped at zero against scheduler noise);
//! * **folded stacks** in the `a;b;c <self_ns>` format every flamegraph
//!   renderer accepts;
//! * the **critical path**: the chain of heaviest children from a root
//!   span downward — where a placement round actually spent its time;
//! * per-round attribution over the `engine.rank_round` spans.

use std::collections::BTreeMap;

use sparcle_telemetry::Json;

use crate::{kind_of, num_field};

/// The span name the placement engine opens once per ranking round.
pub const ROUND_SPAN: &str = "engine.rank_round";

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Trace-unique span id.
    pub id: u64,
    /// Static span name (e.g. `engine.row_fill`).
    pub name: String,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Open timestamp, ns since the tracker epoch.
    pub t_ns: u64,
    /// Measured duration in ns (0 until the close event is seen).
    pub dur_ns: u64,
    /// Whether the span was closed by a drop on an error path.
    pub aborted: bool,
    /// Whether a matching `span_close` was seen at all.
    pub closed: bool,
    /// Child indices into [`SpanForest::nodes`], in open order.
    pub children: Vec<usize>,
}

/// All spans of one trace, linked into trees.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// Every span, in `span_open` order.
    pub nodes: Vec<SpanNode>,
    /// Indices of parentless spans, in open order.
    pub roots: Vec<usize>,
}

impl SpanForest {
    /// Reconstructs the forest from a parsed trace. Non-span events are
    /// skipped; a `span_close` without a prior open, or an open naming
    /// an unknown parent, is tolerated (the span becomes a root) so a
    /// truncated trace still profiles.
    pub fn build(events: &[Json]) -> SpanForest {
        let mut forest = SpanForest::default();
        let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
        for event in events {
            match kind_of(event) {
                "span_open" => {
                    let Some(id) = num_field(event, "span").map(|v| v as u64) else {
                        continue;
                    };
                    let parent = num_field(event, "parent").map(|v| v as u64);
                    let node = SpanNode {
                        id,
                        name: event
                            .get("name")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_owned(),
                        parent,
                        t_ns: num_field(event, "t_ns").map_or(0, |v| v as u64),
                        dur_ns: 0,
                        aborted: false,
                        closed: false,
                        children: Vec::new(),
                    };
                    let idx = forest.nodes.len();
                    forest.nodes.push(node);
                    index_of.insert(id, idx);
                    match parent.and_then(|p| index_of.get(&p).copied()) {
                        Some(p_idx) => forest.nodes[p_idx].children.push(idx),
                        None => forest.roots.push(idx),
                    }
                }
                "span_close" => {
                    let Some(idx) = num_field(event, "span")
                        .map(|v| v as u64)
                        .and_then(|id| index_of.get(&id).copied())
                    else {
                        continue;
                    };
                    let node = &mut forest.nodes[idx];
                    node.dur_ns = num_field(event, "dur_ns").map_or(0, |v| v as u64);
                    node.aborted = event
                        .get("aborted")
                        .and_then(Json::as_bool)
                        .unwrap_or(false);
                    node.closed = true;
                }
                _ => {}
            }
        }
        forest
    }

    /// Duration minus the summed child durations, clamped at zero
    /// (child wall-clocks can overshoot the parent's by scheduler
    /// noise; negative self time is meaningless).
    pub fn self_ns(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let child_total: u64 = node.children.iter().map(|&c| self.nodes[c].dur_ns).sum();
        node.dur_ns.saturating_sub(child_total)
    }

    /// The `a;b;c` stack string for a node (root-first).
    fn stack_of(&self, idx: usize) -> String {
        let mut names = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            names.push(self.nodes[i].name.as_str());
            cur = self.nodes[i]
                .parent
                .and_then(|p| self.nodes.iter().position(|n| n.id == p));
        }
        names.reverse();
        names.join(";")
    }

    /// Flamegraph folded stacks: one `stack self_ns` line per distinct
    /// stack, self-times summed, sorted lexicographically for a
    /// deterministic render.
    pub fn folded_stacks(&self) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for idx in 0..self.nodes.len() {
            let self_ns = self.self_ns(idx);
            *merged.entry(self.stack_of(idx)).or_insert(0) += self_ns;
        }
        let mut out = String::new();
        for (stack, self_ns) in merged {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The chain of heaviest children from `root` downward:
    /// `(name, dur_ns)` per hop. This is where the wall time of that
    /// subtree actually went.
    pub fn critical_path(&self, root: usize) -> Vec<(String, u64)> {
        let mut path = Vec::new();
        let mut cur = root;
        loop {
            let node = &self.nodes[cur];
            path.push((node.name.clone(), node.dur_ns));
            // Heaviest child; ties go to the earliest-opened, keeping
            // the report deterministic.
            let Some(&next) = node
                .children
                .iter()
                .max_by_key(|&&c| (self.nodes[c].dur_ns, std::cmp::Reverse(c)))
            else {
                break;
            };
            cur = next;
        }
        path
    }

    /// Indices of all `engine.rank_round` spans, in open order.
    pub fn round_spans(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].name == ROUND_SPAN)
            .collect()
    }
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed durations.
    pub total_ns: u64,
    /// Summed self times (duration minus children).
    pub self_ns: u64,
    /// How many of them closed via the abort path.
    pub aborted: u64,
}

/// Per-name rollup of a forest, ordered by descending self time (ties
/// broken by name for determinism).
pub fn aggregate(forest: &SpanForest) -> Vec<NameStats> {
    let mut by_name: BTreeMap<&str, NameStats> = BTreeMap::new();
    for idx in 0..forest.nodes.len() {
        let node = &forest.nodes[idx];
        let entry = by_name.entry(&node.name).or_insert_with(|| NameStats {
            name: node.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            aborted: 0,
        });
        entry.count += 1;
        entry.total_ns += node.dur_ns;
        entry.self_ns += forest.self_ns(idx);
        entry.aborted += u64::from(node.aborted);
    }
    let mut stats: Vec<NameStats> = by_name.into_values().collect();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    stats
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

/// The human-readable self/total table.
pub fn render_table(stats: &[NameStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>7} {:>12} {:>12} {:>8}\n",
        "span", "count", "total_ms", "self_ms", "aborted"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<24} {:>7} {:>12.3} {:>12.3} {:>8}\n",
            s.name,
            s.count,
            ms(s.total_ns),
            ms(s.self_ns),
            s.aborted
        ));
    }
    out
}

/// Per-placement-round critical-path attribution: for each
/// `engine.rank_round` span, its duration and the heaviest-descendant
/// chain below it; plus the aggregate child breakdown across rounds.
pub fn render_rounds(forest: &SpanForest) -> String {
    let rounds = forest.round_spans();
    if rounds.is_empty() {
        return String::from("no engine.rank_round spans in trace\n");
    }
    let mut out = String::new();
    let mut child_totals: BTreeMap<String, u64> = BTreeMap::new();
    for (round_no, &idx) in rounds.iter().enumerate() {
        let node = &forest.nodes[idx];
        let path = forest.critical_path(idx);
        let chain = path
            .iter()
            .skip(1) // skip the round span itself
            .map(|(name, dur)| format!("{name} ({:.3} ms)", ms(*dur)))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push_str(&format!(
            "round {round_no:>3}: {:>10.3} ms  critical path: {}\n",
            ms(node.dur_ns),
            if chain.is_empty() { "(leaf)" } else { &chain }
        ));
        for &c in &node.children {
            let child = &forest.nodes[c];
            *child_totals.entry(child.name.clone()).or_insert(0) += child.dur_ns;
        }
    }
    let total: u64 = rounds.iter().map(|&i| forest.nodes[i].dur_ns).sum();
    out.push_str(&format!(
        "\n{} round(s), {:.3} ms total; attribution across rounds:\n",
        rounds.len(),
        ms(total)
    ));
    let self_total: u64 = rounds.iter().map(|&i| forest.self_ns(i)).sum();
    for (name, dur) in &child_totals {
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * *dur as f64 / total as f64
        };
        out.push_str(&format!(
            "  {:<24} {:>10.3} ms  {:>5.1}%\n",
            name,
            ms(*dur),
            pct
        ));
    }
    let self_pct = if total == 0 {
        0.0
    } else {
        100.0 * self_total as f64 / total as f64
    };
    out.push_str(&format!(
        "  {:<24} {:>10.3} ms  {:>5.1}%\n",
        "(round overhead)",
        ms(self_total),
        self_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_trace;

    /// A two-round engine trace shaped like the real emitter's output:
    /// assign > rank_round > {row_fill, rank_merge}.
    fn engine_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"run_start","id":1,"name":"t"}"#,
            r#"{"type":"span_open","id":2,"span":0,"parent":null,"name":"engine.assign","t_ns":0}"#,
            r#"{"type":"span_open","id":3,"span":1,"parent":0,"name":"engine.rank_round","t_ns":10}"#,
            r#"{"type":"span_open","id":4,"span":2,"parent":1,"name":"engine.row_fill","t_ns":20}"#,
            r#"{"type":"span_close","id":5,"span":2,"name":"engine.row_fill","dur_ns":600,"aborted":false}"#,
            r#"{"type":"span_open","id":6,"span":3,"parent":1,"name":"engine.rank_merge","t_ns":700}"#,
            r#"{"type":"span_close","id":7,"span":3,"name":"engine.rank_merge","dur_ns":200,"aborted":false}"#,
            r#"{"type":"span_close","id":8,"span":1,"name":"engine.rank_round","dur_ns":1000,"aborted":false}"#,
            r#"{"type":"span_open","id":9,"span":4,"parent":0,"name":"engine.rank_round","t_ns":1100}"#,
            r#"{"type":"span_close","id":10,"span":4,"name":"engine.rank_round","dur_ns":300,"aborted":false}"#,
            r#"{"type":"span_close","id":11,"span":0,"name":"engine.assign","dur_ns":2000,"aborted":false}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn builds_tree_with_parenting_and_close_data() {
        let forest = SpanForest::build(&engine_trace());
        assert_eq!(forest.nodes.len(), 5);
        assert_eq!(forest.roots, vec![0]);
        let assign = &forest.nodes[0];
        assert_eq!(assign.name, "engine.assign");
        assert_eq!(assign.children, vec![1, 4]);
        assert_eq!(forest.nodes[1].children, vec![2, 3]);
        assert!(forest.nodes.iter().all(|n| n.closed && !n.aborted));
        // assign self = 2000 - (1000 + 300); round 1 self = 1000 - 800.
        assert_eq!(forest.self_ns(0), 700);
        assert_eq!(forest.self_ns(1), 200);
        assert_eq!(forest.self_ns(2), 600);
    }

    #[test]
    fn aggregate_orders_by_self_time() {
        let stats = aggregate(&SpanForest::build(&engine_trace()));
        assert_eq!(stats[0].name, "engine.assign");
        assert_eq!(stats[0].self_ns, 700);
        let round = stats.iter().find(|s| s.name == ROUND_SPAN).unwrap();
        assert_eq!(round.count, 2);
        assert_eq!(round.total_ns, 1300);
        assert_eq!(round.self_ns, 200 + 300);
        let table = render_table(&stats);
        assert!(table.contains("engine.row_fill"));
        assert!(table.starts_with("span"));
    }

    #[test]
    fn folded_stacks_use_semicolon_paths_and_self_time() {
        let folded = SpanForest::build(&engine_trace()).folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"engine.assign 700"));
        // Two rank_round spans under the same stack: self times merge.
        assert!(lines.contains(&"engine.assign;engine.rank_round 500"));
        assert!(lines.contains(&"engine.assign;engine.rank_round;engine.row_fill 600"));
        assert!(lines.contains(&"engine.assign;engine.rank_round;engine.rank_merge 200"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn critical_path_follows_heaviest_children() {
        let forest = SpanForest::build(&engine_trace());
        let path = forest.critical_path(0);
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["engine.assign", "engine.rank_round", "engine.row_fill"]
        );
        assert_eq!(path[2].1, 600);
    }

    #[test]
    fn round_attribution_reports_each_round_and_totals() {
        let forest = SpanForest::build(&engine_trace());
        let report = render_rounds(&forest);
        assert!(report.contains("round   0"));
        assert!(report.contains("round   1"));
        assert!(report.contains("2 round(s)"));
        assert!(report.contains("engine.row_fill"));
        assert!(report.contains("(round overhead)"));
    }

    #[test]
    fn tolerates_truncated_traces() {
        // Open without close (crash mid-run) and a close for an unknown
        // id must not panic.
        let events = load_trace(
            &[
                r#"{"type":"span_open","id":1,"span":7,"parent":null,"name":"x","t_ns":5}"#,
                r#"{"type":"span_close","id":2,"span":99,"name":"y","dur_ns":1,"aborted":true}"#,
            ]
            .join("\n"),
        )
        .unwrap();
        let forest = SpanForest::build(&events);
        assert_eq!(forest.nodes.len(), 1);
        assert!(!forest.nodes[0].closed);
        assert_eq!(forest.self_ns(0), 0);
        assert!(render_rounds(&forest).contains("no engine.rank_round"));
    }
}
