//! The `report` subcommand: renders the observability plane's
//! `monitor_snapshot` / `monitor_alert` event families as a
//! health-over-time table plus an alert timeline — the offline
//! counterpart of watching a run's `--metrics-out` file.

use sparcle_telemetry::Json;

use crate::{kind_of, num_field};

/// One `monitor_snapshot` line, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotRow {
    /// Simulated time of the tick.
    pub time: f64,
    /// GR burn rate vs. the SLO budget.
    pub gr_burn: f64,
    /// Windowed γ-cache hit rate.
    pub cache_hit_rate: f64,
    /// Windowed warm Newton iterations per solve.
    pub warm_iters_per_solve: f64,
    /// Windowed arrivals per simulated second.
    pub arrival_rate: f64,
    /// Windowed admissions per simulated second.
    pub admit_rate: f64,
    /// DES queue depth at the tick.
    pub queue_depth: u64,
    /// p95 of windowed queue depths.
    pub queue_p95: u64,
    /// Displaced backlog at the tick.
    pub backlog: u64,
    /// Live applications at the tick.
    pub live: u64,
    /// Alert rules firing after the tick.
    pub alerts_firing: u64,
}

/// One `monitor_alert` line, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertRow {
    /// Simulated time of the transition.
    pub time: f64,
    /// Rule label.
    pub rule: String,
    /// `"firing"` or `"cleared"`.
    pub state: String,
    /// Observed value at the transition.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

/// Everything the `report` subcommand shows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorReport {
    /// Snapshot rows in trace order.
    pub snapshots: Vec<SnapshotRow>,
    /// Alert transitions in trace order.
    pub alerts: Vec<AlertRow>,
}

/// Extracts the monitor event families from a parsed trace. Unknown
/// kinds are ignored, so the report works on full mixed traces.
pub fn build(events: &[Json]) -> MonitorReport {
    let mut report = MonitorReport::default();
    let num = |e: &Json, k: &str| num_field(e, k).unwrap_or(0.0);
    for event in events {
        match kind_of(event) {
            "monitor_snapshot" => report.snapshots.push(SnapshotRow {
                time: num(event, "time"),
                gr_burn: num(event, "gr_burn"),
                cache_hit_rate: num(event, "cache_hit_rate"),
                warm_iters_per_solve: num(event, "warm_iters_per_solve"),
                arrival_rate: num(event, "arrival_rate"),
                admit_rate: num(event, "admit_rate"),
                queue_depth: num(event, "queue_depth") as u64,
                queue_p95: num(event, "queue_p95") as u64,
                backlog: num(event, "backlog") as u64,
                live: num(event, "live") as u64,
                alerts_firing: num(event, "alerts_firing") as u64,
            }),
            "monitor_alert" => report.alerts.push(AlertRow {
                time: num(event, "time"),
                rule: event
                    .get("rule")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                state: event
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                value: num(event, "value"),
                threshold: num(event, "threshold"),
            }),
            _ => {}
        }
    }
    report
}

impl MonitorReport {
    /// `true` when the trace carried no monitor events at all.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty() && self.alerts.is_empty()
    }

    /// The human-readable report: header, snapshot table, alert
    /// timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str(
                "no monitor events in trace — enable RuntimeConfig::monitor (or pass \
                 --monitor to a churn experiment) to record them\n",
            );
            return out;
        }
        let span = match (self.snapshots.first(), self.snapshots.last()) {
            (Some(first), Some(last)) => {
                format!(" over [{:.1}, {:.1}] sim-s", first.time, last.time)
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "monitor report: {} snapshots{span}, {} alert transitions\n",
            self.snapshots.len(),
            self.alerts.len(),
        ));
        if !self.snapshots.is_empty() {
            out.push_str(&format!(
                "\n{:>9} {:>7} {:>6} {:>8} {:>7} {:>7} {:>6} {:>5} {:>8} {:>5} {:>7}\n",
                "time",
                "burn",
                "hit%",
                "iters/s",
                "arr/s",
                "adm/s",
                "queue",
                "p95",
                "backlog",
                "live",
                "alerts",
            ));
            for row in &self.snapshots {
                out.push_str(&format!(
                    "{:>9.3} {:>7.2} {:>6.1} {:>8.1} {:>7.2} {:>7.2} {:>6} {:>5} {:>8} {:>5} {:>7}\n",
                    row.time,
                    row.gr_burn,
                    row.cache_hit_rate * 100.0,
                    row.warm_iters_per_solve,
                    row.arrival_rate,
                    row.admit_rate,
                    row.queue_depth,
                    row.queue_p95,
                    row.backlog,
                    row.live,
                    row.alerts_firing,
                ));
            }
        }
        out.push_str("\nalert timeline:\n");
        if self.alerts.is_empty() {
            out.push_str("  (no alerts — every detector stayed below threshold)\n");
        }
        for a in &self.alerts {
            let relation = if a.state == "firing" { ">" } else { "<=" };
            out.push_str(&format!(
                "  {:>9.3}  {:<24} {:<8} value {:.3} {relation} threshold {:.3}\n",
                a.time,
                a.rule,
                a.state.to_uppercase(),
                a.value,
                a.threshold,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_trace;

    fn monitor_trace() -> Vec<Json> {
        let lines = [
            r#"{"type":"run_start","name":"t"}"#,
            r#"{"type":"monitor_snapshot","time":5,"window":30,"gr_burn":0.0,"gr_violation_s":0,"be_rate":3.5,"arrival_rate":0.8,"admit_rate":0.6,"cache_hit_rate":0.97,"cache_lookups":120,"warm_iters_per_solve":51.0,"solves":12,"queue_depth":14,"queue_p95":14,"backlog":0,"live":4,"alerts_firing":0}"#,
            r#"{"type":"monitor_alert","time":10,"rule":"gr_burn_rate","state":"firing","value":3.42,"threshold":1.0}"#,
            r#"{"type":"monitor_snapshot","time":10,"window":30,"gr_burn":3.42,"gr_violation_s":0.86,"be_rate":3.1,"arrival_rate":0.9,"admit_rate":0.5,"cache_hit_rate":0.91,"cache_lookups":140,"warm_iters_per_solve":60.0,"solves":15,"queue_depth":17,"queue_p95":17,"backlog":2,"live":5,"alerts_firing":1}"#,
            r#"{"type":"monitor_alert","time":25,"rule":"gr_burn_rate","state":"cleared","value":0.2,"threshold":1.0}"#,
            r#"{"type":"runtime_arrival","time":11,"app":9,"class":"be","admitted":true,"rate":1.0}"#,
        ];
        load_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn decodes_both_monitor_families() {
        let r = build(&monitor_trace());
        assert_eq!(r.snapshots.len(), 2);
        assert_eq!(r.alerts.len(), 2);
        assert_eq!(r.snapshots[1].backlog, 2);
        assert_eq!(r.snapshots[1].alerts_firing, 1);
        assert_eq!(r.alerts[0].rule, "gr_burn_rate");
        assert_eq!(r.alerts[1].state, "cleared");
    }

    #[test]
    fn render_shows_table_and_timeline() {
        let text = build(&monitor_trace()).render();
        assert!(text.contains("monitor report: 2 snapshots over [5.0, 10.0] sim-s"));
        assert!(text.contains("burn"));
        assert!(text.contains("gr_burn_rate"));
        assert!(text.contains("FIRING"));
        assert!(text.contains("CLEARED"));
    }

    #[test]
    fn empty_trace_renders_a_hint() {
        let r = build(&[]);
        assert!(r.is_empty());
        assert!(r.render().contains("no monitor events"));
    }

    #[test]
    fn quiet_run_reports_no_alerts() {
        let events = load_trace(
            r#"{"type":"monitor_snapshot","time":5,"window":30,"gr_burn":0.0,"gr_violation_s":0,"be_rate":1.0,"arrival_rate":0.1,"admit_rate":0.1,"cache_hit_rate":1.0,"cache_lookups":0,"warm_iters_per_solve":0.0,"solves":0,"queue_depth":3,"queue_p95":3,"backlog":0,"live":1,"alerts_firing":0}"#,
        )
        .unwrap();
        let text = build(&events).render();
        assert!(text.contains("(no alerts"));
    }
}
