//! `sparcle-trace` — offline analysis of SPARCLE JSONL telemetry traces.
//!
//! ```text
//! sparcle-trace summary  <trace.jsonl>              per-kind counts + rollups
//!                                                   + cause taxonomy
//! sparcle-trace explain  <trace.jsonl> --app N      one app's/request's causal
//!                        | --lineage N | --pick O   lifecycle from id/causes
//! sparcle-trace report   <trace.jsonl>              monitor snapshot table +
//!                                                   alert timeline
//! sparcle-trace profile  <trace.jsonl> [--folded F] span self/total table,
//!                                                   per-round critical paths;
//!                                                   folded stacks to F
//! sparcle-trace diff     <a.jsonl> <b.jsonl>        semantic compare (ignores
//!                                                   wall-clock span times)
//! sparcle-trace validate <trace.jsonl>              offline schema check
//! ```
//!
//! `diff` and `validate` tolerate a truncated final line (a writer
//! killed mid-write) with a warning on stderr instead of refusing the
//! trace.
//!
//! Exit codes: `0` success (for `diff`: traces equivalent; for
//! `explain`: complete lifecycle), `1` finding (divergence / invalid
//! trace / orphaned lifecycle), `2` usage or I/O error.

use std::process::ExitCode;

use sparcle_trace_tools::{
    diff, explain, load_trace, load_trace_lenient, profile, report, summary, validate_trace_lenient,
};

const USAGE: &str =
    "usage: sparcle-trace <summary|explain|report|profile|diff|validate> <trace.jsonl> ...
  summary  <trace>                per-kind counts, rollups, cause taxonomy
  explain  <trace> --app <id>     one subject's causal lifecycle (id/causes
           | --lineage <id>       chain, what-if probes, cause codes); --pick
           | --pick <outcome>     selects the first admitted|rejected|shed
  report   <trace>                monitor snapshot table + alert timeline
  profile  <trace> [--folded <out>]  span profile, critical paths, folded stacks
  diff     <a> <b>                first diverging event (wall-clock-insensitive)
  validate <trace>                schema-check every line";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sparcle-trace: {message}");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or(USAGE)?;
    match cmd.as_str() {
        "summary" => {
            let [path] = rest else {
                return Err(USAGE.to_owned());
            };
            let events = load_trace(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", summary::summarize(&events).render());
            Ok(ExitCode::SUCCESS)
        }
        "explain" => {
            let (path, selector) = match rest {
                [path, flag, id] if flag == "--app" => {
                    let id = id
                        .parse()
                        .map_err(|_| format!("--app {id}: not a number"))?;
                    (path, Some(explain::Selector::App(id)))
                }
                [path, flag, id] if flag == "--lineage" => {
                    let id = id
                        .parse()
                        .map_err(|_| format!("--lineage {id}: not a number"))?;
                    (path, Some(explain::Selector::Lineage(id)))
                }
                [path, flag, _] if flag == "--pick" => (path, None),
                _ => return Err(USAGE.to_owned()),
            };
            let (events, truncated) =
                load_trace_lenient(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            if truncated {
                eprintln!("sparcle-trace: warning: {path}: skipped truncated final line");
            }
            let selector = match selector {
                Some(s) => s,
                None => {
                    let outcome = &rest[2];
                    let lineage = explain::pick_lineage(&events, outcome).ok_or(format!(
                        "{path}: no decision with outcome {outcome:?} in trace"
                    ))?;
                    explain::Selector::Lineage(lineage)
                }
            };
            let explanation =
                explain::explain(&events, selector).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", explanation.render());
            Ok(if explanation.is_complete() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "report" => {
            let [path] = rest else {
                return Err(USAGE.to_owned());
            };
            let events = load_trace(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            let monitor = report::build(&events);
            print!("{}", monitor.render());
            // Exit 1 on "nothing to report" so scripts notice a trace
            // recorded without monitoring.
            Ok(if monitor.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "profile" => {
            let (path, folded_out) = match rest {
                [path] => (path, None),
                [path, flag, out] if flag == "--folded" => (path, Some(out)),
                _ => return Err(USAGE.to_owned()),
            };
            let events = load_trace(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            let forest = profile::SpanForest::build(&events);
            if forest.nodes.is_empty() {
                return Err(format!(
                    "{path}: no span events — re-run the experiment with --trace-spans"
                ));
            }
            print!("{}", profile::render_table(&profile::aggregate(&forest)));
            println!();
            print!("{}", profile::render_rounds(&forest));
            if let Some(out) = folded_out {
                std::fs::write(out, forest.folded_stacks())
                    .map_err(|e| format!("write {out}: {e}"))?;
                println!("\nwrote folded stacks to {out}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [path_a, path_b] = rest else {
                return Err(USAGE.to_owned());
            };
            let (a, trunc_a) =
                load_trace_lenient(&read(path_a)?).map_err(|e| format!("{path_a}: {e}"))?;
            let (b, trunc_b) =
                load_trace_lenient(&read(path_b)?).map_err(|e| format!("{path_b}: {e}"))?;
            for (path, truncated) in [(path_a, trunc_a), (path_b, trunc_b)] {
                if truncated {
                    eprintln!("sparcle-trace: warning: {path}: skipped truncated final line");
                }
            }
            match diff::diff_traces(&a, &b) {
                None => {
                    println!(
                        "traces are semantically identical ({} events; wall-clock keys ignored)",
                        a.len()
                    );
                    Ok(ExitCode::SUCCESS)
                }
                Some(divergence) => {
                    println!("{}", divergence.render());
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "validate" => {
            let [path] = rest else {
                return Err(USAGE.to_owned());
            };
            match validate_trace_lenient(&read(path)?) {
                Ok((count, truncated)) => {
                    if truncated {
                        eprintln!("sparcle-trace: warning: {path}: skipped truncated final line");
                    }
                    println!("{path}: {count} events, schema OK");
                    Ok(ExitCode::SUCCESS)
                }
                Err((line, message)) => {
                    println!("{path}:{line}: {message}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}
