//! Property-based tests for the allocation crate: NUM solver optimality
//! conditions and availability-analysis consistency.

use proptest::prelude::*;
use sparcle_alloc::availability::PathAvailability;
use sparcle_alloc::num::{ConstraintRow, ConstraintSystem, ProportionalFairSolver};

/// Strategy: a feasible random constraint system where every app is
/// constrained (diagonal safety rows guarantee it).
fn arb_system(
    max_apps: usize,
    max_rows: usize,
) -> impl Strategy<Value = (ConstraintSystem, Vec<f64>)> {
    (1..=max_apps, 0..=max_rows)
        .prop_flat_map(|(apps, rows)| {
            let row = proptest::collection::vec(0.0f64..10.0, apps);
            let all_rows = proptest::collection::vec((row, 1.0f64..100.0), rows);
            let prios = proptest::collection::vec(0.1f64..5.0, apps);
            let diag_caps = proptest::collection::vec(1.0f64..100.0, apps);
            (Just(apps), all_rows, prios, diag_caps)
        })
        .prop_map(|(apps, all_rows, prios, diag_caps)| {
            let mut sys = ConstraintSystem::new(apps);
            for (coeffs, capacity) in all_rows {
                sys.push_row(ConstraintRow {
                    element: None,
                    capacity,
                    coeffs,
                });
            }
            for (i, &cap) in diag_caps.iter().enumerate() {
                let mut coeffs = vec![0.0; apps];
                coeffs[i] = 1.0;
                sys.push_row(ConstraintRow {
                    element: None,
                    capacity: cap,
                    coeffs,
                });
            }
            (sys, prios)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Solutions are strictly feasible and satisfy the KKT conditions.
    #[test]
    fn solver_is_feasible_and_stationary((sys, prios) in arb_system(6, 8)) {
        let alloc = ProportionalFairSolver::new()
            .solve(&sys, &prios)
            .expect("diagonal rows make it solvable");
        prop_assert!(alloc.rates.iter().all(|&x| x > 0.0));
        prop_assert!(alloc.feasibility_violation(&sys) <= 1e-9);
        prop_assert!(
            alloc.kkt_residual(&sys, &prios) < 1e-3,
            "kkt {}",
            alloc.kkt_residual(&sys, &prios)
        );
        prop_assert!(alloc.duals.iter().all(|&l| l >= 0.0));
    }

    /// The solver's utility is never beaten by scaled perturbations of
    /// its own answer that remain feasible (local optimality probe).
    #[test]
    fn no_feasible_perturbation_improves(
        (sys, prios) in arb_system(4, 6),
        bump in 0usize..4,
        delta in -0.2f64..0.2,
    ) {
        let alloc = ProportionalFairSolver::new().solve(&sys, &prios).unwrap();
        let i = bump % alloc.rates.len();
        let mut perturbed = alloc.rates.clone();
        perturbed[i] *= 1.0 + delta;
        // Feasible?
        let feasible = sys.rows().iter().all(|row| {
            let used: f64 = row.coeffs.iter().zip(&perturbed).map(|(&c, &x)| c * x).sum();
            used <= row.capacity
        });
        if feasible {
            let utility: f64 = prios
                .iter()
                .zip(&perturbed)
                .map(|(&p, &x)| p * x.ln())
                .sum();
            prop_assert!(
                utility <= alloc.utility + 1e-4 * alloc.utility.abs().max(1.0),
                "perturbation improved utility: {utility} > {}",
                alloc.utility
            );
        }
    }

    /// Doubling every priority leaves the optimal rates unchanged
    /// (scale invariance of weighted proportional fairness).
    #[test]
    fn priority_scale_invariance((sys, prios) in arb_system(5, 6)) {
        let a = ProportionalFairSolver::new().solve(&sys, &prios).unwrap();
        let doubled: Vec<f64> = prios.iter().map(|p| 2.0 * p).collect();
        let b = ProportionalFairSolver::new().solve(&sys, &doubled).unwrap();
        for (x, y) in a.rates.iter().zip(&b.rates) {
            prop_assert!((x - y).abs() / x.max(*y) < 1e-4, "{x} vs {y}");
        }
    }

    /// Monte-Carlo availability converges to the exact inclusion–
    /// exclusion value on random overlapping path sets.
    #[test]
    fn monte_carlo_matches_exact(
        paths in proptest::collection::vec(
            (proptest::collection::vec((0u64..12, 0.0f64..0.4), 1..5), 0.1f64..5.0),
            1..5,
        ),
        seed in 0u64..1000,
    ) {
        let mut pa = PathAvailability::new();
        // Deduplicate per-path element keys (same key twice in one path
        // is legal but keep pf consistent by first-wins).
        let mut pf_of: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for (elems, rate) in &paths {
            let fixed: Vec<(u64, f64)> = elems
                .iter()
                .map(|&(k, p)| {
                    let pf = *pf_of.entry(k).or_insert(p);
                    (k, pf)
                })
                .collect();
            pa.add_path_raw(fixed, *rate).unwrap();
        }
        let exact = pa.any_working().unwrap();
        let mc = pa.monte_carlo_any(60_000, seed);
        prop_assert!((exact - mc).abs() < 0.015, "exact {exact} vs mc {mc}");
    }

    /// Min-rate availability is monotone in the threshold and coincides
    /// with any-working at threshold → 0⁺ and with the all-paths-up
    /// probability at the total rate.
    #[test]
    fn min_rate_monotonicity(
        paths in proptest::collection::vec(
            (proptest::collection::vec((0u64..10, 0.0f64..0.3), 1..4), 0.5f64..3.0),
            1..4,
        ),
    ) {
        let mut pa = PathAvailability::new();
        let mut pf_of: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        let mut total = 0.0;
        for (elems, rate) in &paths {
            let fixed: Vec<(u64, f64)> = elems
                .iter()
                .map(|&(k, p)| (k, *pf_of.entry(k).or_insert(p)))
                .collect();
            pa.add_path_raw(fixed, *rate).unwrap();
            total += rate;
        }
        let any = pa.any_working().unwrap();
        let tiny = pa.min_rate(1e-9).unwrap();
        prop_assert!((tiny - any).abs() < 1e-9, "tiny-threshold = any-working");
        let mut last = 1.0f64;
        for step in 0..=10 {
            let r = total * step as f64 / 10.0;
            let v = pa.min_rate(r).unwrap();
            prop_assert!(v <= last + 1e-9, "monotone: {v} after {last}");
            last = v;
        }
        // Exactly the total requires every path up.
        let all_up = pa.exactly_working((1 << paths.len()) - 1).unwrap()
            + {
                // Other exact sets cannot reach the total unless some
                // rate is zero (excluded by the strategy), so min_rate
                // at total equals P(all up).
                0.0
            };
        prop_assert!((pa.min_rate(total).unwrap() - all_up).abs() < 1e-9);
    }
}
