//! Priority-share capacity prediction — the paper's equation (6).
//!
//! Before running the task assignment for a newly arriving Best-Effort
//! application `J`, SPARCLE predicts how much of each element's capacity
//! `J` would receive *after* the proportional-fair allocation, so that
//! Algorithm 2 optimizes against realistic capacities instead of raw
//! ones. Theorem 3 shows the minimum allocated share on an element is
//! proportional to priority, hence:
//!
//! ```text
//! C_pred_n = P_J / (P_J + Σ_{J' ∈ J_n} P_{J'}) · C_n
//! ```
//!
//! where `J_n` is the set of BE applications already placed on element
//! `n` (the paper's worked example: a new application `b` with
//! `P_b = 2 P_a` arriving on an NCP already hosting `a` sees
//! `C_pred = 2/3 · C_n`).
//!
//! Resources reserved by Guaranteed-Rate applications are *not* shared,
//! so they must be subtracted from `C_n` before prediction (the system
//! pipeline in `sparcle-core` does this by keeping a GR-residual
//! [`CapacityMap`]).

use sparcle_model::{CapacityMap, LinkId, LoadMap, NcpId, Network, NetworkElement};

/// Tracks, per network element, the total priority of the BE applications
/// already placed there (`Σ_{J' ∈ J_n} P_{J'}`).
///
/// # Examples
///
/// The paper's worked example: a new application with twice the resident
/// priority sees 2/3 of the element's capacity.
///
/// ```
/// use sparcle_alloc::PriorityLoads;
/// use sparcle_model::{LoadMap, NcpId, NetworkBuilder, ResourceKind, ResourceVec};
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut nb = NetworkBuilder::new();
/// let n = nb.add_ncp("n", ResourceVec::cpu(90.0));
/// nb.add_ncp("other", ResourceVec::cpu(1.0));
/// let network = nb.build()?;
///
/// let mut tracker = PriorityLoads::zeroed(&network);
/// let mut load = LoadMap::zeroed(&network);
/// load.add_ct_load(n, &ResourceVec::cpu(5.0));
/// tracker.add_app(&load, 1.0); // incumbent, priority 1
///
/// let predicted = tracker.predict(&network.capacity_map(), 2.0);
/// assert!((predicted.ncp(n).amount(ResourceKind::Cpu) - 60.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityLoads {
    ncps: Vec<f64>,
    links: Vec<f64>,
}

impl PriorityLoads {
    /// An empty tracker shaped like `network`.
    pub fn zeroed(network: &Network) -> Self {
        PriorityLoads {
            ncps: vec![0.0; network.ncp_count()],
            links: vec![0.0; network.link_count()],
        }
    }

    /// Records that an application with `priority` occupies every element
    /// its `load` touches.
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not positive and finite.
    pub fn add_app(&mut self, load: &LoadMap, priority: f64) {
        assert!(
            priority.is_finite() && priority > 0.0,
            "priority must be positive and finite"
        );
        for element in load.loaded_elements() {
            match element {
                NetworkElement::Ncp(id) => self.ncps[id.index()] += priority,
                NetworkElement::Link(id) => self.links[id.index()] += priority,
            }
        }
    }

    /// Overwrites the resident-priority total of one element.
    ///
    /// The incremental state core in `sparcle-core` keeps this tracker a
    /// *pure function* of the admitted-application list: on departure it
    /// re-derives each touched element as the fold `Σ priorities` over
    /// the surviving applications (in admission order, matching
    /// [`Self::add_app`]'s accumulation bit-for-bit) and stores the
    /// result here, instead of the clamped subtraction of
    /// [`Self::remove_app`] which drifts in float arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `total` is negative or non-finite, or `element` is out
    /// of range.
    pub fn set_element(&mut self, element: NetworkElement, total: f64) {
        assert!(
            total.is_finite() && total >= 0.0,
            "resident priority total must be finite and non-negative"
        );
        match element {
            NetworkElement::Ncp(id) => self.ncps[id.index()] = total,
            NetworkElement::Link(id) => self.links[id.index()] = total,
        }
    }

    /// Removes a previously added application (e.g. on departure).
    pub fn remove_app(&mut self, load: &LoadMap, priority: f64) {
        for element in load.loaded_elements() {
            match element {
                NetworkElement::Ncp(id) => {
                    self.ncps[id.index()] = (self.ncps[id.index()] - priority).max(0.0);
                }
                NetworkElement::Link(id) => {
                    self.links[id.index()] = (self.links[id.index()] - priority).max(0.0);
                }
            }
        }
    }

    /// Total priority already resident on an NCP.
    pub fn ncp(&self, id: NcpId) -> f64 {
        self.ncps[id.index()]
    }

    /// Total priority already resident on a link.
    pub fn link(&self, id: LinkId) -> f64 {
        self.links[id.index()]
    }

    /// Applies equation (6): produces the predicted capacity map a new BE
    /// application with `priority` should assume, starting from `base`
    /// (the network capacity minus GR reservations).
    ///
    /// Elements hosting no BE application keep their full base capacity
    /// (`J_n = ∅` ⇒ share 1).
    pub fn predict(&self, base: &CapacityMap, priority: f64) -> CapacityMap {
        assert!(
            priority.is_finite() && priority > 0.0,
            "priority must be positive and finite"
        );
        let mut predicted = base.clone();
        for (i, &resident) in self.ncps.iter().enumerate() {
            if resident > 0.0 {
                let share = priority / (priority + resident);
                predicted.scale_element(NetworkElement::Ncp(NcpId::new(i as u32)), share);
            }
        }
        for (i, &resident) in self.links.iter().enumerate() {
            if resident > 0.0 {
                let share = priority / (priority + resident);
                predicted.scale_element(NetworkElement::Link(LinkId::new(i as u32)), share);
            }
        }
        predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, ResourceKind, ResourceVec};

    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(90.0));
        let y = b.add_ncp("y", ResourceVec::cpu(60.0));
        b.add_link("xy", x, y, 30.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_tracker_predicts_full_capacity() {
        let network = net();
        let tracker = PriorityLoads::zeroed(&network);
        let base = network.capacity_map();
        let predicted = tracker.predict(&base, 1.0);
        assert_eq!(predicted, base);
    }

    #[test]
    fn paper_worked_example_two_thirds() {
        // App a (priority 1) occupies NCP0. New app b with priority 2
        // should see 2/3 of NCP0's capacity.
        let network = net();
        let mut tracker = PriorityLoads::zeroed(&network);
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(5.0));
        tracker.add_app(&load, 1.0);
        let predicted = tracker.predict(&network.capacity_map(), 2.0);
        assert!((predicted.ncp(NcpId::new(0)).amount(ResourceKind::Cpu) - 60.0).abs() < 1e-9);
        // Untouched elements keep full capacity.
        assert_eq!(predicted.ncp(NcpId::new(1)).amount(ResourceKind::Cpu), 60.0);
        assert_eq!(predicted.link(LinkId::new(0)), 30.0);
    }

    #[test]
    fn equal_priorities_halve_links_too() {
        let network = net();
        let mut tracker = PriorityLoads::zeroed(&network);
        let mut load = LoadMap::zeroed(&network);
        load.add_tt_load(LinkId::new(0), 8.0);
        tracker.add_app(&load, 3.0);
        let predicted = tracker.predict(&network.capacity_map(), 3.0);
        assert!((predicted.link(LinkId::new(0)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn accumulates_multiple_residents() {
        let network = net();
        let mut tracker = PriorityLoads::zeroed(&network);
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(1), &ResourceVec::cpu(1.0));
        tracker.add_app(&load, 1.0);
        tracker.add_app(&load, 2.0);
        assert_eq!(tracker.ncp(NcpId::new(1)), 3.0);
        // New app priority 1: share 1/(1+3) = 1/4 of 60 = 15.
        let predicted = tracker.predict(&network.capacity_map(), 1.0);
        assert!((predicted.ncp(NcpId::new(1)).amount(ResourceKind::Cpu) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn remove_undoes_add() {
        let network = net();
        let mut tracker = PriorityLoads::zeroed(&network);
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(1.0));
        load.add_tt_load(LinkId::new(0), 1.0);
        tracker.add_app(&load, 2.5);
        tracker.remove_app(&load, 2.5);
        assert_eq!(tracker.ncp(NcpId::new(0)), 0.0);
        assert_eq!(tracker.link(LinkId::new(0)), 0.0);
    }

    #[test]
    fn prediction_respects_residual_base() {
        // A GR app reserved half of NCP0; prediction starts from the
        // residual, then shares it.
        let network = net();
        let mut base = network.capacity_map();
        base.ncp_mut(NcpId::new(0)).sub(ResourceKind::Cpu, 45.0);
        let mut tracker = PriorityLoads::zeroed(&network);
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(1.0));
        tracker.add_app(&load, 1.0);
        let predicted = tracker.predict(&base, 1.0);
        assert!((predicted.ncp(NcpId::new(0)).amount(ResourceKind::Cpu) - 22.5).abs() < 1e-9);
    }
}
