//! Weighted max-min fair rate allocation — an alternative policy to the
//! paper's weighted proportional fairness.
//!
//! Max-min fairness raises every application's rate together (scaled by
//! its weight) until some constraint row saturates; the applications
//! binding there are frozen and the rest keep growing. The classic
//! *progressive filling* algorithm computes the exact allocation in at
//! most one pass per constraint row.
//!
//! Compared to proportional fairness (problem (4)): max-min protects the
//! weakest flow absolutely — no application can gain by starving the
//! minimum — at the cost of total utility. Both are exposed so a
//! deployment can choose per §IV-C's QoE goals; the system pipeline
//! defaults to the paper's proportional fairness.

use crate::num::{AllocError, ConstraintSystem};

/// The result of a max-min fair allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMinAllocation {
    /// Allocated rate per application.
    pub rates: Vec<f64>,
    /// The filling level at which each application froze (its rate
    /// divided by its weight).
    pub levels: Vec<f64>,
}

/// Computes the weighted max-min fair allocation by progressive filling.
///
/// Rates grow as `x_i = w_i · t` with a common level `t`; whenever a
/// row saturates, every application with positive coefficient there is
/// frozen at the current level.
///
/// # Errors
///
/// Mirrors the proportional-fair solver: [`AllocError::Unbounded`] when
/// some application is never constrained, [`AllocError::Infeasible`]
/// when an application loads a zero-capacity row, and
/// [`AllocError::BadPriority`] for non-positive weights.
///
/// # Examples
///
/// One unit-capacity link shared by a light and a heavy user of equal
/// weight splits by *load*, not rate: with coefficients 1 and 3 the
/// fill stops at `t = 0.25`, giving both the same rate 0.25.
///
/// ```
/// use sparcle_alloc::maxmin::max_min_allocation;
/// use sparcle_alloc::num::{ConstraintRow, ConstraintSystem};
///
/// # fn main() -> Result<(), sparcle_alloc::num::AllocError> {
/// let mut sys = ConstraintSystem::new(2);
/// sys.push_row(ConstraintRow { element: None, capacity: 1.0, coeffs: vec![1.0, 3.0] });
/// let alloc = max_min_allocation(&sys, &[1.0, 1.0])?;
/// assert!((alloc.rates[0] - 0.25).abs() < 1e-9);
/// assert!((alloc.rates[1] - 0.25).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn max_min_allocation(
    system: &ConstraintSystem,
    weights: &[f64],
) -> Result<MaxMinAllocation, AllocError> {
    let n = system.app_count();
    assert_eq!(weights.len(), n, "one weight per application");
    for &w in weights {
        if !w.is_finite() || w <= 0.0 {
            return Err(AllocError::BadPriority(w));
        }
    }
    let rows = system.rows();
    for i in 0..n {
        let mut constrained = false;
        for row in rows {
            if row.coeffs[i] > 0.0 {
                if row.capacity <= 0.0 {
                    return Err(AllocError::Infeasible { app: i });
                }
                constrained = true;
            }
        }
        if !constrained {
            return Err(AllocError::Unbounded { app: i });
        }
    }

    let mut frozen = vec![false; n];
    let mut rates = vec![0.0; n];
    let mut levels = vec![0.0; n];
    let mut used: Vec<f64> = vec![0.0; rows.len()];
    let mut row_open: Vec<bool> = rows.iter().map(|_| true).collect();
    let mut level = 0.0f64;
    while frozen.iter().any(|&f| !f) {
        // How much can the common level still grow before some open row
        // with growing (unfrozen) load saturates?
        let mut next: Option<(f64, usize)> = None;
        for (j, row) in rows.iter().enumerate() {
            if !row_open[j] {
                continue;
            }
            let growth: f64 = row
                .coeffs
                .iter()
                .zip(weights)
                .zip(&frozen)
                .map(|((&c, &w), &fr)| if fr { 0.0 } else { c * w })
                .sum();
            if growth <= 0.0 {
                continue;
            }
            let slack = row.capacity - used[j];
            let delta = slack / growth;
            if next.is_none_or(|(d, _)| delta < d) {
                next = Some((delta, j));
            }
        }
        let Some((delta, saturating)) = next else {
            // No open row constrains the remaining apps — but we proved
            // every app is constrained, so all its rows must already be
            // saturated with zero slack; freeze the rest at the current
            // level.
            for i in 0..n {
                if !frozen[i] {
                    frozen[i] = true;
                    levels[i] = level;
                }
            }
            break;
        };
        level += delta;
        // Advance all unfrozen rates and row usages.
        for (j, row) in rows.iter().enumerate() {
            let growth: f64 = row
                .coeffs
                .iter()
                .zip(weights)
                .zip(&frozen)
                .map(|((&c, &w), &fr)| if fr { 0.0 } else { c * w })
                .sum();
            used[j] += growth * delta;
        }
        for i in 0..n {
            if !frozen[i] {
                rates[i] = weights[i] * level;
            }
        }
        // Freeze the apps loading the saturated row.
        row_open[saturating] = false;
        for i in 0..n {
            if !frozen[i] && rows[saturating].coeffs[i] > 0.0 {
                frozen[i] = true;
                levels[i] = level;
            }
        }
    }
    Ok(MaxMinAllocation { rates, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::{ConstraintRow, ProportionalFairSolver};

    fn system(rows: Vec<(f64, Vec<f64>)>, apps: usize) -> ConstraintSystem {
        let mut sys = ConstraintSystem::new(apps);
        for (capacity, coeffs) in rows {
            sys.push_row(ConstraintRow {
                element: None,
                capacity,
                coeffs,
            });
        }
        sys
    }

    #[test]
    fn equal_apps_split_evenly() {
        let sys = system(vec![(2.0, vec![1.0, 1.0])], 2);
        let a = max_min_allocation(&sys, &[1.0, 1.0]).unwrap();
        assert!((a.rates[0] - 1.0).abs() < 1e-12);
        assert!((a.rates[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_shares() {
        let sys = system(vec![(3.0, vec![1.0, 1.0])], 2);
        let a = max_min_allocation(&sys, &[2.0, 1.0]).unwrap();
        assert!((a.rates[0] - 2.0).abs() < 1e-12);
        assert!((a.rates[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classic_line_network_protects_the_long_flow() {
        // Flow 0 crosses both links; flows 1, 2 one each. Max-min gives
        // everyone 0.5 (proportional fairness gives the long flow 1/3).
        let sys = system(
            vec![(1.0, vec![1.0, 1.0, 0.0]), (1.0, vec![1.0, 0.0, 1.0])],
            3,
        );
        let mm = max_min_allocation(&sys, &[1.0, 1.0, 1.0]).unwrap();
        assert!((mm.rates[0] - 0.5).abs() < 1e-9, "{:?}", mm.rates);
        assert!((mm.rates[1] - 0.5).abs() < 1e-9);
        assert!((mm.rates[2] - 0.5).abs() < 1e-9);
        let pf = ProportionalFairSolver::new()
            .solve(&sys, &[1.0, 1.0, 1.0])
            .unwrap();
        assert!(
            mm.rates[0] > pf.rates[0],
            "max-min protects the long flow: {} vs {}",
            mm.rates[0],
            pf.rates[0]
        );
    }

    #[test]
    fn second_stage_fills_the_leftover() {
        // App 0 saturates a private tight row; app 1 keeps filling its
        // looser one.
        let sys = system(vec![(1.0, vec![1.0, 0.0]), (5.0, vec![0.0, 1.0])], 2);
        let a = max_min_allocation(&sys, &[1.0, 1.0]).unwrap();
        assert!((a.rates[0] - 1.0).abs() < 1e-12);
        assert!((a.rates[1] - 5.0).abs() < 1e-12);
        assert!(a.levels[0] < a.levels[1]);
    }

    #[test]
    fn allocation_is_feasible_and_maximal() {
        let sys = system(
            vec![
                (4.0, vec![1.0, 2.0, 0.0]),
                (3.0, vec![0.0, 1.0, 1.0]),
                (10.0, vec![3.0, 0.0, 1.0]),
            ],
            3,
        );
        let a = max_min_allocation(&sys, &[1.0, 2.0, 0.5]).unwrap();
        for row in sys.rows() {
            let used: f64 = row.coeffs.iter().zip(&a.rates).map(|(&c, &x)| c * x).sum();
            assert!(used <= row.capacity + 1e-9);
        }
        // Max-min maximality: every app is blocked by some saturated row.
        for i in 0..3 {
            let blocked = sys.rows().iter().any(|row| {
                row.coeffs[i] > 0.0 && {
                    let used: f64 = row.coeffs.iter().zip(&a.rates).map(|(&c, &x)| c * x).sum();
                    (row.capacity - used).abs() < 1e-9
                }
            });
            assert!(blocked, "app {i} could still grow");
        }
    }

    #[test]
    fn errors_match_proportional_solver() {
        let sys = system(vec![(1.0, vec![1.0, 0.0])], 2);
        assert_eq!(
            max_min_allocation(&sys, &[1.0, 1.0]),
            Err(AllocError::Unbounded { app: 1 })
        );
        let sys = system(vec![(0.0, vec![1.0])], 1);
        assert_eq!(
            max_min_allocation(&sys, &[1.0]),
            Err(AllocError::Infeasible { app: 0 })
        );
        let sys = system(vec![(1.0, vec![1.0])], 1);
        assert_eq!(
            max_min_allocation(&sys, &[0.0]),
            Err(AllocError::BadPriority(0.0))
        );
    }
}
