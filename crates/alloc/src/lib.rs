//! Resource allocation algorithms for SPARCLE (§IV-C/D of the paper).
//!
//! Three building blocks sit in this crate, each usable on its own:
//!
//! * [`num`] — the weighted proportional-fair rate allocator solving
//!   problem (4) `max Σ P_i log x_i s.t. R X ≤ C` for all present
//!   Best-Effort applications, with KKT verification.
//! * [`maxmin`] — a weighted max-min fair allocator (progressive
//!   filling) as an alternative policy.
//! * [`predict`] — the priority-share capacity prediction of eq. (6),
//!   which lets the task assignment of a newly arriving BE application
//!   anticipate the share it will receive next to already-placed ones.
//! * [`availability`] — exact (inclusion–exclusion) and Monte-Carlo
//!   availability analysis over overlapping task assignment paths: BE
//!   "at least one path works" availability and the GR min-rate
//!   availability of eq. (7).
//!
//! The loops that *add* paths until a QoE target is met live in
//! `sparcle-core::system`, because they need the task assignment
//! algorithm; this crate is pure analysis.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod availability;
pub mod maxmin;
pub mod num;
pub mod predict;

pub use availability::{AvailabilityError, PathAvailability};
pub use maxmin::{max_min_allocation, MaxMinAllocation};
pub use num::{
    AllocError, Allocation, ConstraintRow, ConstraintSystem, IncrementalConstraints,
    ProportionalFairSolver, SolveStats,
};
pub use predict::PriorityLoads;
