//! Weighted proportional-fair rate allocation — the paper's problem (4).
//!
//! Given the placements of all present Best-Effort applications, SPARCLE
//! solves
//!
//! ```text
//! maximize   Σ_i P_i log(x_i)
//! subject to R X ≤ C,   X ≥ 0
//! ```
//!
//! where column `i` of `R` is application `i`'s per-data-unit load on
//! every (element, resource-kind) pair and `C` stacks the corresponding
//! capacities. The objective is strictly concave and the feasible set is
//! a polytope, so the optimum is unique.
//!
//! [`ProportionalFairSolver`] solves the problem with a log-barrier
//! path-following method in the variables `u_i = log x_i` (a geometric
//! program: the objective is linear in `u` and each constraint
//! `Σ_i R_ji e^{u_i} ≤ C_j` is convex), which is robust for the small,
//! dense systems that arise here (tens of applications, hundreds of
//! constraint rows). The KKT conditions of the original problem are
//! checked by [`Allocation::kkt_residual`].

use sparcle_model::{LoadMap, Network, NetworkElement, ResourceKind};
use std::error::Error;
use std::fmt;

/// One capacity constraint row: `Σ_i coeffs[i] · x_i ≤ capacity`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintRow {
    /// Which network element and resource kind this row models (for
    /// diagnostics; not used by the solver).
    pub element: Option<(NetworkElement, ResourceKind)>,
    /// Available capacity `C_j` (must be positive; zero-capacity rows
    /// with any positive coefficient make the problem infeasible).
    pub capacity: f64,
    /// Per-application load coefficients `R_ji` (non-negative).
    pub coeffs: Vec<f64>,
}

/// The constraint system `R X ≤ C` for a set of applications.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSystem {
    rows: Vec<ConstraintRow>,
    app_count: usize,
}

impl ConstraintSystem {
    /// Creates an empty system for `app_count` applications.
    pub fn new(app_count: usize) -> Self {
        ConstraintSystem {
            rows: Vec::new(),
            app_count,
        }
    }

    /// Number of applications (columns).
    pub fn app_count(&self) -> usize {
        self.app_count
    }

    /// The accumulated rows.
    pub fn rows(&self) -> &[ConstraintRow] {
        &self.rows
    }

    /// Adds a raw constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` length differs from the app count or any value
    /// is negative/non-finite.
    pub fn push_row(&mut self, row: ConstraintRow) {
        assert_eq!(row.coeffs.len(), self.app_count, "coefficient arity");
        assert!(
            row.capacity.is_finite() && row.capacity >= 0.0,
            "capacity must be finite and non-negative"
        );
        assert!(
            row.coeffs.iter().all(|&c| c.is_finite() && c >= 0.0),
            "coefficients must be finite and non-negative"
        );
        // Rows with no load never bind.
        if row.coeffs.iter().any(|&c| c > 0.0) {
            self.rows.push(row);
        }
    }

    /// Builds the system from per-application [`LoadMap`]s over a network
    /// with the given available capacities: one row per (NCP, resource
    /// kind) with any load, one per link with any load.
    pub fn from_loads(
        network: &Network,
        capacities: &sparcle_model::CapacityMap,
        loads: &[&LoadMap],
    ) -> Self {
        let mut sys = ConstraintSystem::new(loads.len());
        for ncp in network.ncp_ids() {
            // Collect every resource kind any app loads on this NCP.
            let mut kinds: Vec<ResourceKind> = Vec::new();
            for load in loads {
                for kind in load.ncp(ncp).kinds() {
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
            }
            kinds.sort();
            for kind in kinds {
                let coeffs: Vec<f64> = loads.iter().map(|l| l.ncp(ncp).amount(kind)).collect();
                sys.push_row(ConstraintRow {
                    element: Some((NetworkElement::Ncp(ncp), kind)),
                    capacity: capacities.ncp(ncp).amount(kind),
                    coeffs,
                });
            }
        }
        for link in network.link_ids() {
            let coeffs: Vec<f64> = loads.iter().map(|l| l.link(link)).collect();
            sys.push_row(ConstraintRow {
                element: Some((NetworkElement::Link(link), ResourceKind::Bandwidth)),
                capacity: capacities.link(link),
                coeffs,
            });
        }
        sys
    }
}

/// Why the allocator failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AllocError {
    /// An application has a positive load on a zero-capacity row — no
    /// positive rate is feasible.
    Infeasible {
        /// The application (column) that cannot receive any rate.
        app: usize,
    },
    /// An application has no binding constraint at all, so its
    /// proportional-fair rate is unbounded.
    Unbounded {
        /// The unconstrained application.
        app: usize,
    },
    /// A priority was non-positive or non-finite.
    BadPriority(f64),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Infeasible { app } => {
                write!(f, "application {app} loads a zero-capacity element")
            }
            AllocError::Unbounded { app } => {
                write!(
                    f,
                    "application {app} is unconstrained; its fair rate is unbounded"
                )
            }
            AllocError::BadPriority(p) => {
                write!(f, "priority must be positive and finite, got {p}")
            }
        }
    }
}

impl Error for AllocError {}

/// The result of solving problem (4).
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Optimal processing rate `x_i` per application.
    pub rates: Vec<f64>,
    /// Dual price `λ_j` per constraint row.
    pub duals: Vec<f64>,
    /// Achieved objective `Σ P_i log x_i`.
    pub utility: f64,
}

impl Allocation {
    /// Maximum KKT stationarity residual `|P_i / x_i − Σ_j λ_j R_ji|`
    /// relative to `P_i / x_i`, over all applications. Near-zero means
    /// the allocation is (numerically) optimal.
    pub fn kkt_residual(&self, system: &ConstraintSystem, priorities: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, (&rate, &priority)) in self.rates.iter().zip(priorities).enumerate() {
            let grad = priority / rate;
            let price: f64 = system
                .rows()
                .iter()
                .zip(&self.duals)
                .map(|(row, &lambda)| lambda * row.coeffs[i])
                .sum();
            worst = worst.max((grad - price).abs() / grad.max(1e-300));
        }
        worst
    }

    /// Maximum relative constraint violation `max_j (R X − C)_j / C_j`
    /// (zero when strictly feasible).
    pub fn feasibility_violation(&self, system: &ConstraintSystem) -> f64 {
        let mut worst: f64 = 0.0;
        for row in system.rows() {
            let used: f64 = row
                .coeffs
                .iter()
                .zip(&self.rates)
                .map(|(&c, &x)| c * x)
                .sum();
            if row.capacity > 0.0 {
                worst = worst.max((used - row.capacity) / row.capacity);
            } else if used > 0.0 {
                worst = f64::INFINITY;
            }
        }
        worst
    }
}

/// Log-barrier path-following solver for the weighted proportional-fair
/// allocation problem (4).
///
/// # Examples
///
/// Two applications sharing one unit-capacity link, one with twice the
/// priority of the other, split the capacity 2:1 (Theorem 3's
/// proportionality):
///
/// ```
/// use sparcle_alloc::num::{ConstraintRow, ConstraintSystem, ProportionalFairSolver};
///
/// # fn main() -> Result<(), sparcle_alloc::num::AllocError> {
/// let mut sys = ConstraintSystem::new(2);
/// sys.push_row(ConstraintRow { element: None, capacity: 1.0, coeffs: vec![1.0, 1.0] });
/// let alloc = ProportionalFairSolver::new().solve(&sys, &[2.0, 1.0])?;
/// assert!((alloc.rates[0] - 2.0 / 3.0).abs() < 1e-6);
/// assert!((alloc.rates[1] - 1.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProportionalFairSolver {
    /// Initial barrier weight.
    mu0: f64,
    /// Barrier reduction factor per outer iteration.
    mu_shrink: f64,
    /// Outer iterations (final μ = mu0 · mu_shrink^outer).
    outer_iters: usize,
    /// Gradient-ascent steps per outer iteration.
    inner_iters: usize,
}

impl Default for ProportionalFairSolver {
    fn default() -> Self {
        ProportionalFairSolver {
            mu0: 1.0,
            mu_shrink: 0.15,
            outer_iters: 11,
            inner_iters: 60,
        }
    }
}

impl ProportionalFairSolver {
    /// Creates a solver with default accuracy (KKT residual ≲ 1e-6 on
    /// well-scaled problems).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with custom iteration budget; larger budgets give
    /// tighter KKT residuals.
    pub fn with_iterations(outer_iters: usize, inner_iters: usize) -> Self {
        ProportionalFairSolver {
            outer_iters,
            inner_iters,
            ..Self::default()
        }
    }

    /// Solves problem (4).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadPriority`] for non-positive priorities,
    /// [`AllocError::Unbounded`] when an application has no constraint,
    /// and [`AllocError::Infeasible`] when an application can never get a
    /// positive rate.
    pub fn solve(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
    ) -> Result<Allocation, AllocError> {
        self.solve_impl(system, priorities, None)
    }

    /// Like [`Self::solve`] but warm-started from a previous allocation
    /// (e.g. the last epoch's rates during capacity fluctuation). The
    /// start is scaled into the strictly feasible interior before the
    /// barrier iteration begins, so an infeasible or stale start is
    /// safe; the answer is the same optimum, typically reached in fewer
    /// inner iterations.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_warm(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
        start: &[f64],
    ) -> Result<Allocation, AllocError> {
        assert_eq!(start.len(), system.app_count(), "one start rate per app");
        self.solve_impl(system, priorities, Some(start))
    }

    fn solve_impl(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
        start: Option<&[f64]>,
    ) -> Result<Allocation, AllocError> {
        let n = system.app_count();
        assert_eq!(priorities.len(), n, "one priority per application");
        for &p in priorities {
            if !p.is_finite() || p <= 0.0 {
                return Err(AllocError::BadPriority(p));
            }
        }
        let rows = system.rows();
        // Sanity: every app must be constrained by a positive-capacity
        // row, and never by a zero-capacity one.
        for i in 0..n {
            let mut constrained = false;
            for row in rows {
                if row.coeffs[i] > 0.0 {
                    if row.capacity <= 0.0 {
                        return Err(AllocError::Infeasible { app: i });
                    }
                    constrained = true;
                }
            }
            if !constrained {
                return Err(AllocError::Unbounded { app: i });
            }
        }

        // Strictly feasible start: x_i = (1/2n) · min over binding rows
        // of C_j / R_ji — or the caller's warm start pulled into the
        // interior.
        let cold: Vec<f64> = (0..n)
            .map(|i| {
                let cap = rows
                    .iter()
                    .filter(|r| r.coeffs[i] > 0.0)
                    .map(|r| r.capacity / r.coeffs[i])
                    .fold(f64::INFINITY, f64::min);
                (cap / (2.0 * n as f64)).max(1e-12)
            })
            .collect();
        let x0: Vec<f64> = match start {
            None => cold,
            Some(warm) => {
                // Replace non-positive entries, then shrink uniformly
                // until every row has at least 10 % slack.
                let mut x: Vec<f64> = warm
                    .iter()
                    .zip(&cold)
                    .map(|(&w, &c)| if w.is_finite() && w > 0.0 { w } else { c })
                    .collect();
                let mut worst = 0.0f64;
                for row in rows {
                    let used: f64 = row.coeffs.iter().zip(&x).map(|(&c, &xi)| c * xi).sum();
                    if row.capacity > 0.0 {
                        worst = worst.max(used / row.capacity);
                    }
                }
                if worst > 0.9 {
                    let shrink = 0.9 / worst;
                    for xi in &mut x {
                        *xi *= shrink;
                    }
                }
                x
            }
        };
        let mut u: Vec<f64> = x0.iter().map(|&x| x.max(1e-300).ln()).collect();

        let pscale = priorities.iter().cloned().fold(f64::MIN, f64::max);
        let mut mu = self.mu0 * pscale;
        let mut slacks = vec![0.0; rows.len()];
        for _ in 0..self.outer_iters {
            self.maximize_barrier(rows, priorities, mu, &mut u, &mut slacks);
            mu *= self.mu_shrink;
        }
        mu /= self.mu_shrink; // μ of the last completed solve

        let rates: Vec<f64> = u.iter().map(|&ui| ui.exp()).collect();
        // Dual estimate from the barrier: λ_j = μ / slack_j.
        compute_slacks(rows, &rates, &mut slacks);
        let duals: Vec<f64> = slacks.iter().map(|&s| mu / s.max(1e-300)).collect();
        let utility = priorities
            .iter()
            .zip(&rates)
            .map(|(&p, &x)| p * x.ln())
            .sum();
        Ok(Allocation {
            rates,
            duals,
            utility,
        })
    }

    /// Damped Newton maximization of
    /// `F(u) = Σ P_i u_i + μ Σ_j log(C_j − Σ_i R_ji e^{u_i})`.
    ///
    /// With `x_i = e^{u_i}` and `w_j = μ / s_j`:
    ///
    /// * gradient `g_i = P_i − Σ_j w_j R_ji x_i`;
    /// * Hessian `H_ik = −[δ_ik Σ_j w_j R_ji x_i
    ///   + Σ_j (w_j / s_j)(R_ji x_i)(R_jk x_k)]` (negative definite).
    fn maximize_barrier(
        &self,
        rows: &[ConstraintRow],
        priorities: &[f64],
        mu: f64,
        u: &mut [f64],
        slacks: &mut [f64],
    ) {
        let n = u.len();
        let mut x: Vec<f64> = u.iter().map(|&ui| ui.exp()).collect();
        compute_slacks(rows, &x, slacks);
        let mut value = barrier_value(rows, priorities, mu, u, slacks);
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n * n]; // stores −H (positive definite)
        let mut trial = vec![0.0; n];
        let mut trial_x = vec![0.0; n];
        let mut trial_slacks = vec![0.0; rows.len()];
        for _ in 0..self.inner_iters {
            for (g, &p) in grad.iter_mut().zip(priorities) {
                *g = p;
            }
            hess.iter_mut().for_each(|h| *h = 0.0);
            for (row, &s) in rows.iter().zip(slacks.iter()) {
                let s = s.max(1e-300);
                let w = mu / s;
                for i in 0..n {
                    let ri = row.coeffs[i] * x[i];
                    if ri == 0.0 {
                        continue;
                    }
                    grad[i] -= w * ri;
                    hess[i * n + i] += w * ri;
                    for k in 0..n {
                        let rk = row.coeffs[k] * x[k];
                        if rk != 0.0 {
                            hess[i * n + k] += (w / s) * ri * rk;
                        }
                    }
                }
            }
            let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            let pscale = priorities.iter().cloned().fold(f64::MIN, f64::max);
            if gnorm < 1e-11 * pscale {
                break;
            }
            // Newton direction d solves (−H) d = g.
            let dir = match cholesky_solve(&hess, &grad, n) {
                Some(d) => d,
                None => grad.clone(), // fall back to plain ascent
            };
            // Backtracking line search with feasibility guard.
            let mut t = 1.0;
            let mut improved = false;
            for _ in 0..60 {
                for i in 0..n {
                    trial[i] = u[i] + t * dir[i];
                    trial_x[i] = trial[i].exp();
                }
                compute_slacks(rows, &trial_x, &mut trial_slacks);
                if trial_slacks.iter().all(|&s| s > 0.0) {
                    let v = barrier_value(rows, priorities, mu, &trial, &trial_slacks);
                    if v > value {
                        u.copy_from_slice(&trial);
                        x.copy_from_slice(&trial_x);
                        slacks.copy_from_slice(&trial_slacks);
                        value = v;
                        improved = true;
                        break;
                    }
                }
                t *= 0.5;
            }
            if !improved {
                break;
            }
        }
    }
}

/// Solves `A d = b` for symmetric positive-definite `A` (row-major,
/// `n × n`) by Cholesky factorization. Returns `None` if `A` is not
/// numerically positive definite.
fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    // Factor A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ d = y.
    let mut d = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * d[k];
        }
        d[i] = sum / l[i * n + i];
    }
    Some(d)
}

fn compute_slacks(rows: &[ConstraintRow], x: &[f64], slacks: &mut [f64]) {
    for (row, s) in rows.iter().zip(slacks.iter_mut()) {
        let used: f64 = row.coeffs.iter().zip(x).map(|(&c, &xi)| c * xi).sum();
        *s = row.capacity - used;
    }
}

fn barrier_value(
    rows: &[ConstraintRow],
    priorities: &[f64],
    mu: f64,
    u: &[f64],
    slacks: &[f64],
) -> f64 {
    let mut v: f64 = priorities.iter().zip(u).map(|(&p, &ui)| p * ui).sum();
    for (_, &s) in rows.iter().zip(slacks) {
        if s <= 0.0 {
            return f64::NEG_INFINITY;
        }
        v += mu * s.ln();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(rows: Vec<(f64, Vec<f64>)>, prios: &[f64]) -> Allocation {
        let mut sys = ConstraintSystem::new(prios.len());
        for (capacity, coeffs) in rows {
            sys.push_row(ConstraintRow {
                element: None,
                capacity,
                coeffs,
            });
        }
        ProportionalFairSolver::new().solve(&sys, prios).unwrap()
    }

    #[test]
    fn single_app_fills_its_bottleneck() {
        let a = solve(vec![(10.0, vec![2.0]), (6.0, vec![1.0])], &[1.0]);
        // min(10/2, 6/1) = 5.
        assert!((a.rates[0] - 5.0).abs() < 1e-5, "rate = {}", a.rates[0]);
    }

    #[test]
    fn equal_priorities_split_evenly() {
        let a = solve(vec![(1.0, vec![1.0, 1.0])], &[1.0, 1.0]);
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn priorities_give_proportional_shares() {
        let a = solve(vec![(3.0, vec![1.0, 1.0, 1.0])], &[1.0, 2.0, 3.0]);
        assert!((a.rates[0] - 0.5).abs() < 1e-5);
        assert!((a.rates[1] - 1.0).abs() < 1e-5);
        assert!((a.rates[2] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn independent_constraints_decouple() {
        let a = solve(
            vec![(4.0, vec![1.0, 0.0]), (10.0, vec![0.0, 5.0])],
            &[1.0, 7.0],
        );
        assert!((a.rates[0] - 4.0).abs() < 1e-5);
        assert!((a.rates[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Flow 0 crosses both links; flows 1 and 2 cross one each
        // (capacity 1). Proportional fairness gives x0 = 1/3, x1 = x2 =
        // 2/3 for equal priorities.
        let a = solve(
            vec![(1.0, vec![1.0, 1.0, 0.0]), (1.0, vec![1.0, 0.0, 1.0])],
            &[1.0, 1.0, 1.0],
        );
        assert!((a.rates[0] - 1.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
        assert!((a.rates[1] - 2.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
        assert!((a.rates[2] - 2.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
    }

    #[test]
    fn kkt_residual_is_small() {
        let mut sys = ConstraintSystem::new(3);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 2.0,
            coeffs: vec![1.0, 2.0, 0.5],
        });
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 5.0,
            coeffs: vec![0.0, 1.0, 4.0],
        });
        let prios = [1.0, 2.0, 0.5];
        let a = ProportionalFairSolver::new().solve(&sys, &prios).unwrap();
        assert!(a.feasibility_violation(&sys) <= 1e-9, "feasible");
        assert!(
            a.kkt_residual(&sys, &prios) < 1e-3,
            "kkt = {}",
            a.kkt_residual(&sys, &prios)
        );
    }

    #[test]
    fn unconstrained_app_is_rejected() {
        let mut sys = ConstraintSystem::new(2);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![1.0, 0.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[1.0, 1.0]);
        assert_eq!(err, Err(AllocError::Unbounded { app: 1 }));
    }

    #[test]
    fn zero_capacity_with_load_is_infeasible() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 0.0,
            coeffs: vec![1.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[1.0]);
        assert_eq!(err, Err(AllocError::Infeasible { app: 0 }));
    }

    #[test]
    fn bad_priority_is_rejected() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![1.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[-1.0]);
        assert_eq!(err, Err(AllocError::BadPriority(-1.0)));
    }

    #[test]
    fn warm_start_reaches_the_same_optimum() {
        let mut sys = ConstraintSystem::new(3);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 2.0,
            coeffs: vec![1.0, 2.0, 0.5],
        });
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 5.0,
            coeffs: vec![0.5, 1.0, 4.0],
        });
        let prios = [1.0, 2.0, 0.5];
        let solver = ProportionalFairSolver::new();
        let cold = solver.solve(&sys, &prios).unwrap();
        // Warm start from the optimum itself.
        let warm = solver.solve_warm(&sys, &prios, &cold.rates).unwrap();
        for (a, b) in cold.rates.iter().zip(&warm.rates) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Warm start from garbage (infeasible and non-positive entries).
        let garbage = [1e9, -3.0, f64::NAN];
        let fixed = solver.solve_warm(&sys, &prios, &garbage).unwrap();
        for (a, b) in cold.rates.iter().zip(&fixed.rates) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn utility_matches_rates() {
        let a = solve(vec![(1.0, vec![1.0, 1.0])], &[1.0, 1.0]);
        let expect = a.rates[0].ln() + a.rates[1].ln();
        assert!((a.utility - expect).abs() < 1e-12);
    }

    #[test]
    fn from_loads_builds_one_row_per_kind_and_link() {
        use sparcle_model::{LinkId, LoadMap, NetworkBuilder, ResourceVec};
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu_memory(100.0, 50.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(80.0));
        nb.add_link("xy", x, y, 40.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();

        let mut load_a = LoadMap::zeroed(&net);
        load_a.add_ct_load(x, &ResourceVec::cpu_memory(10.0, 5.0));
        load_a.add_tt_load(LinkId::new(0), 8.0);
        let mut load_b = LoadMap::zeroed(&net);
        load_b.add_ct_load(y, &ResourceVec::cpu(4.0));

        let sys = ConstraintSystem::from_loads(&net, &caps, &[&load_a, &load_b]);
        // Rows: x/cpu, x/memory, y/cpu, link — 4 binding rows.
        assert_eq!(sys.rows().len(), 4);
        let cpu_row = sys
            .rows()
            .iter()
            .find(|r| r.element == Some((sparcle_model::NetworkElement::Ncp(x), ResourceKind::Cpu)))
            .expect("x cpu row");
        assert_eq!(cpu_row.capacity, 100.0);
        assert_eq!(cpu_row.coeffs, vec![10.0, 0.0]);
        let mem_row = sys
            .rows()
            .iter()
            .find(|r| {
                r.element == Some((sparcle_model::NetworkElement::Ncp(x), ResourceKind::Memory))
            })
            .expect("x memory row");
        assert_eq!(mem_row.capacity, 50.0);
        assert_eq!(mem_row.coeffs, vec![5.0, 0.0]);
        let link_row = sys
            .rows()
            .iter()
            .find(|r| {
                r.element
                    == Some((
                        sparcle_model::NetworkElement::Link(LinkId::new(0)),
                        ResourceKind::Bandwidth,
                    ))
            })
            .expect("link row");
        assert_eq!(link_row.coeffs, vec![8.0, 0.0]);

        // Solving the system matches the hand-derived optimum: app A is
        // bound by the link (40/8 = 5), app B by y's cpu (80/4 = 20).
        let alloc = ProportionalFairSolver::new()
            .solve(&sys, &[1.0, 1.0])
            .unwrap();
        assert!((alloc.rates[0] - 5.0).abs() < 1e-4, "{:?}", alloc.rates);
        assert!((alloc.rates[1] - 20.0).abs() < 1e-3, "{:?}", alloc.rates);
    }

    #[test]
    fn all_zero_coeff_rows_are_dropped() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![0.0],
        });
        assert!(sys.rows().is_empty());
    }
}
