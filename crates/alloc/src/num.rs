//! Weighted proportional-fair rate allocation — the paper's problem (4).
//!
//! Given the placements of all present Best-Effort applications, SPARCLE
//! solves
//!
//! ```text
//! maximize   Σ_i P_i log(x_i)
//! subject to R X ≤ C,   X ≥ 0
//! ```
//!
//! where column `i` of `R` is application `i`'s per-data-unit load on
//! every (element, resource-kind) pair and `C` stacks the corresponding
//! capacities. The objective is strictly concave and the feasible set is
//! a polytope, so the optimum is unique.
//!
//! [`ProportionalFairSolver`] solves the problem with a log-barrier
//! path-following method in the variables `u_i = log x_i` (a geometric
//! program: the objective is linear in `u` and each constraint
//! `Σ_i R_ji e^{u_i} ≤ C_j` is convex), which is robust for the small,
//! dense systems that arise here (tens of applications, hundreds of
//! constraint rows). The KKT conditions of the original problem are
//! checked by [`Allocation::kkt_residual`].

use sparcle_model::{CapacityMap, LoadMap, Network, NetworkElement, ResourceKind};
use std::error::Error;
use std::fmt;

/// One capacity constraint row: `Σ_i coeffs[i] · x_i ≤ capacity`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintRow {
    /// Which network element and resource kind this row models (for
    /// diagnostics; not used by the solver).
    pub element: Option<(NetworkElement, ResourceKind)>,
    /// Available capacity `C_j` (must be positive; zero-capacity rows
    /// with any positive coefficient make the problem infeasible).
    pub capacity: f64,
    /// Per-application load coefficients `R_ji` (non-negative).
    pub coeffs: Vec<f64>,
}

/// The constraint system `R X ≤ C` for a set of applications.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSystem {
    rows: Vec<ConstraintRow>,
    app_count: usize,
}

impl ConstraintSystem {
    /// Creates an empty system for `app_count` applications.
    pub fn new(app_count: usize) -> Self {
        ConstraintSystem {
            rows: Vec::new(),
            app_count,
        }
    }

    /// Number of applications (columns).
    pub fn app_count(&self) -> usize {
        self.app_count
    }

    /// The accumulated rows.
    pub fn rows(&self) -> &[ConstraintRow] {
        &self.rows
    }

    /// Adds a raw constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` length differs from the app count or any value
    /// is negative/non-finite.
    pub fn push_row(&mut self, row: ConstraintRow) {
        assert_eq!(row.coeffs.len(), self.app_count, "coefficient arity");
        assert!(
            row.capacity.is_finite() && row.capacity >= 0.0,
            "capacity must be finite and non-negative"
        );
        assert!(
            row.coeffs.iter().all(|&c| c.is_finite() && c >= 0.0),
            "coefficients must be finite and non-negative"
        );
        // Rows with no load never bind.
        if row.coeffs.iter().any(|&c| c > 0.0) {
            self.rows.push(row);
        }
    }

    /// Builds the system from per-application [`LoadMap`]s over a network
    /// with the given available capacities: one row per (NCP, resource
    /// kind) with any load, one per link with any load.
    pub fn from_loads(
        network: &Network,
        capacities: &sparcle_model::CapacityMap,
        loads: &[&LoadMap],
    ) -> Self {
        let mut sys = ConstraintSystem::new(loads.len());
        for ncp in network.ncp_ids() {
            // Collect every resource kind any app loads on this NCP.
            let mut kinds: Vec<ResourceKind> = Vec::new();
            for load in loads {
                for kind in load.ncp(ncp).kinds() {
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
            }
            kinds.sort();
            for kind in kinds {
                let coeffs: Vec<f64> = loads.iter().map(|l| l.ncp(ncp).amount(kind)).collect();
                sys.push_row(ConstraintRow {
                    element: Some((NetworkElement::Ncp(ncp), kind)),
                    capacity: capacities.ncp(ncp).amount(kind),
                    coeffs,
                });
            }
        }
        for link in network.link_ids() {
            let coeffs: Vec<f64> = loads.iter().map(|l| l.link(link)).collect();
            sys.push_row(ConstraintRow {
                element: Some((NetworkElement::Link(link), ResourceKind::Bandwidth)),
                capacity: capacities.link(link),
                coeffs,
            });
        }
        sys
    }
}

/// A [`ConstraintSystem`] maintained incrementally as applications come
/// and go, without rebuilding the matrix from scratch per solve.
///
/// Rows are kept sorted by `(element, kind)` — exactly the emission
/// order of [`ConstraintSystem::from_loads`] (NCP rows ascending by id,
/// kinds sorted within each NCP, then link rows ascending) — and a row
/// is present iff at least one application has a strictly positive
/// coefficient on it (matching `from_loads`, whose all-zero rows are
/// dropped by [`ConstraintSystem::push_row`]). The wrapped system is
/// therefore **structurally identical** to a scratch `from_loads` over
/// the same load list: same rows in the same order, and each
/// coefficient is read through the same [`LoadMap`] accessor
/// `from_loads` uses, so no arithmetic drift is possible.
///
/// Row capacities are *not* tracked incrementally; call
/// [`Self::refresh_capacities`] with the live residual before each
/// solve.
#[derive(Debug, Clone, Default)]
pub struct IncrementalConstraints {
    system: ConstraintSystem,
    /// Per-row count of strictly positive coefficients; the row is
    /// dropped when this reaches zero.
    nonzero: Vec<usize>,
}

impl IncrementalConstraints {
    /// An empty system with no applications.
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped constraint system (rows sorted by `(element, kind)`).
    pub fn system(&self) -> &ConstraintSystem {
        &self.system
    }

    /// Number of application columns.
    pub fn app_count(&self) -> usize {
        self.system.app_count
    }

    fn row_key(row: &ConstraintRow) -> (NetworkElement, ResourceKind) {
        row.element
            .expect("incremental rows always carry their element key")
    }

    fn coeff(load: &LoadMap, element: NetworkElement, kind: ResourceKind) -> f64 {
        match element {
            NetworkElement::Ncp(id) => load.ncp(id).amount(kind),
            NetworkElement::Link(id) => load.link(id),
        }
    }

    /// Appends a new application column at the end.
    pub fn push_app(&mut self, load: &LoadMap) {
        self.insert_app(self.system.app_count, load);
    }

    /// Inserts an application column at `col`, shifting later columns
    /// right — the inverse of [`Self::remove_app`] at the same position.
    ///
    /// # Panics
    ///
    /// Panics if `col > app_count()`.
    pub fn insert_app(&mut self, col: usize, load: &LoadMap) {
        assert!(col <= self.system.app_count, "column index in range");
        self.system.app_count += 1;
        for (row, nz) in self.system.rows.iter_mut().zip(&mut self.nonzero) {
            let (element, kind) = row
                .element
                .expect("incremental rows always carry their element key");
            let c = Self::coeff(load, element, kind);
            row.coeffs.insert(col, c);
            if c > 0.0 {
                *nz += 1;
            }
        }
        // Create the rows this load binds that no resident app binds yet,
        // at their sorted position.
        for (element, kind, amount) in load.positive_entries() {
            let key = (element, kind);
            if let Err(pos) = self
                .system
                .rows
                .binary_search_by(|r| Self::row_key(r).cmp(&key))
            {
                let mut coeffs = vec![0.0; self.system.app_count];
                coeffs[col] = amount;
                self.system.rows.insert(
                    pos,
                    ConstraintRow {
                        element: Some(key),
                        // Placeholder; refresh_capacities runs before
                        // every solve.
                        capacity: 0.0,
                        coeffs,
                    },
                );
                self.nonzero.insert(pos, 1);
            }
        }
    }

    /// Removes the application column at `col`, shifting later columns
    /// left and dropping rows no surviving application binds.
    ///
    /// # Panics
    ///
    /// Panics if `col >= app_count()`.
    pub fn remove_app(&mut self, col: usize) {
        assert!(col < self.system.app_count, "column index in range");
        self.system.app_count -= 1;
        let mut i = 0;
        while i < self.system.rows.len() {
            let c = self.system.rows[i].coeffs.remove(col);
            if c > 0.0 {
                self.nonzero[i] -= 1;
            }
            if self.nonzero[i] == 0 {
                self.system.rows.remove(i);
                self.nonzero.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Copies the current capacity of every row's element out of `caps`,
    /// through the same accessors [`ConstraintSystem::from_loads`] uses.
    /// Call once before each solve so the rows see the live GR residual.
    pub fn refresh_capacities(&mut self, caps: &CapacityMap) {
        for row in &mut self.system.rows {
            let (element, kind) = row
                .element
                .expect("incremental rows always carry their element key");
            row.capacity = match element {
                NetworkElement::Ncp(id) => caps.ncp(id).amount(kind),
                NetworkElement::Link(id) => caps.link(id),
            };
        }
    }
}

/// Why the allocator failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AllocError {
    /// An application has a positive load on a zero-capacity row — no
    /// positive rate is feasible.
    Infeasible {
        /// The application (column) that cannot receive any rate.
        app: usize,
    },
    /// An application has no binding constraint at all, so its
    /// proportional-fair rate is unbounded.
    Unbounded {
        /// The unconstrained application.
        app: usize,
    },
    /// A priority was non-positive or non-finite.
    BadPriority(f64),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Infeasible { app } => {
                write!(f, "application {app} loads a zero-capacity element")
            }
            AllocError::Unbounded { app } => {
                write!(
                    f,
                    "application {app} is unconstrained; its fair rate is unbounded"
                )
            }
            AllocError::BadPriority(p) => {
                write!(f, "priority must be positive and finite, got {p}")
            }
        }
    }
}

impl Error for AllocError {}

/// The result of solving problem (4).
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Optimal processing rate `x_i` per application.
    pub rates: Vec<f64>,
    /// Dual price `λ_j` per constraint row.
    pub duals: Vec<f64>,
    /// Achieved objective `Σ P_i log x_i`.
    pub utility: f64,
}

impl Allocation {
    /// Maximum KKT stationarity residual `|P_i / x_i − Σ_j λ_j R_ji|`
    /// relative to `P_i / x_i`, over all applications. Near-zero means
    /// the allocation is (numerically) optimal.
    pub fn kkt_residual(&self, system: &ConstraintSystem, priorities: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, (&rate, &priority)) in self.rates.iter().zip(priorities).enumerate() {
            let grad = priority / rate;
            let price: f64 = system
                .rows()
                .iter()
                .zip(&self.duals)
                .map(|(row, &lambda)| lambda * row.coeffs[i])
                .sum();
            worst = worst.max((grad - price).abs() / grad.max(1e-300));
        }
        worst
    }

    /// Maximum relative constraint violation `max_j (R X − C)_j / C_j`
    /// (zero when strictly feasible).
    pub fn feasibility_violation(&self, system: &ConstraintSystem) -> f64 {
        let mut worst: f64 = 0.0;
        for row in system.rows() {
            let used: f64 = row
                .coeffs
                .iter()
                .zip(&self.rates)
                .map(|(&c, &x)| c * x)
                .sum();
            if row.capacity > 0.0 {
                worst = worst.max((used - row.capacity) / row.capacity);
            } else if used > 0.0 {
                worst = f64::INFINITY;
            }
        }
        worst
    }
}

/// Iteration accounting for one [`ProportionalFairSolver`] run.
///
/// Exposed so callers can report warm-start savings (a warm run executes
/// only the tail of the cold barrier schedule, so `outer_iters` and
/// `inner_iters` drop well below their cold counterparts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Outer (barrier-shrink) rounds executed.
    pub outer_iters: usize,
    /// Total damped-Newton steps taken across all rounds.
    pub inner_iters: usize,
    /// Whether the run reused a previous allocation as its start.
    pub warm_started: bool,
}

/// Log-barrier path-following solver for the weighted proportional-fair
/// allocation problem (4).
///
/// # Examples
///
/// Two applications sharing one unit-capacity link, one with twice the
/// priority of the other, split the capacity 2:1 (Theorem 3's
/// proportionality):
///
/// ```
/// use sparcle_alloc::num::{ConstraintRow, ConstraintSystem, ProportionalFairSolver};
///
/// # fn main() -> Result<(), sparcle_alloc::num::AllocError> {
/// let mut sys = ConstraintSystem::new(2);
/// sys.push_row(ConstraintRow { element: None, capacity: 1.0, coeffs: vec![1.0, 1.0] });
/// let alloc = ProportionalFairSolver::new().solve(&sys, &[2.0, 1.0])?;
/// assert!((alloc.rates[0] - 2.0 / 3.0).abs() < 1e-6);
/// assert!((alloc.rates[1] - 1.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProportionalFairSolver {
    /// Initial barrier weight.
    mu0: f64,
    /// Barrier reduction factor per outer iteration.
    mu_shrink: f64,
    /// Outer iterations (final μ = mu0 · mu_shrink^outer).
    outer_iters: usize,
    /// Gradient-ascent steps per outer iteration.
    inner_iters: usize,
    /// Outer iterations used when warm-started: the run executes only
    /// the **tail** of the cold μ schedule (the early high-μ rounds
    /// exist to walk a bad start onto the central path, which a warm
    /// start is already near), landing on the same final μ as a cold
    /// solve so duals and accuracy match.
    warm_outer_iters: usize,
}

impl Default for ProportionalFairSolver {
    fn default() -> Self {
        ProportionalFairSolver {
            mu0: 1.0,
            mu_shrink: 0.15,
            outer_iters: 11,
            inner_iters: 60,
            warm_outer_iters: 3,
        }
    }
}

impl ProportionalFairSolver {
    /// Creates a solver with default accuracy (KKT residual ≲ 1e-6 on
    /// well-scaled problems).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with custom iteration budget; larger budgets give
    /// tighter KKT residuals.
    pub fn with_iterations(outer_iters: usize, inner_iters: usize) -> Self {
        ProportionalFairSolver {
            outer_iters,
            inner_iters,
            ..Self::default()
        }
    }

    /// Solves problem (4).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadPriority`] for non-positive priorities,
    /// [`AllocError::Unbounded`] when an application has no constraint,
    /// and [`AllocError::Infeasible`] when an application can never get a
    /// positive rate.
    pub fn solve(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
    ) -> Result<Allocation, AllocError> {
        Ok(self.solve_impl(system, priorities, None)?.0)
    }

    /// Like [`Self::solve`], additionally returning iteration counts.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_with_stats(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
    ) -> Result<(Allocation, SolveStats), AllocError> {
        self.solve_impl(system, priorities, None)
    }

    /// Like [`Self::solve`] but warm-started from a previous allocation
    /// (e.g. the last epoch's rates during capacity fluctuation). The
    /// start is scaled into the strictly feasible interior before the
    /// barrier iteration begins, so an infeasible or stale start is
    /// safe; the answer is the same optimum, typically reached in fewer
    /// inner iterations.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_warm(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
        start: &[f64],
    ) -> Result<Allocation, AllocError> {
        Ok(self.solve_warm_with_stats(system, priorities, start)?.0)
    }

    /// Like [`Self::solve_warm`], additionally returning iteration
    /// counts.
    ///
    /// A `start` with no usable entry (nothing positive and finite)
    /// carries no information; such runs degrade to a cold solve whose
    /// result is **bitwise identical** to [`Self::solve`] and report
    /// `warm_started: false`. A start that is usable but wildly
    /// infeasible (worst row overloaded more than 10×) also reports
    /// `warm_started: false` and runs the full barrier schedule from
    /// the repaired start, since the fast tail-only schedule cannot
    /// recover from it.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_warm_with_stats(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
        start: &[f64],
    ) -> Result<(Allocation, SolveStats), AllocError> {
        assert_eq!(start.len(), system.app_count(), "one start rate per app");
        self.solve_impl(system, priorities, Some(start))
    }

    fn solve_impl(
        &self,
        system: &ConstraintSystem,
        priorities: &[f64],
        start: Option<&[f64]>,
    ) -> Result<(Allocation, SolveStats), AllocError> {
        let n = system.app_count();
        assert_eq!(priorities.len(), n, "one priority per application");
        for &p in priorities {
            if !p.is_finite() || p <= 0.0 {
                return Err(AllocError::BadPriority(p));
            }
        }
        let rows = system.rows();
        // Sanity: every app must be constrained by a positive-capacity
        // row, and never by a zero-capacity one.
        for i in 0..n {
            let mut constrained = false;
            for row in rows {
                if row.coeffs[i] > 0.0 {
                    if row.capacity <= 0.0 {
                        return Err(AllocError::Infeasible { app: i });
                    }
                    constrained = true;
                }
            }
            if !constrained {
                return Err(AllocError::Unbounded { app: i });
            }
        }

        // A warm start with no usable (positive, finite) entry carries
        // no information — demote it to a cold solve so the result is
        // bitwise identical to `solve` (readmission of a lone BE app
        // with a zeroed rate relies on this exactness).
        let start = start.filter(|warm| warm.iter().any(|&w| w.is_finite() && w > 0.0));

        // Strictly feasible start: x_i = (1/2n) · min over binding rows
        // of C_j / R_ji — or the caller's warm start pulled into the
        // interior.
        let cold: Vec<f64> = (0..n)
            .map(|i| {
                let cap = rows
                    .iter()
                    .filter(|r| r.coeffs[i] > 0.0)
                    .map(|r| r.capacity / r.coeffs[i])
                    .fold(f64::INFINITY, f64::min);
                (cap / (2.0 * n as f64)).max(1e-12)
            })
            .collect();
        let (x0, warm_started): (Vec<f64>, bool) = match start {
            None => (cold, false),
            Some(warm) => {
                // Replace non-positive entries, then shrink uniformly
                // until every row has at least 10 % slack.
                let mut x: Vec<f64> = warm
                    .iter()
                    .zip(&cold)
                    .map(|(&w, &c)| if w.is_finite() && w > 0.0 { w } else { c })
                    .collect();
                let mut worst = 0.0f64;
                for row in rows {
                    let used: f64 = row.coeffs.iter().zip(&x).map(|(&c, &xi)| c * xi).sum();
                    if row.capacity > 0.0 {
                        worst = worst.max(used / row.capacity);
                    }
                }
                if worst > 0.9 {
                    let shrink = 0.9 / worst;
                    for xi in &mut x {
                        *xi *= shrink;
                    }
                }
                // The fast tail-only schedule is safe only for a start
                // that is already near-feasible (the previous optimum
                // after a bounded capacity change, or one new app next
                // to incumbents). A wildly overloaded start needs the
                // early high-μ rounds to walk back to the central path,
                // so it runs the full schedule instead.
                (x, worst <= 10.0)
            }
        };
        let mut u: Vec<f64> = x0.iter().map(|&x| x.max(1e-300).ln()).collect();

        let pscale = priorities.iter().cloned().fold(f64::MIN, f64::max);
        // Warm runs execute only the tail of the cold μ schedule; μ is
        // advanced to the tail's start by the same repeated
        // multiplication a cold run performs, so the μ sequence (and the
        // final μ the duals are scaled by) matches bitwise.
        let outer = if warm_started {
            self.warm_outer_iters.min(self.outer_iters)
        } else {
            self.outer_iters
        };
        let mut mu = self.mu0 * pscale;
        for _ in 0..self.outer_iters - outer {
            mu *= self.mu_shrink;
        }
        let mut slacks = vec![0.0; rows.len()];
        let mut inner_total = 0usize;
        for _ in 0..outer {
            inner_total += self.maximize_barrier(rows, priorities, mu, &mut u, &mut slacks);
            mu *= self.mu_shrink;
        }
        mu /= self.mu_shrink; // μ of the last completed solve

        let rates: Vec<f64> = u.iter().map(|&ui| ui.exp()).collect();
        // Dual estimate from the barrier: λ_j = μ / slack_j.
        compute_slacks(rows, &rates, &mut slacks);
        let duals: Vec<f64> = slacks.iter().map(|&s| mu / s.max(1e-300)).collect();
        let utility = priorities
            .iter()
            .zip(&rates)
            .map(|(&p, &x)| p * x.ln())
            .sum();
        Ok((
            Allocation {
                rates,
                duals,
                utility,
            },
            SolveStats {
                outer_iters: outer,
                inner_iters: inner_total,
                warm_started,
            },
        ))
    }

    /// Damped Newton maximization of
    /// `F(u) = Σ P_i u_i + μ Σ_j log(C_j − Σ_i R_ji e^{u_i})`.
    ///
    /// With `x_i = e^{u_i}` and `w_j = μ / s_j`:
    ///
    /// * gradient `g_i = P_i − Σ_j w_j R_ji x_i`;
    /// * Hessian `H_ik = −[δ_ik Σ_j w_j R_ji x_i
    ///   + Σ_j (w_j / s_j)(R_ji x_i)(R_jk x_k)]` (negative definite).
    ///
    /// Returns the number of Newton steps attempted.
    fn maximize_barrier(
        &self,
        rows: &[ConstraintRow],
        priorities: &[f64],
        mu: f64,
        u: &mut [f64],
        slacks: &mut [f64],
    ) -> usize {
        let n = u.len();
        let mut x: Vec<f64> = u.iter().map(|&ui| ui.exp()).collect();
        compute_slacks(rows, &x, slacks);
        let mut value = barrier_value(rows, priorities, mu, u, slacks);
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n * n]; // stores −H (positive definite)
        let mut trial = vec![0.0; n];
        let mut trial_x = vec![0.0; n];
        let mut trial_slacks = vec![0.0; rows.len()];
        // Per-row sparse scratch: the (index, R_ji·x_i) pairs with a
        // nonzero product. Rebuilt each Newton step; index order matches
        // the dense loop, so every float is accumulated in the same
        // order and the result stays bitwise identical.
        let mut rx: Vec<(usize, f64)> = Vec::with_capacity(n);
        let pscale = priorities.iter().cloned().fold(f64::MIN, f64::max);
        let mut steps = 0usize;
        for _ in 0..self.inner_iters {
            for (g, &p) in grad.iter_mut().zip(priorities) {
                *g = p;
            }
            hess.iter_mut().for_each(|h| *h = 0.0);
            for (row, &s) in rows.iter().zip(slacks.iter()) {
                let s = s.max(1e-300);
                let w = mu / s;
                rx.clear();
                rx.extend(
                    row.coeffs
                        .iter()
                        .zip(&x)
                        .enumerate()
                        .filter_map(|(i, (&c, &xi))| {
                            let ri = c * xi;
                            (ri != 0.0).then_some((i, ri))
                        }),
                );
                for &(i, ri) in &rx {
                    grad[i] -= w * ri;
                    hess[i * n + i] += w * ri;
                    let hrow = &mut hess[i * n..(i + 1) * n];
                    for &(k, rk) in &rx {
                        hrow[k] += (w / s) * ri * rk;
                    }
                }
            }
            let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-11 * pscale {
                break;
            }
            steps += 1;
            // Newton direction d solves (−H) d = g.
            let dir = match cholesky_solve(&hess, &grad, n) {
                Some(d) => d,
                None => grad.clone(), // fall back to plain ascent
            };
            // Backtracking line search with feasibility guard.
            let mut t = 1.0;
            let mut improved = false;
            for _ in 0..60 {
                for i in 0..n {
                    trial[i] = u[i] + t * dir[i];
                    trial_x[i] = trial[i].exp();
                }
                compute_slacks(rows, &trial_x, &mut trial_slacks);
                if trial_slacks.iter().all(|&s| s > 0.0) {
                    let v = barrier_value(rows, priorities, mu, &trial, &trial_slacks);
                    if v > value {
                        u.copy_from_slice(&trial);
                        x.copy_from_slice(&trial_x);
                        slacks.copy_from_slice(&trial_slacks);
                        value = v;
                        improved = true;
                        break;
                    }
                }
                t *= 0.5;
            }
            if !improved {
                break;
            }
        }
        steps
    }
}

/// Solves `A d = b` for symmetric positive-definite `A` (row-major,
/// `n × n`) by Cholesky factorization. Returns `None` if `A` is not
/// numerically positive definite.
fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    // Factor A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ d = y.
    let mut d = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * d[k];
        }
        d[i] = sum / l[i * n + i];
    }
    Some(d)
}

fn compute_slacks(rows: &[ConstraintRow], x: &[f64], slacks: &mut [f64]) {
    for (row, s) in rows.iter().zip(slacks.iter_mut()) {
        let used: f64 = row.coeffs.iter().zip(x).map(|(&c, &xi)| c * xi).sum();
        *s = row.capacity - used;
    }
}

fn barrier_value(
    rows: &[ConstraintRow],
    priorities: &[f64],
    mu: f64,
    u: &[f64],
    slacks: &[f64],
) -> f64 {
    let mut v: f64 = priorities.iter().zip(u).map(|(&p, &ui)| p * ui).sum();
    for (_, &s) in rows.iter().zip(slacks) {
        if s <= 0.0 {
            return f64::NEG_INFINITY;
        }
        v += mu * s.ln();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(rows: Vec<(f64, Vec<f64>)>, prios: &[f64]) -> Allocation {
        let mut sys = ConstraintSystem::new(prios.len());
        for (capacity, coeffs) in rows {
            sys.push_row(ConstraintRow {
                element: None,
                capacity,
                coeffs,
            });
        }
        ProportionalFairSolver::new().solve(&sys, prios).unwrap()
    }

    #[test]
    fn single_app_fills_its_bottleneck() {
        let a = solve(vec![(10.0, vec![2.0]), (6.0, vec![1.0])], &[1.0]);
        // min(10/2, 6/1) = 5.
        assert!((a.rates[0] - 5.0).abs() < 1e-5, "rate = {}", a.rates[0]);
    }

    #[test]
    fn equal_priorities_split_evenly() {
        let a = solve(vec![(1.0, vec![1.0, 1.0])], &[1.0, 1.0]);
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn priorities_give_proportional_shares() {
        let a = solve(vec![(3.0, vec![1.0, 1.0, 1.0])], &[1.0, 2.0, 3.0]);
        assert!((a.rates[0] - 0.5).abs() < 1e-5);
        assert!((a.rates[1] - 1.0).abs() < 1e-5);
        assert!((a.rates[2] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn independent_constraints_decouple() {
        let a = solve(
            vec![(4.0, vec![1.0, 0.0]), (10.0, vec![0.0, 5.0])],
            &[1.0, 7.0],
        );
        assert!((a.rates[0] - 4.0).abs() < 1e-5);
        assert!((a.rates[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Flow 0 crosses both links; flows 1 and 2 cross one each
        // (capacity 1). Proportional fairness gives x0 = 1/3, x1 = x2 =
        // 2/3 for equal priorities.
        let a = solve(
            vec![(1.0, vec![1.0, 1.0, 0.0]), (1.0, vec![1.0, 0.0, 1.0])],
            &[1.0, 1.0, 1.0],
        );
        assert!((a.rates[0] - 1.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
        assert!((a.rates[1] - 2.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
        assert!((a.rates[2] - 2.0 / 3.0).abs() < 1e-4, "{:?}", a.rates);
    }

    #[test]
    fn kkt_residual_is_small() {
        let mut sys = ConstraintSystem::new(3);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 2.0,
            coeffs: vec![1.0, 2.0, 0.5],
        });
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 5.0,
            coeffs: vec![0.0, 1.0, 4.0],
        });
        let prios = [1.0, 2.0, 0.5];
        let a = ProportionalFairSolver::new().solve(&sys, &prios).unwrap();
        assert!(a.feasibility_violation(&sys) <= 1e-9, "feasible");
        assert!(
            a.kkt_residual(&sys, &prios) < 1e-3,
            "kkt = {}",
            a.kkt_residual(&sys, &prios)
        );
    }

    #[test]
    fn unconstrained_app_is_rejected() {
        let mut sys = ConstraintSystem::new(2);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![1.0, 0.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[1.0, 1.0]);
        assert_eq!(err, Err(AllocError::Unbounded { app: 1 }));
    }

    #[test]
    fn zero_capacity_with_load_is_infeasible() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 0.0,
            coeffs: vec![1.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[1.0]);
        assert_eq!(err, Err(AllocError::Infeasible { app: 0 }));
    }

    #[test]
    fn bad_priority_is_rejected() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![1.0],
        });
        let err = ProportionalFairSolver::new().solve(&sys, &[-1.0]);
        assert_eq!(err, Err(AllocError::BadPriority(-1.0)));
    }

    #[test]
    fn warm_start_reaches_the_same_optimum() {
        let mut sys = ConstraintSystem::new(3);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 2.0,
            coeffs: vec![1.0, 2.0, 0.5],
        });
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 5.0,
            coeffs: vec![0.5, 1.0, 4.0],
        });
        let prios = [1.0, 2.0, 0.5];
        let solver = ProportionalFairSolver::new();
        let cold = solver.solve(&sys, &prios).unwrap();
        // Warm start from the optimum itself.
        let warm = solver.solve_warm(&sys, &prios, &cold.rates).unwrap();
        for (a, b) in cold.rates.iter().zip(&warm.rates) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Warm start from garbage (infeasible and non-positive entries).
        let garbage = [1e9, -3.0, f64::NAN];
        let fixed = solver.solve_warm(&sys, &prios, &garbage).unwrap();
        for (a, b) in cold.rates.iter().zip(&fixed.rates) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn utility_matches_rates() {
        let a = solve(vec![(1.0, vec![1.0, 1.0])], &[1.0, 1.0]);
        let expect = a.rates[0].ln() + a.rates[1].ln();
        assert!((a.utility - expect).abs() < 1e-12);
    }

    #[test]
    fn from_loads_builds_one_row_per_kind_and_link() {
        use sparcle_model::{LinkId, LoadMap, NetworkBuilder, ResourceVec};
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu_memory(100.0, 50.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(80.0));
        nb.add_link("xy", x, y, 40.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();

        let mut load_a = LoadMap::zeroed(&net);
        load_a.add_ct_load(x, &ResourceVec::cpu_memory(10.0, 5.0));
        load_a.add_tt_load(LinkId::new(0), 8.0);
        let mut load_b = LoadMap::zeroed(&net);
        load_b.add_ct_load(y, &ResourceVec::cpu(4.0));

        let sys = ConstraintSystem::from_loads(&net, &caps, &[&load_a, &load_b]);
        // Rows: x/cpu, x/memory, y/cpu, link — 4 binding rows.
        assert_eq!(sys.rows().len(), 4);
        let cpu_row = sys
            .rows()
            .iter()
            .find(|r| r.element == Some((sparcle_model::NetworkElement::Ncp(x), ResourceKind::Cpu)))
            .expect("x cpu row");
        assert_eq!(cpu_row.capacity, 100.0);
        assert_eq!(cpu_row.coeffs, vec![10.0, 0.0]);
        let mem_row = sys
            .rows()
            .iter()
            .find(|r| {
                r.element == Some((sparcle_model::NetworkElement::Ncp(x), ResourceKind::Memory))
            })
            .expect("x memory row");
        assert_eq!(mem_row.capacity, 50.0);
        assert_eq!(mem_row.coeffs, vec![5.0, 0.0]);
        let link_row = sys
            .rows()
            .iter()
            .find(|r| {
                r.element
                    == Some((
                        sparcle_model::NetworkElement::Link(LinkId::new(0)),
                        ResourceKind::Bandwidth,
                    ))
            })
            .expect("link row");
        assert_eq!(link_row.coeffs, vec![8.0, 0.0]);

        // Solving the system matches the hand-derived optimum: app A is
        // bound by the link (40/8 = 5), app B by y's cpu (80/4 = 20).
        let alloc = ProportionalFairSolver::new()
            .solve(&sys, &[1.0, 1.0])
            .unwrap();
        assert!((alloc.rates[0] - 5.0).abs() < 1e-4, "{:?}", alloc.rates);
        assert!((alloc.rates[1] - 20.0).abs() < 1e-3, "{:?}", alloc.rates);
    }

    #[test]
    fn warm_start_stats_show_iteration_savings() {
        let mut sys = ConstraintSystem::new(3);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 2.0,
            coeffs: vec![1.0, 2.0, 0.5],
        });
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 5.0,
            coeffs: vec![0.5, 1.0, 4.0],
        });
        let prios = [1.0, 2.0, 0.5];
        let solver = ProportionalFairSolver::new();
        let (cold, cold_stats) = solver.solve_with_stats(&sys, &prios).unwrap();
        assert!(!cold_stats.warm_started);
        assert_eq!(cold_stats.outer_iters, 11);
        let (warm, warm_stats) = solver
            .solve_warm_with_stats(&sys, &prios, &cold.rates)
            .unwrap();
        assert!(warm_stats.warm_started);
        assert_eq!(warm_stats.outer_iters, 3);
        assert!(
            warm_stats.inner_iters < cold_stats.inner_iters,
            "warm {} vs cold {}",
            warm_stats.inner_iters,
            cold_stats.inner_iters
        );
        for (a, b) in cold.rates.iter().zip(&warm.rates) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn useless_warm_start_is_bitwise_identical_to_cold() {
        // No positive finite entry ⇒ the warm path must degrade to the
        // exact cold solve (the system layer relies on this when a BE
        // app is readmitted with a zeroed rate as the only resident).
        let mut sys = ConstraintSystem::new(2);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 3.0,
            coeffs: vec![1.0, 2.0],
        });
        let prios = [1.0, 4.0];
        let solver = ProportionalFairSolver::new();
        let cold = solver.solve(&sys, &prios).unwrap();
        for start in [[0.0, 0.0], [0.0, -1.0], [f64::NAN, f64::INFINITY]] {
            let (warm, stats) = solver.solve_warm_with_stats(&sys, &prios, &start).unwrap();
            assert!(!stats.warm_started);
            assert_eq!(cold.rates, warm.rates);
            assert_eq!(cold.duals, warm.duals);
            assert_eq!(cold.utility, warm.utility);
        }
    }

    #[test]
    fn incremental_constraints_match_from_loads_through_churn() {
        use sparcle_model::{LinkId, LoadMap, NetworkBuilder, ResourceVec};
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu_memory(100.0, 50.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(80.0));
        let z = nb.add_ncp("z", ResourceVec::cpu(60.0));
        nb.add_link("xy", x, y, 40.0).unwrap();
        nb.add_link("yz", y, z, 30.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();

        let mut load_a = LoadMap::zeroed(&net);
        load_a.add_ct_load(x, &ResourceVec::cpu_memory(10.0, 5.0));
        load_a.add_tt_load(LinkId::new(0), 8.0);
        let mut load_b = LoadMap::zeroed(&net);
        load_b.add_ct_load(y, &ResourceVec::cpu(4.0));
        load_b.add_tt_load(LinkId::new(1), 2.0);
        let mut load_c = LoadMap::zeroed(&net);
        load_c.add_ct_load(x, &ResourceVec::cpu(1.0));
        load_c.add_ct_load(z, &ResourceVec::cpu(6.0));

        let check = |inc: &IncrementalConstraints, resident: &[&LoadMap]| {
            let mut inc = inc.clone();
            inc.refresh_capacities(&caps);
            let scratch = ConstraintSystem::from_loads(&net, &caps, resident);
            assert_eq!(inc.system().app_count(), scratch.app_count());
            assert_eq!(inc.system().rows(), scratch.rows());
        };

        let mut inc = IncrementalConstraints::new();
        check(&inc, &[]);
        inc.push_app(&load_a);
        check(&inc, &[&load_a]);
        inc.push_app(&load_b);
        check(&inc, &[&load_a, &load_b]);
        inc.push_app(&load_c);
        check(&inc, &[&load_a, &load_b, &load_c]);
        // Remove the middle column; later columns shift left.
        inc.remove_app(1);
        check(&inc, &[&load_a, &load_c]);
        // Re-insert at the original position.
        inc.insert_app(1, &load_b);
        check(&inc, &[&load_a, &load_b, &load_c]);
        // Drain completely; rows must vanish with their last binder.
        inc.remove_app(0);
        check(&inc, &[&load_b, &load_c]);
        inc.remove_app(1);
        check(&inc, &[&load_b]);
        inc.remove_app(0);
        check(&inc, &[]);
        assert!(inc.system().rows().is_empty());
    }

    #[test]
    fn all_zero_coeff_rows_are_dropped() {
        let mut sys = ConstraintSystem::new(1);
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 1.0,
            coeffs: vec![0.0],
        });
        assert!(sys.rows().is_empty());
    }
}
