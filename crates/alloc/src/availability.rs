//! Availability analysis of task assignment paths under element failures.
//!
//! Every network element `j` fails independently with probability
//! `Pf_j` (§III-B). A task assignment path works iff *all* elements it
//! uses are up, so a single path's availability is `Π_j (1 − Pf_j)`
//! (§IV-D). With multiple, possibly overlapping paths:
//!
//! * a **Best-Effort** application is *available* when at least one path
//!   works — `P(∪_k A_k)`, computed exactly by inclusion–exclusion over
//!   path subsets (overlaps make paths dependent, but any intersection
//!   `∩_{k∈S} A_k` is just "all elements of the union up");
//! * a **Guaranteed-Rate** application meets its QoE when the rates of
//!   the working paths sum to at least `R_J` — the paper's eq. (7) sums
//!   `P(exactly the paths in s work)` over every subset `s` whose rates
//!   subset-sum to ≥ `R_J`.
//!
//! [`PathAvailability`] provides both analyses exactly (for the path
//! counts SPARCLE actually uses — a handful) plus a seeded Monte-Carlo
//! estimator for cross-checking and for very large path sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_model::{Network, NetworkElement};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Maximum number of distinct elements across all paths for the exact
/// bitmask-based analysis.
pub const MAX_DISTINCT_ELEMENTS: usize = 128;

/// Maximum path count for the exact inclusion–exclusion (`2^n` subsets).
pub const MAX_EXACT_PATHS: usize = 20;

/// Errors from availability analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AvailabilityError {
    /// More than [`MAX_DISTINCT_ELEMENTS`] distinct elements are in play.
    TooManyElements(usize),
    /// More than [`MAX_EXACT_PATHS`] paths for an exact computation; use
    /// the Monte-Carlo estimators instead.
    TooManyPaths(usize),
    /// A failure probability outside `[0, 1]`.
    BadProbability(f64),
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailabilityError::TooManyElements(n) => write!(
                f,
                "exact analysis supports at most {MAX_DISTINCT_ELEMENTS} distinct elements, got {n}"
            ),
            AvailabilityError::TooManyPaths(n) => write!(
                f,
                "exact analysis supports at most {MAX_EXACT_PATHS} paths, got {n}; use monte carlo"
            ),
            AvailabilityError::BadProbability(p) => {
                write!(f, "failure probability must lie in [0, 1], got {p}")
            }
        }
    }
}

impl Error for AvailabilityError {}

/// Availability analyzer over a set of (possibly overlapping) task
/// assignment paths.
///
/// # Examples
///
/// Two disjoint paths with element survival 0.9 each (two elements per
/// path ⇒ per-path availability 0.81):
///
/// ```
/// # use sparcle_alloc::availability::PathAvailability;
/// # fn main() -> Result<(), sparcle_alloc::availability::AvailabilityError> {
/// let mut pa = PathAvailability::new();
/// pa.add_path_raw(vec![(0, 0.1), (1, 0.1)], 2.0)?;
/// pa.add_path_raw(vec![(2, 0.1), (3, 0.1)], 1.0)?;
/// let single = 0.9f64 * 0.9;
/// assert!((pa.single_path(0) - single).abs() < 1e-12);
/// let any = 1.0 - (1.0 - single) * (1.0 - single);
/// assert!((pa.any_working()? - any).abs() < 1e-12);
/// // Rate ≥ 2 requires path 0 up: P = 0.81.
/// assert!((pa.min_rate(2.0)? - single).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathAvailability {
    /// Survival probability (1 − Pf) per distinct element.
    survival: Vec<f64>,
    /// Key → dense index for deduplication.
    index: BTreeMap<u64, usize>,
    /// Element membership bitmask per path.
    masks: Vec<u128>,
    /// Rate of each path.
    rates: Vec<f64>,
}

/// Stable numeric key for a network element.
fn element_key(e: NetworkElement) -> u64 {
    match e {
        NetworkElement::Ncp(id) => u64::from(id.as_u32()),
        NetworkElement::Link(id) => (1u64 << 32) | u64::from(id.as_u32()),
    }
}

impl PathAvailability {
    /// Creates an analyzer with no paths.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of paths added so far.
    pub fn path_count(&self) -> usize {
        self.masks.len()
    }

    /// Rates of the added paths, in insertion order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Adds a path given the network it lives on: the elements it uses
    /// (e.g. from [`sparcle_model::Placement::elements_used`]) and the
    /// rate it carries.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::TooManyElements`] past the bitmask
    /// capacity.
    pub fn add_path(
        &mut self,
        network: &Network,
        elements: impl IntoIterator<Item = NetworkElement>,
        rate: f64,
    ) -> Result<(), AvailabilityError> {
        let raw: Vec<(u64, f64)> = elements
            .into_iter()
            .map(|e| (element_key(e), network.element_failure_probability(e)))
            .collect();
        self.add_path_raw(raw, rate)
    }

    /// Like [`Self::add_path`] but with *shared-risk groups* (an
    /// extension beyond the paper's independent-failure model):
    /// `risk_group` maps an element to an optional `(group id, group
    /// failure probability)` — e.g. NCPs on the same power feed, links
    /// through the same conduit. An element is up iff its own
    /// independent draw *and* its group's draw are both up; every
    /// element of a group shares one group draw, so their failures are
    /// positively correlated.
    ///
    /// Internally the group is one extra pseudo-element per path, so
    /// all the exact and Monte-Carlo machinery applies unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`Self::add_path`]; group keys count toward the distinct
    /// element limit.
    pub fn add_path_grouped(
        &mut self,
        network: &Network,
        elements: impl IntoIterator<Item = NetworkElement>,
        rate: f64,
        risk_group: impl Fn(NetworkElement) -> Option<(u32, f64)>,
    ) -> Result<(), AvailabilityError> {
        // Group keys live in a namespace disjoint from element keys.
        const GROUP_BIT: u64 = 1 << 62;
        let mut raw: Vec<(u64, f64)> = Vec::new();
        for e in elements {
            raw.push((element_key(e), network.element_failure_probability(e)));
            if let Some((group, pf)) = risk_group(e) {
                raw.push((GROUP_BIT | u64::from(group), pf));
            }
        }
        self.add_path_raw(raw, rate)
    }

    /// Adds a path as raw `(element key, failure probability)` pairs —
    /// useful in tests and when paths span synthetic elements.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::BadProbability`] for probabilities
    /// outside `[0, 1]` and [`AvailabilityError::TooManyElements`] past
    /// the bitmask capacity.
    pub fn add_path_raw(
        &mut self,
        elements: impl IntoIterator<Item = (u64, f64)>,
        rate: f64,
    ) -> Result<(), AvailabilityError> {
        let mut mask = 0u128;
        for (key, pf) in elements {
            if !pf.is_finite() || !(0.0..=1.0).contains(&pf) {
                return Err(AvailabilityError::BadProbability(pf));
            }
            let next = self.index.len();
            let idx = *self.index.entry(key).or_insert(next);
            if idx >= MAX_DISTINCT_ELEMENTS {
                return Err(AvailabilityError::TooManyElements(idx + 1));
            }
            if idx == self.survival.len() {
                self.survival.push(1.0 - pf);
            }
            mask |= 1u128 << idx;
        }
        self.masks.push(mask);
        self.rates.push(rate);
        Ok(())
    }

    /// Probability that every element of `mask` is up.
    fn up_probability(&self, mask: u128) -> f64 {
        let mut p = 1.0;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            p *= self.survival[i];
            m &= m - 1;
        }
        p
    }

    /// Availability of a single path: `Π (1 − Pf_j)` over its elements.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn single_path(&self, path: usize) -> f64 {
        self.up_probability(self.masks[path])
    }

    /// Exact probability that **at least one** path works (BE
    /// availability), by inclusion–exclusion over path subsets.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::TooManyPaths`] beyond
    /// [`MAX_EXACT_PATHS`].
    pub fn any_working(&self) -> Result<f64, AvailabilityError> {
        let n = self.masks.len();
        if n == 0 {
            return Ok(0.0);
        }
        if n > MAX_EXACT_PATHS {
            return Err(AvailabilityError::TooManyPaths(n));
        }
        let mut total = 0.0;
        for subset in 1u32..(1u32 << n) {
            let mut union = 0u128;
            let mut bits = subset;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                union |= self.masks[k];
                bits &= bits - 1;
            }
            let sign = if subset.count_ones() % 2 == 1 {
                1.0
            } else {
                -1.0
            };
            total += sign * self.up_probability(union);
        }
        Ok(total.clamp(0.0, 1.0))
    }

    /// Exact probability that **exactly** the paths in `working_mask`
    /// work and all other paths fail — the per-subset term of eq. (7).
    ///
    /// Computed as `P(U_S up) · Σ_{G ⊆ F} (−1)^{|G|} P(U_G \ U_S up)`,
    /// where `S` is the working set and `F` its complement.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::TooManyPaths`] beyond
    /// [`MAX_EXACT_PATHS`].
    pub fn exactly_working(&self, working_mask: u32) -> Result<f64, AvailabilityError> {
        let n = self.masks.len();
        if n > MAX_EXACT_PATHS {
            return Err(AvailabilityError::TooManyPaths(n));
        }
        let mut union_s = 0u128;
        for k in 0..n {
            if working_mask & (1 << k) != 0 {
                union_s |= self.masks[k];
            }
        }
        let p_s = self.up_probability(union_s);
        if p_s == 0.0 {
            return Ok(0.0);
        }
        // Enumerate subsets G of the failing set F.
        let failing: Vec<usize> = (0..n).filter(|&k| working_mask & (1 << k) == 0).collect();
        let m = failing.len();
        let mut sum = 0.0;
        for g in 0u32..(1u32 << m) {
            let mut union_g = 0u128;
            let mut bits = g;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                union_g |= self.masks[failing[j]];
                bits &= bits - 1;
            }
            let extra = union_g & !union_s;
            let sign = if g.count_ones() % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign * self.up_probability(extra);
        }
        Ok((p_s * sum).clamp(0.0, 1.0))
    }

    /// Exact min-rate availability — eq. (7): the probability that the
    /// rates of the working paths sum to at least `min_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::TooManyPaths`] beyond
    /// [`MAX_EXACT_PATHS`] (note the cost is `O(3^n)`; keep `n ≲ 14`).
    pub fn min_rate(&self, min_rate: f64) -> Result<f64, AvailabilityError> {
        let n = self.masks.len();
        if n > MAX_EXACT_PATHS {
            return Err(AvailabilityError::TooManyPaths(n));
        }
        let mut total = 0.0;
        for subset in 0u32..(1u32 << n) {
            let rate: f64 = (0..n)
                .filter(|&k| subset & (1 << k) != 0)
                .map(|k| self.rates[k])
                .sum();
            if rate + 1e-12 >= min_rate {
                total += self.exactly_working(subset)?;
            }
        }
        Ok(total.clamp(0.0, 1.0))
    }

    /// The subsets of paths whose rates sum to at least `min_rate` — the
    /// subset-sum step of §IV-D, exposed for inspection. Each entry is a
    /// bitmask over path indices.
    pub fn sufficient_subsets(&self, min_rate: f64) -> Vec<u32> {
        let n = self.masks.len().min(31);
        (0u32..(1u32 << n))
            .filter(|subset| {
                let rate: f64 = (0..n)
                    .filter(|&k| subset & (1 << k) != 0)
                    .map(|k| self.rates[k])
                    .sum();
                rate + 1e-12 >= min_rate
            })
            .collect()
    }

    /// Monte-Carlo estimate of [`Self::any_working`], sampling element
    /// failures independently. Deterministic for a fixed `seed`.
    pub fn monte_carlo_any(&self, samples: usize, seed: u64) -> f64 {
        // Not a `contains` check: a path works when its mask is a
        // *subset* of the up-set.
        #[allow(clippy::manual_contains)]
        self.monte_carlo(samples, seed, |up| self.masks.iter().any(|&m| m & up == m))
    }

    /// Monte-Carlo estimate of [`Self::min_rate`].
    pub fn monte_carlo_min_rate(&self, min_rate: f64, samples: usize, seed: u64) -> f64 {
        self.monte_carlo(samples, seed, |up| {
            let rate: f64 = self
                .masks
                .iter()
                .zip(&self.rates)
                .filter(|&(&m, _)| m & up == m)
                .map(|(_, &r)| r)
                .sum();
            rate + 1e-12 >= min_rate
        })
    }

    fn monte_carlo(&self, samples: usize, seed: u64, ok: impl Fn(u128) -> bool) -> f64 {
        if self.masks.is_empty() || samples == 0 {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        for _ in 0..samples {
            let mut up = 0u128;
            for (i, &s) in self.survival.iter().enumerate() {
                if rng.gen::<f64>() < s {
                    up |= 1u128 << i;
                }
            }
            if ok(up) {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_disjoint() -> PathAvailability {
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.1), (1, 0.2)], 3.0).unwrap();
        pa.add_path_raw(vec![(2, 0.3)], 1.0).unwrap();
        pa
    }

    #[test]
    fn single_path_product() {
        let pa = two_disjoint();
        assert!((pa.single_path(0) - 0.9 * 0.8).abs() < 1e-12);
        assert!((pa.single_path(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn any_working_disjoint_matches_closed_form() {
        let pa = two_disjoint();
        let expect = 1.0 - (1.0 - 0.72) * (1.0 - 0.7);
        assert!((pa.any_working().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn any_working_with_shared_element() {
        // Both paths share element 0 (pf 0.5); privately they are
        // perfect. P(any) = P(elem 0 up) = 0.5.
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.5), (1, 0.0)], 1.0).unwrap();
        pa.add_path_raw(vec![(0, 0.5), (2, 0.0)], 1.0).unwrap();
        assert!((pa.any_working().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exactly_working_partitions_unity() {
        let pa = two_disjoint();
        let mut total = 0.0;
        for mask in 0u32..4 {
            total += pa.exactly_working(mask).unwrap();
        }
        assert!((total - 1.0).abs() < 1e-12, "exact-set probs sum to 1");
    }

    #[test]
    fn exactly_working_disjoint_closed_form() {
        let pa = two_disjoint();
        let p0 = 0.72;
        let p1 = 0.7;
        assert!((pa.exactly_working(0b01).unwrap() - p0 * (1.0 - p1)).abs() < 1e-12);
        assert!((pa.exactly_working(0b10).unwrap() - (1.0 - p0) * p1).abs() < 1e-12);
        assert!((pa.exactly_working(0b11).unwrap() - p0 * p1).abs() < 1e-12);
        assert!((pa.exactly_working(0b00).unwrap() - (1.0 - p0) * (1.0 - p1)).abs() < 1e-12);
    }

    #[test]
    fn min_rate_picks_sufficient_subsets() {
        let pa = two_disjoint(); // rates 3 and 1
                                 // min_rate 2 ⇒ path 0 must work (alone or with path 1).
        let expect = 0.72;
        assert!((pa.min_rate(2.0).unwrap() - expect).abs() < 1e-12);
        // min_rate 4 ⇒ both must work.
        assert!((pa.min_rate(4.0).unwrap() - 0.72 * 0.7).abs() < 1e-12);
        // min_rate 0.5 ⇒ any path works.
        let any = pa.any_working().unwrap();
        assert!((pa.min_rate(0.5).unwrap() - any).abs() < 1e-12);
        // min_rate 0 ⇒ always satisfied.
        assert!((pa.min_rate(0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_rate_with_overlap() {
        // Paths share element 0; given 0 up, private elements decide.
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.2), (1, 0.1)], 2.0).unwrap();
        pa.add_path_raw(vec![(0, 0.2), (2, 0.3)], 2.0).unwrap();
        // Need rate ≥ 2: at least one path up.
        // P = P(0 up) * (1 - P(1 down)P(2 down)) = 0.8 * (1 - 0.1*0.3)
        let expect = 0.8 * (1.0 - 0.1 * 0.3);
        assert!((pa.min_rate(2.0).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn sufficient_subsets_enumerates_masks() {
        let pa = two_disjoint();
        let subsets = pa.sufficient_subsets(2.0);
        assert_eq!(subsets, vec![0b01, 0b11]);
        assert_eq!(pa.sufficient_subsets(0.0).len(), 4);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.1), (1, 0.2), (2, 0.05)], 2.0)
            .unwrap();
        pa.add_path_raw(vec![(1, 0.2), (3, 0.15)], 1.5).unwrap();
        pa.add_path_raw(vec![(4, 0.25)], 0.5).unwrap();
        let exact_any = pa.any_working().unwrap();
        let mc_any = pa.monte_carlo_any(200_000, 7);
        assert!(
            (exact_any - mc_any).abs() < 5e-3,
            "exact {exact_any} vs mc {mc_any}"
        );
        let exact_mr = pa.min_rate(2.0).unwrap();
        let mc_mr = pa.monte_carlo_min_rate(2.0, 200_000, 11);
        assert!(
            (exact_mr - mc_mr).abs() < 5e-3,
            "exact {exact_mr} vs mc {mc_mr}"
        );
    }

    #[test]
    fn empty_analyzer_reports_zero() {
        let pa = PathAvailability::new();
        assert_eq!(pa.any_working().unwrap(), 0.0);
        assert_eq!(pa.monte_carlo_any(100, 1), 0.0);
        assert_eq!(pa.path_count(), 0);
    }

    #[test]
    fn rejects_bad_probability() {
        let mut pa = PathAvailability::new();
        assert!(matches!(
            pa.add_path_raw(vec![(0, 1.5)], 1.0),
            Err(AvailabilityError::BadProbability(_))
        ));
    }

    #[test]
    fn zero_failure_probability_means_always_available() {
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.0), (1, 0.0)], 1.0).unwrap();
        assert_eq!(pa.any_working().unwrap(), 1.0);
        assert_eq!(pa.min_rate(1.0).unwrap(), 1.0);
    }

    #[test]
    fn paper_fig10b_style_three_paths() {
        // A GR app with min rate 2.7; path rates 2.67, 1.2, 0.42 (paper
        // §V-B-2). Only subsets containing path 0 plus at least one more
        // reach 2.7.
        let mut pa = PathAvailability::new();
        pa.add_path_raw(vec![(0, 0.05), (1, 0.05)], 2.67).unwrap();
        pa.add_path_raw(vec![(2, 0.05), (3, 0.05)], 1.2).unwrap();
        pa.add_path_raw(vec![(4, 0.05), (5, 0.05)], 0.42).unwrap();
        let subsets = pa.sufficient_subsets(2.7);
        assert_eq!(subsets, vec![0b011, 0b101, 0b111]);
        let p = 0.95f64 * 0.95; // per-path availability
        let expect = p * (1.0 - (1.0 - p) * (1.0 - p)); // path0 and (1 or 2)
        assert!((pa.min_rate(2.7).unwrap() - expect).abs() < 1e-12);
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use sparcle_model::{LinkDirection, NetworkBuilder, NetworkElement, ResourceVec};

    /// Two leaf paths whose links sit in the same conduit (risk group):
    /// the union availability collapses toward the group's survival.
    #[test]
    fn shared_risk_group_correlates_failures() {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(1.0));
        let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(1.0));
        let la = nb
            .add_link_full("la", hub, a, 1.0, LinkDirection::Undirected, 0.0)
            .unwrap();
        let lb = nb
            .add_link_full("lb", hub, b, 1.0, LinkDirection::Undirected, 0.0)
            .unwrap();
        let net = nb.build().unwrap();

        // Independent case: both links perfect ⇒ always available.
        let mut independent = PathAvailability::new();
        independent
            .add_path(&net, [NetworkElement::Link(la)], 1.0)
            .unwrap();
        independent
            .add_path(&net, [NetworkElement::Link(lb)], 1.0)
            .unwrap();
        assert!((independent.any_working().unwrap() - 1.0).abs() < 1e-12);

        // Same conduit with 10 % failure: both paths die together.
        let conduit = |e: NetworkElement| match e {
            NetworkElement::Link(_) => Some((1, 0.1)),
            NetworkElement::Ncp(_) => None,
        };
        let mut grouped = PathAvailability::new();
        grouped
            .add_path_grouped(&net, [NetworkElement::Link(la)], 1.0, conduit)
            .unwrap();
        grouped
            .add_path_grouped(&net, [NetworkElement::Link(lb)], 1.0, conduit)
            .unwrap();
        let any = grouped.any_working().unwrap();
        assert!(
            (any - 0.9).abs() < 1e-12,
            "union capped by the conduit: {any}"
        );
        // Both paths up requires the single group draw: min-rate 2.0
        // also equals 0.9 (perfectly correlated).
        assert!((grouped.min_rate(2.0).unwrap() - 0.9).abs() < 1e-12);
    }

    /// Group draw composes with per-element failures.
    #[test]
    fn group_and_element_failures_multiply() {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(1.0));
        let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
        let la = nb
            .add_link_full("la", hub, a, 1.0, LinkDirection::Undirected, 0.2)
            .unwrap();
        let net = nb.build().unwrap();
        let mut pa = PathAvailability::new();
        pa.add_path_grouped(&net, [NetworkElement::Link(la)], 1.0, |_| Some((7, 0.1)))
            .unwrap();
        // P(up) = (1 − 0.2)(1 − 0.1).
        assert!((pa.single_path(0) - 0.8 * 0.9).abs() < 1e-12);
    }

    /// Different groups stay independent.
    #[test]
    fn distinct_groups_are_independent() {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(1.0));
        let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(1.0));
        let la = nb
            .add_link_full("la", hub, a, 1.0, LinkDirection::Undirected, 0.0)
            .unwrap();
        let lb = nb
            .add_link_full("lb", hub, b, 1.0, LinkDirection::Undirected, 0.0)
            .unwrap();
        let net = nb.build().unwrap();
        let mut pa = PathAvailability::new();
        pa.add_path_grouped(&net, [NetworkElement::Link(la)], 1.0, |_| Some((1, 0.1)))
            .unwrap();
        pa.add_path_grouped(&net, [NetworkElement::Link(lb)], 1.0, |_| Some((2, 0.1)))
            .unwrap();
        let expect = 1.0 - 0.1 * 0.1;
        assert!((pa.any_working().unwrap() - expect).abs() < 1e-12);
    }
}
