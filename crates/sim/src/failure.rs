//! Epoch-based failure injection for availability experiments (Fig. 10).
//!
//! Time is divided into epochs. In each epoch every network element is
//! independently up with probability `1 − Pf_j` (the paper's §III-B
//! failure model). A task assignment path *works* in an epoch iff all
//! its elements are up; the application's effective rate that epoch is
//! the sum of the rates of its working paths.
//!
//! This is the simulation counterpart of the analytic
//! `sparcle_alloc::PathAvailability`: the measured frequencies must
//! converge to the closed-form probabilities, which the tests check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "telemetry")]
use sparcle_core::telemetry::Event;
use sparcle_core::TraceHandle;
use sparcle_model::{Network, NetworkElement};
use std::collections::BTreeSet;

/// Stable trace label of a network element (`"ncp:3"`, `"link:7"`).
#[cfg(feature = "telemetry")]
fn element_label(e: NetworkElement) -> String {
    match e {
        NetworkElement::Ncp(id) => format!("ncp:{}", id.index()),
        NetworkElement::Link(id) => format!("link:{}", id.index()),
    }
}

/// One path exposed to failure injection.
#[derive(Debug, Clone)]
pub struct FailurePath {
    /// The elements whose survival the path needs.
    pub elements: BTreeSet<NetworkElement>,
    /// The rate the path contributes while working.
    pub rate: f64,
}

/// One timestamped element state change: at the start of `epoch` the
/// element switched to `up`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementTransition {
    /// Epoch index at which the new state takes effect.
    pub epoch: u64,
    /// The element that changed state.
    pub element: NetworkElement,
    /// `true` when the element recovered, `false` when it failed.
    pub up: bool,
}

/// Seeded per-epoch element state sampler exposing up/down changes as an
/// *ordered, timestamped* transition stream.
///
/// This is the single failure code path: [`FailureSim::run_traced`]
/// (the Fig. 10 batch study) and the online runtime both drive their
/// failure timelines through it, so the per-epoch snapshots and the
/// event stream can never disagree.
///
/// Elements start up; epoch `e` transitions are ordered by element id.
///
/// # Examples
///
/// ```
/// use sparcle_sim::failure::ElementStateStream;
/// use sparcle_model::{LinkDirection, NetworkBuilder, NetworkElement, ResourceVec};
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut nb = NetworkBuilder::new();
/// let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
/// let b = nb.add_ncp("b", ResourceVec::cpu(1.0));
/// let l = nb.add_link_full("ab", a, b, 1.0, LinkDirection::Undirected, 0.5)?;
/// let net = nb.build()?;
/// let mut stream =
///     ElementStateStream::new(&net, [NetworkElement::Link(l)], 1_000, 7);
/// let mut flips = 0;
/// let mut transitions = Vec::new();
/// while stream.step_into(&mut transitions) {
///     flips += transitions.len();
/// }
/// assert!(flips > 0, "a 50%-flaky link flips eventually");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ElementStateStream {
    elements: Vec<NetworkElement>,
    survival: Vec<f64>,
    rng: StdRng,
    up: Vec<bool>,
    next_epoch: u64,
    epochs: u64,
}

impl ElementStateStream {
    /// Builds a stream over `elements` (deduplicated and sorted by id)
    /// sampling epochs `0..epochs` with the given seed. Every element
    /// starts up.
    pub fn new(
        network: &Network,
        elements: impl IntoIterator<Item = NetworkElement>,
        epochs: u64,
        seed: u64,
    ) -> Self {
        let elements: Vec<NetworkElement> = elements
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let survival = elements
            .iter()
            .map(|&e| 1.0 - network.element_failure_probability(e))
            .collect();
        let up = vec![true; elements.len()];
        ElementStateStream {
            elements,
            survival,
            rng: StdRng::seed_from_u64(seed),
            up,
            next_epoch: 0,
            epochs,
        }
    }

    /// The distinct elements the stream samples, in id order.
    pub fn elements(&self) -> &[NetworkElement] {
        &self.elements
    }

    /// Current up/down state per element (aligned with
    /// [`ElementStateStream::elements`]).
    pub fn up_states(&self) -> &[bool] {
        &self.up
    }

    /// The epoch the next [`ElementStateStream::step_into`] will sample.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Samples the next epoch. Replaces `transitions` with the state
    /// changes relative to the previous epoch, ordered by element id.
    /// Returns `false` (leaving `transitions` empty) once all epochs are
    /// exhausted.
    pub fn step_into(&mut self, transitions: &mut Vec<ElementTransition>) -> bool {
        transitions.clear();
        if self.next_epoch >= self.epochs {
            return false;
        }
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        for (i, (u, &s)) in self.up.iter_mut().zip(&self.survival).enumerate() {
            let now = self.rng.gen::<f64>() < s;
            if now != *u {
                *u = now;
                transitions.push(ElementTransition {
                    epoch,
                    element: self.elements[i],
                    up: now,
                });
            }
        }
        true
    }

    /// Runs the stream to completion and returns the full ordered
    /// transition list (by `(epoch, element)`).
    pub fn collect_transitions(mut self) -> Vec<ElementTransition> {
        let mut all = Vec::new();
        let mut step = Vec::new();
        while self.step_into(&mut step) {
            all.extend_from_slice(&step);
        }
        all
    }
}

impl Iterator for ElementStateStream {
    type Item = Vec<ElementTransition>;

    /// Per-epoch transition batches (possibly empty vectors) until the
    /// epoch budget runs out. Prefer [`ElementStateStream::step_into`]
    /// in hot loops — it reuses one allocation.
    fn next(&mut self) -> Option<Vec<ElementTransition>> {
        let mut transitions = Vec::new();
        if self.step_into(&mut transitions) {
            Some(transitions)
        } else {
            None
        }
    }
}

/// Aggregate results of a failure-injection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureStats {
    /// Fraction of epochs with at least one working path (BE
    /// availability).
    pub availability: f64,
    /// Fraction of epochs whose aggregate rate met the `min_rate`
    /// threshold (GR min-rate availability); `1.0` when no threshold was
    /// given.
    pub min_rate_availability: f64,
    /// Mean aggregate rate over all epochs.
    pub mean_rate: f64,
    /// Number of epochs simulated.
    pub epochs: u64,
}

/// Epoch-based failure injector.
///
/// # Examples
///
/// A single path over one 10 %-flaky link is up ~90 % of epochs:
///
/// ```
/// use sparcle_sim::{FailurePath, FailureSim};
/// use sparcle_model::{NetworkBuilder, NetworkElement, ResourceVec, LinkDirection};
/// use std::collections::BTreeSet;
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut nb = NetworkBuilder::new();
/// let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
/// let b = nb.add_ncp("b", ResourceVec::cpu(1.0));
/// let l = nb.add_link_full("ab", a, b, 1.0, LinkDirection::Undirected, 0.1)?;
/// let net = nb.build()?;
/// let path = FailurePath {
///     elements: BTreeSet::from([NetworkElement::Link(l)]),
///     rate: 1.0,
/// };
/// let stats = FailureSim::new(50_000, 1).run(&net, &[path], None);
/// assert!((stats.availability - 0.9).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FailureSim {
    /// Number of epochs to draw.
    pub epochs: u64,
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
}

impl Default for FailureSim {
    fn default() -> Self {
        FailureSim {
            epochs: 100_000,
            seed: 0,
        }
    }
}

impl FailureSim {
    /// Creates an injector with the given epoch count and seed.
    pub fn new(epochs: u64, seed: u64) -> Self {
        FailureSim { epochs, seed }
    }

    /// Runs the injection over `paths` on `network`, optionally checking
    /// a GR `min_rate` threshold.
    pub fn run(
        &self,
        network: &Network,
        paths: &[FailurePath],
        min_rate: Option<f64>,
    ) -> FailureStats {
        self.run_traced(network, paths, min_rate, TraceHandle::none())
    }

    /// Like [`FailureSim::run`], recording telemetry into `trace`: one
    /// `sim_element_state` event per up/down transition (elements start
    /// up) plus epoch/transition counters. Events depend only on the
    /// seed and inputs, so traces are byte-identical across runs.
    pub fn run_traced(
        &self,
        network: &Network,
        paths: &[FailurePath],
        min_rate: Option<f64>,
        trace: TraceHandle<'_>,
    ) -> FailureStats {
        // One shared failure code path: the per-epoch snapshots come
        // from the same ElementStateStream the online runtime consumes.
        let mut stream = ElementStateStream::new(
            network,
            paths.iter().flat_map(|p| p.elements.iter().copied()),
            self.epochs,
            self.seed,
        );
        let path_members: Vec<Vec<usize>> = paths
            .iter()
            .map(|p| {
                p.elements
                    .iter()
                    .map(|e| stream.elements().binary_search(e).expect("indexed"))
                    .collect()
            })
            .collect();

        let mut available_epochs = 0u64;
        let mut min_rate_epochs = 0u64;
        let mut rate_sum = 0.0;
        let mut transitions = 0u64;
        let mut step = Vec::new();
        while stream.step_into(&mut step) {
            transitions += step.len() as u64;
            #[cfg(feature = "telemetry")]
            if trace.is_enabled() {
                for tr in &step {
                    trace.event(&Event::SimElementState {
                        epoch: tr.epoch,
                        element: element_label(tr.element),
                        up: tr.up,
                    });
                }
            }
            let up = stream.up_states();
            let mut rate = 0.0;
            let mut any = false;
            for (members, path) in path_members.iter().zip(paths) {
                if members.iter().all(|&i| up[i]) {
                    any = true;
                    rate += path.rate;
                }
            }
            if any {
                available_epochs += 1;
            }
            if min_rate.is_none_or(|r| rate + 1e-12 >= r) {
                min_rate_epochs += 1;
            }
            rate_sum += rate;
        }
        if trace.is_enabled() {
            trace.counter("sim.failure.epochs", self.epochs);
            trace.counter("sim.failure.available_epochs", available_epochs);
            trace.counter("sim.failure.min_rate_epochs", min_rate_epochs);
            trace.counter("sim.failure.transitions", transitions);
        }
        let epochs = self.epochs.max(1);
        FailureStats {
            availability: available_epochs as f64 / epochs as f64,
            min_rate_availability: min_rate_epochs as f64 / epochs as f64,
            mean_rate: rate_sum / epochs as f64,
            epochs: self.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_alloc::PathAvailability;
    use sparcle_model::{LinkDirection, NcpId, NetworkBuilder, ResourceVec};

    /// Star with 2 % link failures, as in Figure 10's setup.
    fn star(link_failure: f64) -> Network {
        let mut b = NetworkBuilder::new();
        let hub = b.add_ncp("hub", ResourceVec::cpu(1.0));
        for i in 0..4 {
            let leaf = b.add_ncp(format!("leaf{i}"), ResourceVec::cpu(1.0));
            b.add_link_full(
                format!("l{i}"),
                hub,
                leaf,
                1.0,
                LinkDirection::Undirected,
                link_failure,
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn path(_net: &Network, links: &[u32], rate: f64) -> FailurePath {
        let mut elements = BTreeSet::new();
        elements.insert(NetworkElement::Ncp(NcpId::new(0)));
        for &l in links {
            elements.insert(NetworkElement::Link(sparcle_model::LinkId::new(l)));
        }
        FailurePath { elements, rate }
    }

    #[test]
    fn measured_availability_matches_analytic() {
        let net = star(0.02);
        let paths = vec![path(&net, &[0, 1], 2.0), path(&net, &[2, 3], 1.0)];
        let stats = FailureSim::new(200_000, 13).run(&net, &paths, None);
        let mut analytic = PathAvailability::new();
        for p in &paths {
            analytic
                .add_path(&net, p.elements.iter().copied(), p.rate)
                .unwrap();
        }
        let expect = analytic.any_working().unwrap();
        assert!(
            (stats.availability - expect).abs() < 3e-3,
            "measured {} vs analytic {expect}",
            stats.availability
        );
    }

    #[test]
    fn measured_min_rate_availability_matches_analytic() {
        let net = star(0.05);
        let paths = vec![path(&net, &[0], 2.0), path(&net, &[1], 1.5)];
        let stats = FailureSim::new(200_000, 17).run(&net, &paths, Some(2.0));
        let mut analytic = PathAvailability::new();
        for p in &paths {
            analytic
                .add_path(&net, p.elements.iter().copied(), p.rate)
                .unwrap();
        }
        let expect = analytic.min_rate(2.0).unwrap();
        assert!(
            (stats.min_rate_availability - expect).abs() < 3e-3,
            "measured {} vs analytic {expect}",
            stats.min_rate_availability
        );
    }

    #[test]
    fn mean_rate_is_rate_weighted_availability() {
        let net = star(0.1);
        let paths = vec![path(&net, &[0], 4.0)];
        let stats = FailureSim::new(100_000, 23).run(&net, &paths, None);
        // Path works with P = (1-0.1) for its single failing link (hub
        // has no failures) ⇒ mean rate ≈ 0.9 × 4.
        assert!(
            (stats.mean_rate - 3.6).abs() < 0.05,
            "mean rate {}",
            stats.mean_rate
        );
    }

    #[test]
    fn no_failures_means_always_available() {
        let net = star(0.0);
        let paths = vec![path(&net, &[0, 1], 1.0)];
        let stats = FailureSim::new(1_000, 1).run(&net, &paths, Some(1.0));
        assert_eq!(stats.availability, 1.0);
        assert_eq!(stats.min_rate_availability, 1.0);
    }

    #[test]
    fn no_paths_means_never_available() {
        let net = star(0.0);
        let stats = FailureSim::new(100, 1).run(&net, &[], None);
        assert_eq!(stats.availability, 0.0);
        assert_eq!(stats.mean_rate, 0.0);
    }

    #[test]
    fn transition_stream_is_ordered_and_deterministic() {
        let net = star(0.3);
        let elements = net.elements().collect::<Vec<_>>();
        let a =
            ElementStateStream::new(&net, elements.iter().copied(), 500, 9).collect_transitions();
        let b =
            ElementStateStream::new(&net, elements.iter().copied(), 500, 9).collect_transitions();
        assert_eq!(a, b, "same seed must give the same stream");
        assert!(!a.is_empty(), "30%-flaky links must flip");
        for w in a.windows(2) {
            assert!(
                (w[0].epoch, w[0].element) < (w[1].epoch, w[1].element),
                "stream must be ordered by (epoch, element): {w:?}"
            );
        }
        let c = ElementStateStream::new(&net, elements, 500, 10).collect_transitions();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn transition_stream_replays_to_batch_availability() {
        // Reconstructing per-epoch states from the transition stream
        // must reproduce the batch run's availability exactly — the
        // "one code path" guarantee the online runtime relies on.
        let net = star(0.05);
        let paths = vec![path(&net, &[0, 1], 2.0), path(&net, &[2], 1.0)];
        let sim = FailureSim::new(20_000, 21);
        let stats = sim.run(&net, &paths, Some(2.0));

        let mut stream = ElementStateStream::new(
            &net,
            paths.iter().flat_map(|p| p.elements.iter().copied()),
            sim.epochs,
            sim.seed,
        );
        let members: Vec<Vec<usize>> = paths
            .iter()
            .map(|p| {
                p.elements
                    .iter()
                    .map(|e| stream.elements().binary_search(e).unwrap())
                    .collect()
            })
            .collect();
        let mut up: Vec<bool> = vec![true; stream.elements().len()];
        let (mut avail, mut min_rate_ok) = (0u64, 0u64);
        let mut step = Vec::new();
        let mut epochs = 0u64;
        while stream.step_into(&mut step) {
            for tr in &step {
                let i = stream.elements().binary_search(&tr.element).unwrap();
                up[i] = tr.up;
            }
            epochs += 1;
            let rate: f64 = members
                .iter()
                .zip(&paths)
                .filter(|(m, _)| m.iter().all(|&i| up[i]))
                .map(|(_, p)| p.rate)
                .sum();
            if rate > 0.0 {
                avail += 1;
            }
            if rate + 1e-12 >= 2.0 {
                min_rate_ok += 1;
            }
        }
        assert_eq!(epochs, sim.epochs);
        assert_eq!(stats.availability, avail as f64 / epochs as f64);
        assert_eq!(
            stats.min_rate_availability,
            min_rate_ok as f64 / epochs as f64
        );
    }
}
