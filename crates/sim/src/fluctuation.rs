//! Computing-network resource fluctuation (the paper's §VI future-work
//! direction, implemented as an extension).
//!
//! Element capacities wander over time — batteries throttle CPUs,
//! wireless links fade. [`FluctuationModel`] generates a seeded
//! multiplicative random walk per element, bounded to
//! `[floor, 1] × nominal`; each epoch yields a full
//! [`CapacityMap`] that can be fed to
//! `SparcleSystem::apply_capacity_fluctuation` to study how allocations
//! adapt without migrating placements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_model::{CapacityMap, Network};

/// A bounded multiplicative random walk over every element's capacity.
///
/// # Examples
///
/// ```
/// use sparcle_sim::FluctuationModel;
/// use sparcle_model::{NetworkBuilder, ResourceKind, ResourceVec};
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut nb = NetworkBuilder::new();
/// let n = nb.add_ncp("n", ResourceVec::cpu(100.0));
/// nb.add_ncp("m", ResourceVec::cpu(100.0));
/// let net = nb.build()?;
/// let model = FluctuationModel { floor: 0.5, step: 0.1, seed: 7 };
/// let mut series = model.series(&net);
/// for _ in 0..100 {
///     let caps = series.step();
///     let cpu = caps.ncp(n).amount(ResourceKind::Cpu);
///     assert!(cpu >= 50.0 - 1e-9 && cpu <= 100.0 + 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FluctuationModel {
    /// Lowest fraction of nominal capacity an element can sink to
    /// (`0 < floor ≤ 1`).
    pub floor: f64,
    /// Maximum per-epoch relative step (e.g. `0.1` = ±10 %).
    pub step: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FluctuationModel {
    fn default() -> Self {
        FluctuationModel {
            floor: 0.3,
            step: 0.1,
            seed: 0,
        }
    }
}

/// Iterator over per-epoch capacity maps.
#[derive(Debug)]
pub struct CapacitySeries<'a> {
    network: &'a Network,
    nominal: CapacityMap,
    /// Current fraction of nominal per NCP and per link.
    ncp_frac: Vec<f64>,
    link_frac: Vec<f64>,
    model: FluctuationModel,
    rng: StdRng,
}

impl FluctuationModel {
    /// Starts a capacity series at nominal capacity.
    ///
    /// # Panics
    ///
    /// Panics on a floor outside `(0, 1]` or a negative step.
    pub fn series<'a>(&self, network: &'a Network) -> CapacitySeries<'a> {
        assert!(
            self.floor > 0.0 && self.floor <= 1.0,
            "floor must lie in (0, 1]"
        );
        assert!(self.step >= 0.0, "step must be non-negative");
        CapacitySeries {
            network,
            nominal: network.capacity_map(),
            ncp_frac: vec![1.0; network.ncp_count()],
            link_frac: vec![1.0; network.link_count()],
            model: *self,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

impl CapacitySeries<'_> {
    /// Advances one epoch and returns the new capacities.
    pub fn step(&mut self) -> CapacityMap {
        let model = self.model;
        for f in self.ncp_frac.iter_mut().chain(self.link_frac.iter_mut()) {
            let delta = self.rng.gen_range(-model.step..=model.step);
            *f = (*f * (1.0 + delta)).clamp(model.floor, 1.0);
        }
        let mut caps = self.nominal.clone();
        for (i, ncp) in self.network.ncp_ids().enumerate() {
            caps.ncp_mut(ncp).scale(self.ncp_frac[i]);
        }
        for (i, link) in self.network.link_ids().enumerate() {
            let bw = caps.link(link);
            caps.set_link(link, bw * self.link_frac[i]);
        }
        caps
    }

    /// The current per-NCP fractions of nominal capacity.
    pub fn ncp_fractions(&self) -> &[f64] {
        &self.ncp_frac
    }

    /// The current per-link fractions of nominal capacity.
    pub fn link_fractions(&self) -> &[f64] {
        &self.link_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, ResourceKind, ResourceVec};

    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(100.0));
        let y = b.add_ncp("y", ResourceVec::cpu(200.0));
        b.add_link("xy", x, y, 50.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn series_stays_within_bounds() {
        let network = net();
        let model = FluctuationModel {
            floor: 0.4,
            step: 0.2,
            seed: 5,
        };
        let mut series = model.series(&network);
        for _ in 0..500 {
            let caps = series.step();
            for (i, ncp) in network.ncp_ids().enumerate() {
                let nominal = network.ncp(ncp).capacity().amount(ResourceKind::Cpu);
                let now = caps.ncp(ncp).amount(ResourceKind::Cpu);
                assert!(now <= nominal + 1e-9, "above nominal");
                assert!(now >= 0.4 * nominal - 1e-9, "below floor");
                assert!((series.ncp_fractions()[i] - now / nominal).abs() < 1e-9);
            }
            for link in network.link_ids() {
                let nominal = network.link(link).bandwidth();
                let now = caps.link(link);
                assert!(now <= nominal + 1e-9 && now >= 0.4 * nominal - 1e-9);
            }
        }
    }

    #[test]
    fn series_is_deterministic_per_seed() {
        let network = net();
        let model = FluctuationModel::default();
        let mut a = model.series(&network);
        let mut b = model.series(&network);
        for _ in 0..10 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn zero_step_is_constant_nominal() {
        let network = net();
        let model = FluctuationModel {
            floor: 0.5,
            step: 0.0,
            seed: 1,
        };
        let mut series = model.series(&network);
        let caps = series.step();
        assert_eq!(caps, network.capacity_map());
    }

    #[test]
    #[should_panic(expected = "floor must lie in (0, 1]")]
    fn bad_floor_panics() {
        let network = net();
        FluctuationModel {
            floor: 0.0,
            step: 0.1,
            seed: 0,
        }
        .series(&network);
    }
}
