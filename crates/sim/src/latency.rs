//! Analytic end-to-end latency estimates for placed applications.
//!
//! The paper's scheduler optimizes the *rate*; latency appears only in
//! its energy discussion ("concentrating CTs on fewer NCPs … is
//! generally better in terms of energy efficiency as well as latency").
//! This module makes latency first-class:
//!
//! * [`critical_path_latency`] — the zero-queueing lower bound: the
//!   longest (service-time-weighted) source→sink path through the
//!   placed task graph, counting CT service on hosts and TT service per
//!   route link;
//! * [`mm1_latency`] — an M/M/1 sojourn-time estimate at a given offered
//!   rate: each element's service times are inflated by `1/(1 − ρ)`
//!   where `ρ` is the element's total utilization (all tasks of all
//!   co-placed paths included).
//!
//! Both agree with the discrete-event simulator in their respective
//! regimes (tests below): the critical path matches the simulated
//! latency of a lone data unit, and the M/M/1 estimate tracks Poisson
//! simulations at moderate loads.

use sparcle_model::{CtId, LoadMap, Network, Placement, TaskGraph};

/// Per-unit service time of `ct` on its host (0 for free tasks,
/// `f64::INFINITY` if the host cannot run it).
fn ct_service(graph: &TaskGraph, placement: &Placement, network: &Network, ct: CtId) -> f64 {
    let req = graph.ct(ct).requirement();
    if req.is_zero() {
        return 0.0;
    }
    let host = placement.ct_host(ct).expect("complete placement");
    match network.ncp(host).capacity().rate_supported(req) {
        Some(rate) if rate > 0.0 => 1.0 / rate,
        _ => f64::INFINITY,
    }
}

/// The zero-queueing end-to-end latency of one data unit: the longest
/// service-weighted path from any source to any sink, where a TT
/// contributes its transfer time on every link of its route and service
/// times optionally inflate by the per-element `stretch` factors.
///
/// # Panics
///
/// Panics if the placement is incomplete.
fn weighted_critical_path(
    graph: &TaskGraph,
    placement: &Placement,
    network: &Network,
    ncp_stretch: &dyn Fn(usize) -> f64,
    link_stretch: &dyn Fn(usize) -> f64,
) -> f64 {
    assert!(placement.is_complete(), "placement must be complete");
    // Longest path over the DAG in topological order.
    let mut done_at = vec![0.0f64; graph.ct_count()];
    for &ct in graph.topo_order() {
        let mut start: f64 = 0.0;
        for &tt in graph.in_edges(ct) {
            let t = graph.tt(tt);
            let mut arrive = done_at[t.from().index()];
            let route = placement.tt_route(tt).expect("complete placement");
            for &link in route {
                let bw = network.link(link).bandwidth();
                let transfer = if t.bits_per_unit() <= 0.0 {
                    0.0
                } else if bw > 0.0 {
                    t.bits_per_unit() / bw * link_stretch(link.index())
                } else {
                    f64::INFINITY
                };
                arrive += transfer;
            }
            start = start.max(arrive);
        }
        let host = placement.ct_host(ct).expect("complete placement");
        let service = ct_service(graph, placement, network, ct) * ncp_stretch(host.index());
        done_at[ct.index()] = start + service;
    }
    graph
        .sinks()
        .iter()
        .map(|s| done_at[s.index()])
        .fold(0.0, f64::max)
}

/// The zero-queueing (lone data unit) end-to-end latency of a placement.
///
/// # Panics
///
/// Panics if the placement is incomplete.
///
/// # Examples
///
/// ```
/// use sparcle_sim::critical_path_latency;
/// use sparcle_model::{NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder};
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut tb = TaskGraphBuilder::new();
/// let s = tb.add_ct("s", ResourceVec::new());
/// let w = tb.add_ct("w", ResourceVec::cpu(10.0));
/// tb.add_tt("sw", s, w, 20.0)?;
/// let graph = tb.build()?;
/// let mut nb = NetworkBuilder::new();
/// let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
/// let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
/// let l = nb.add_link("ab", a, b, 100.0)?;
/// let net = nb.build()?;
/// let mut p = Placement::empty(&graph);
/// p.place_ct(s, a);
/// p.place_ct(w, b);
/// p.route_tt(graph.tt_ids().next().unwrap(), vec![l]);
/// // 20/100 transfer + 10/100 compute = 0.3 s.
/// assert!((critical_path_latency(&graph, &p, &net) - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn critical_path_latency(graph: &TaskGraph, placement: &Placement, network: &Network) -> f64 {
    weighted_critical_path(graph, placement, network, &|_| 1.0, &|_| 1.0)
}

/// M/M/1-style sojourn latency estimate at offered `rate`: every
/// element's service times stretch by `1 / (1 − ρ_e)` with
/// `ρ_e = rate × load_e / C_e` the element's utilization under the full
/// `load` (which may aggregate several applications).
///
/// Returns `f64::INFINITY` when any element on the critical path is at
/// or beyond saturation.
///
/// # Panics
///
/// Panics if the placement is incomplete or `rate` is negative.
pub fn mm1_latency(
    graph: &TaskGraph,
    placement: &Placement,
    network: &Network,
    load: &LoadMap,
    rate: f64,
) -> f64 {
    assert!(rate >= 0.0, "rate must be non-negative");
    let caps = network.capacity_map();
    let ncp_rho: Vec<f64> = network
        .ncp_ids()
        .map(|ncp| {
            // Utilization = rate / supportable-rate for the combined load.
            match caps.ncp(ncp).rate_supported(load.ncp(ncp)) {
                Some(max) if max > 0.0 => rate / max,
                Some(_) => f64::INFINITY,
                None => 0.0,
            }
        })
        .collect();
    let link_rho: Vec<f64> = network
        .link_ids()
        .map(|link| {
            let bits = load.link(link);
            let bw = network.link(link).bandwidth();
            if bits <= 0.0 {
                0.0
            } else if bw > 0.0 {
                rate * bits / bw
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let stretch = |rho: f64| {
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - rho)
        }
    };
    weighted_critical_path(graph, placement, network, &|i| stretch(ncp_rho[i]), &|i| {
        stretch(link_rho[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{simulate_flows, ArrivalProcess, FlowSimConfig, SimApp};
    use sparcle_model::{LinkId, NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder, TtId};

    fn fixture() -> (TaskGraph, Network, Placement) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(10.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, 20.0).unwrap();
        tb.add_tt("wt", w, t, 2.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(50.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        nb.add_link("ab", a, b, 100.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, a);
        p.place_ct(w, b);
        p.place_ct(t, a);
        p.route_tt(TtId::new(0), vec![LinkId::new(0)]);
        p.route_tt(TtId::new(1), vec![LinkId::new(0)]);
        (graph, net, p)
    }

    #[test]
    fn critical_path_matches_hand_math() {
        let (graph, net, p) = fixture();
        // 20/100 (sw) + 10/100 (w) + 2/100 (wt) = 0.32 s.
        let latency = critical_path_latency(&graph, &p, &net);
        assert!((latency - 0.32).abs() < 1e-12, "latency {latency}");
    }

    #[test]
    fn critical_path_equals_lone_unit_simulation() {
        let (graph, net, p) = fixture();
        let analytic = critical_path_latency(&graph, &p, &net);
        // One unit every 100 s: no queueing at all.
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate: 0.01,
            }],
            &FlowSimConfig {
                duration: 2_000.0,
                warmup: 100.0,
                arrivals: ArrivalProcess::Deterministic,
            },
        );
        assert!(
            (stats[0].mean_latency - analytic).abs() < 1e-9,
            "sim {} vs analytic {analytic}",
            stats[0].mean_latency
        );
    }

    #[test]
    fn mm1_reduces_to_critical_path_at_zero_rate() {
        let (graph, net, p) = fixture();
        let load = p.load_map(&graph, &net);
        let cp = critical_path_latency(&graph, &p, &net);
        let mm1 = mm1_latency(&graph, &p, &net, &load, 0.0);
        assert!((cp - mm1).abs() < 1e-12);
    }

    #[test]
    fn mm1_is_monotone_in_rate_and_diverges_at_saturation() {
        let (graph, net, p) = fixture();
        let load = p.load_map(&graph, &net);
        let caps = net.capacity_map();
        let bottleneck = caps.bottleneck_rate(&load);
        let mut last = 0.0;
        for frac in [0.2, 0.5, 0.8, 0.95] {
            let l = mm1_latency(&graph, &p, &net, &load, frac * bottleneck);
            assert!(l > last, "monotone: {l} after {last}");
            last = l;
        }
        assert_eq!(
            mm1_latency(&graph, &p, &net, &load, bottleneck),
            f64::INFINITY
        );
    }

    #[test]
    fn mm1_tracks_poisson_simulation_at_moderate_load() {
        let (graph, net, p) = fixture();
        let load = p.load_map(&graph, &net);
        let caps = net.capacity_map();
        let rate = 0.6 * caps.bottleneck_rate(&load);
        let analytic = mm1_latency(&graph, &p, &net, &load, rate);
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate,
            }],
            &FlowSimConfig {
                duration: 5_000.0,
                warmup: 500.0,
                arrivals: ArrivalProcess::Poisson { seed: 5 },
            },
        );
        // M/M/1 over-estimates a deterministic-service (M/D/1) system by
        // up to 2× in waiting time; accept the same ballpark.
        let sim = stats[0].mean_latency;
        assert!(
            sim <= analytic * 1.2 && analytic <= sim * 3.0,
            "sim {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn fan_out_takes_slowest_branch() {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let fast = tb.add_ct("fast", ResourceVec::cpu(1.0));
        let slow = tb.add_ct("slow", ResourceVec::cpu(50.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("a", s, fast, 0.0).unwrap();
        tb.add_tt("b", s, slow, 0.0).unwrap();
        tb.add_tt("c", fast, t, 0.0).unwrap();
        tb.add_tt("d", slow, t, 0.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let only = nb.add_ncp("only", ResourceVec::cpu(100.0));
        let other = nb.add_ncp("other", ResourceVec::cpu(1.0));
        nb.add_link("l", only, other, 1.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        for ct in graph.ct_ids() {
            p.place_ct(ct, only);
        }
        for tt in graph.tt_ids() {
            p.route_tt(tt, vec![]);
        }
        // Slow branch: 50/100 = 0.5 dominates 1/100.
        assert!((critical_path_latency(&graph, &p, &net) - 0.5).abs() < 1e-12);
    }
}
