//! Simulation and emulation substrates for the SPARCLE evaluation.
//!
//! * [`des`] — a deterministic discrete-event core;
//! * [`flow`] — the queueing-network simulation of §IV-A: placed
//!   applications as fork/join customer flows over FIFO elements;
//! * [`emu`] — the emulated testbed replacing the paper's physical
//!   testbed + Mininet (§V-A): saturation-driven throughput
//!   measurement;
//! * [`failure`] — epoch-based failure injection matching the §III-B
//!   independent-failure model (Figure 10);
//! * [`energy`] — the utilization-proportional CPU and
//!   rate-proportional radio energy model of §V-B-2 (Figure 9);
//! * [`fluctuation`] — bounded random-walk capacity fluctuation (the
//!   paper's §VI future-work direction, implemented as an extension);
//! * [`latency`] — analytic end-to-end latency: zero-queueing critical
//!   path and M/M/1 sojourn estimates, cross-checked against the
//!   simulator;
//! * [`adaptive`] — AIMD source rate control converging to the
//!   bottleneck rate without central knowledge (the back-pressure
//!   direction the paper's §II calls complementary).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod des;
pub mod emu;
pub mod energy;
pub mod failure;
pub mod flow;
pub mod fluctuation;
pub mod latency;

pub use adaptive::{run_aimd, AimdConfig, AimdTrace};
pub use emu::{measure_saturated_rate, EmulationReport, EmulatorConfig};
pub use energy::{EnergyModel, EnergyReport};
pub use failure::{ElementStateStream, ElementTransition, FailurePath, FailureSim, FailureStats};
pub use flow::{
    simulate_flows, simulate_flows_traced, simulate_flows_with_elements, AppFlowStats,
    ArrivalProcess, ElementStats, FlowSimConfig, SimApp,
};
pub use fluctuation::{CapacitySeries, FluctuationModel};
pub use latency::{critical_path_latency, mm1_latency};
