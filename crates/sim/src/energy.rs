//! Energy consumption model and energy-efficiency metric (§V-B-2).
//!
//! The paper defines energy efficiency as *data units processed per unit
//! of energy* and adopts two published models:
//!
//! * CPU power proportional to utilization (Chen et al. \[11\]);
//! * uplink/downlink radio power proportional to the transmission rate
//!   (Huang et al. \[19\], LTE/WiFi).
//!
//! Given a placement's per-element load and a processing rate, the
//! utilization of NCP `j` is `rate × load_j^(cpu) / C_j^(cpu)` and the
//! traffic of link `l` is `rate × bits_l`; total power is the weighted
//! sum, and efficiency is `rate / power`.

use sparcle_model::{CapacityMap, LoadMap, Network, ResourceKind};

/// Linear power-model coefficients.
///
/// # Examples
///
/// ```
/// use sparcle_sim::EnergyModel;
/// use sparcle_model::{LoadMap, NcpId, NetworkBuilder, ResourceVec};
///
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut nb = NetworkBuilder::new();
/// let n = nb.add_ncp("n", ResourceVec::cpu(100.0));
/// nb.add_ncp("other", ResourceVec::new());
/// let net = nb.build()?;
/// let mut load = LoadMap::zeroed(&net);
/// load.add_ct_load(n, &ResourceVec::cpu(10.0)); // 10 MC per unit
/// let report = EnergyModel::default().evaluate(&net, &net.capacity_map(), &load, 5.0);
/// // Utilization 0.5 of a 2.5 W CPU => 1.25 W; 5 units/s per 1.25 J/s = 4 units/J.
/// assert!((report.units_per_joule - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Watts drawn by an NCP's CPU at 100 % utilization (smartphone-class
    /// SoCs draw ~2–3 W under full load \[11\]).
    pub cpu_full_load_watts: f64,
    /// Joules per megabit transmitted (LTE uplink measurements give
    /// roughly 0.2–0.5 J/Mb \[19\]; both endpoints of a link pay).
    pub joules_per_mbit_tx: f64,
    /// Joules per megabit received.
    pub joules_per_mbit_rx: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            cpu_full_load_watts: 2.5,
            joules_per_mbit_tx: 0.3,
            joules_per_mbit_rx: 0.1,
        }
    }
}

/// Energy breakdown of one placed application at a given rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total compute power in watts.
    pub cpu_watts: f64,
    /// Total radio power in watts.
    pub radio_watts: f64,
    /// Data units processed per joule (the paper's efficiency metric).
    pub units_per_joule: f64,
}

impl EnergyModel {
    /// Evaluates the model for a placement's `load` at processing `rate`
    /// under `capacities`.
    ///
    /// NCPs with zero CPU capacity contribute no compute power (they
    /// host nothing runnable). A zero-rate placement has zero power and
    /// an efficiency of zero by convention.
    pub fn evaluate(
        &self,
        network: &Network,
        capacities: &CapacityMap,
        load: &LoadMap,
        rate: f64,
    ) -> EnergyReport {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite");
        let mut cpu_watts = 0.0;
        for ncp in network.ncp_ids() {
            let demand = load.ncp(ncp).amount(ResourceKind::Cpu) * rate;
            let capacity = capacities.ncp(ncp).amount(ResourceKind::Cpu);
            if demand > 0.0 && capacity > 0.0 {
                let utilization = (demand / capacity).min(1.0);
                cpu_watts += self.cpu_full_load_watts * utilization;
            }
        }
        let mut radio_watts = 0.0;
        for link in network.link_ids() {
            let mbits_per_s = load.link(link) * rate;
            radio_watts += (self.joules_per_mbit_tx + self.joules_per_mbit_rx) * mbits_per_s;
        }
        let total = cpu_watts + radio_watts;
        EnergyReport {
            cpu_watts,
            radio_watts,
            units_per_joule: if total > 0.0 { rate / total } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{LinkId, NcpId, NetworkBuilder, ResourceVec};

    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(100.0));
        let y = b.add_ncp("y", ResourceVec::cpu(100.0));
        b.add_link("xy", x, y, 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cpu_power_scales_with_utilization() {
        let network = net();
        let caps = network.capacity_map();
        let model = EnergyModel::default();
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0));
        let half = model.evaluate(&network, &caps, &load, 5.0); // util 0.5
        let full = model.evaluate(&network, &caps, &load, 10.0); // util 1.0
        assert!((half.cpu_watts - 1.25).abs() < 1e-12);
        assert!((full.cpu_watts - 2.5).abs() < 1e-12);
        assert_eq!(half.radio_watts, 0.0);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let network = net();
        let caps = network.capacity_map();
        let model = EnergyModel::default();
        let mut load = LoadMap::zeroed(&network);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0));
        let over = model.evaluate(&network, &caps, &load, 100.0);
        assert!((over.cpu_watts - 2.5).abs() < 1e-12);
    }

    #[test]
    fn radio_power_scales_with_traffic() {
        let network = net();
        let caps = network.capacity_map();
        let model = EnergyModel::default();
        let mut load = LoadMap::zeroed(&network);
        load.add_tt_load(LinkId::new(0), 2.0); // 2 Mb per unit
        let report = model.evaluate(&network, &caps, &load, 3.0); // 6 Mb/s
        assert!((report.radio_watts - 6.0 * 0.4).abs() < 1e-12);
        assert_eq!(report.cpu_watts, 0.0);
        assert!((report.units_per_joule - 3.0 / 2.4).abs() < 1e-12);
    }

    #[test]
    fn colocated_placement_beats_chatty_one() {
        // Same compute, one placement ships data over a link: its
        // efficiency must be lower — the effect behind Figure 9.
        let network = net();
        let caps = network.capacity_map();
        let model = EnergyModel::default();
        let mut local = LoadMap::zeroed(&network);
        local.add_ct_load(NcpId::new(0), &ResourceVec::cpu(20.0));
        let mut chatty = LoadMap::zeroed(&network);
        chatty.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0));
        chatty.add_ct_load(NcpId::new(1), &ResourceVec::cpu(10.0));
        chatty.add_tt_load(LinkId::new(0), 5.0);
        let rate = 2.0;
        let e_local = model.evaluate(&network, &caps, &local, rate);
        let e_chatty = model.evaluate(&network, &caps, &chatty, rate);
        assert!(e_local.units_per_joule > e_chatty.units_per_joule);
    }

    #[test]
    fn zero_rate_zero_power() {
        let network = net();
        let caps = network.capacity_map();
        let model = EnergyModel::default();
        let load = LoadMap::zeroed(&network);
        let report = model.evaluate(&network, &caps, &load, 0.0);
        assert_eq!(report.cpu_watts, 0.0);
        assert_eq!(report.units_per_joule, 0.0);
    }
}
