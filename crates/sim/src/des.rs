//! Minimal discrete-event simulation core.
//!
//! A deterministic event queue ordered by `(time, sequence)` — ties break
//! by insertion order, so simulations are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event at a point in simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// # use sparcle_sim::des::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "sooner-but-second");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((1.0, "sooner-but-second")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the popped past.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        q.schedule(1.0, 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'd', 'b', 'c']);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn equal_timestamps_pop_fifo_across_runs() {
        // N events scheduled at the same instant must come back in
        // insertion (FIFO) order, identically on every run — the
        // determinism the flow simulator's reproducibility rests on.
        let run = || {
            let mut q = EventQueue::new();
            q.schedule(2.0, 1_000u32); // a later straggler
            for i in 0..100u32 {
                q.schedule(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect::<Vec<u32>>()
        };
        let first = run();
        assert_eq!(first[..100], (0..100).collect::<Vec<u32>>()[..]);
        assert_eq!(first[100], 1_000);
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
