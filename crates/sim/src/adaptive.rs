//! Adaptive source rate control (AIMD) over the queueing simulator.
//!
//! The paper computes each application's stable rate *centrally*; its
//! related-work section points at back-pressure as the decentralized
//! complement. This module demonstrates the simplest decentralized
//! mechanism: the source probes with Additive-Increase /
//! Multiplicative-Decrease, increasing its offered rate while the
//! pipeline keeps up and backing off when backlog builds. The achieved
//! rate converges to a band just below the analytic bottleneck — the
//! same quantity Algorithm 2 maximizes — without the controller ever
//! seeing a capacity number.

use crate::flow::{simulate_flows, ArrivalProcess, FlowSimConfig, SimApp};
use sparcle_model::{Network, Placement, TaskGraph};

/// AIMD controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Initial offered rate.
    pub initial_rate: f64,
    /// Additive increase per epoch (absolute rate units).
    pub increase: f64,
    /// Multiplicative decrease factor on congestion (`0 < β < 1`).
    pub decrease: f64,
    /// Seconds simulated per control epoch.
    pub epoch: f64,
    /// Number of control epochs.
    pub epochs: usize,
    /// Congestion signal: an epoch is congested when the backlog left
    /// at the epoch boundary exceeds this fraction of the units
    /// generated (plus a small absolute allowance for the pipeline
    /// tail).
    pub backlog_threshold: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial_rate: 0.1,
            increase: 0.1,
            decrease: 0.7,
            epoch: 60.0,
            epochs: 200,
            backlog_threshold: 0.05,
        }
    }
}

/// The trajectory of an AIMD run.
#[derive(Debug, Clone)]
pub struct AimdTrace {
    /// Offered rate at each epoch.
    pub offered: Vec<f64>,
    /// Delivered throughput at each epoch.
    pub delivered: Vec<f64>,
    /// Mean offered rate over the final quarter of the run (the
    /// converged operating point).
    pub converged_rate: f64,
}

/// Runs AIMD source control for one placed application.
///
/// Each epoch is simulated independently at the current offered rate
/// (the pipeline drains between epochs — a conservative model where
/// backlog manifests as lost deliveries within the epoch window).
///
/// # Panics
///
/// Panics if the placement is incomplete or the config is degenerate.
///
/// # Examples
///
/// See the module tests: the converged rate lands within ~15 % of the
/// analytic bottleneck.
pub fn run_aimd(
    network: &Network,
    graph: &TaskGraph,
    placement: &Placement,
    config: &AimdConfig,
) -> AimdTrace {
    assert!(placement.is_complete(), "placement must be complete");
    assert!(
        config.initial_rate > 0.0 && config.increase > 0.0,
        "rates must be positive"
    );
    assert!(
        config.decrease > 0.0 && config.decrease < 1.0,
        "decrease must lie in (0, 1)"
    );
    let mut rate = config.initial_rate;
    let mut offered = Vec::with_capacity(config.epochs);
    let mut delivered = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let stats = simulate_flows(
            network,
            &[SimApp {
                graph,
                placement,
                rate,
            }],
            &FlowSimConfig {
                duration: config.epoch,
                warmup: 0.0,
                arrivals: ArrivalProcess::Deterministic,
            },
        );
        let s = &stats[0];
        offered.push(rate);
        delivered.push(s.throughput);
        // Allow the natural pipeline tail (a few units in flight at the
        // boundary); anything beyond it is queueing backlog.
        let allowance = config.backlog_threshold * s.generated as f64 + 3.0;
        let congested = s.in_flight as f64 > allowance;
        rate = if congested {
            (rate * config.decrease).max(config.initial_rate)
        } else {
            rate + config.increase
        };
    }
    let tail = config.epochs - config.epochs / 4;
    let converged_rate = offered[tail..].iter().sum::<f64>() / (config.epochs - tail) as f64;
    AimdTrace {
        offered,
        delivered,
        converged_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{LinkId, NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder, TtId};

    fn fixture() -> (TaskGraph, Network, Placement, f64) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(10.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, 20.0).unwrap();
        tb.add_tt("wt", w, t, 2.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(50.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        nb.add_link("ab", a, b, 100.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, a);
        p.place_ct(w, b);
        p.place_ct(t, a);
        p.route_tt(TtId::new(0), vec![LinkId::new(0)]);
        p.route_tt(TtId::new(1), vec![LinkId::new(0)]);
        let bottleneck = 100.0 / 22.0;
        (graph, net, p, bottleneck)
    }

    #[test]
    fn aimd_converges_near_the_bottleneck() {
        let (graph, net, placement, bottleneck) = fixture();
        let trace = run_aimd(&net, &graph, &placement, &AimdConfig::default());
        assert!(
            trace.converged_rate > 0.75 * bottleneck,
            "converged {} vs bottleneck {bottleneck}",
            trace.converged_rate
        );
        assert!(
            trace.converged_rate < 1.1 * bottleneck,
            "converged {} overshot bottleneck {bottleneck}",
            trace.converged_rate
        );
        // Delivered rate never exceeds offered.
        for (o, d) in trace.offered.iter().zip(&trace.delivered) {
            assert!(d <= &(o * 1.05 + 0.05), "delivered {d} for offered {o}");
        }
    }

    #[test]
    fn aimd_shows_sawtooth_dynamics() {
        let (graph, net, placement, _) = fixture();
        let trace = run_aimd(&net, &graph, &placement, &AimdConfig::default());
        // At least a few multiplicative decreases fired after the probe
        // phase (the sawtooth), i.e. the rate is not monotone.
        let drops = trace
            .offered
            .windows(2)
            .filter(|w| w[1] < w[0] - 1e-12)
            .count();
        assert!(drops >= 2, "expected sawtooth, saw {drops} drops");
    }

    #[test]
    fn aimd_never_falls_below_initial_rate() {
        let (graph, net, placement, _) = fixture();
        let cfg = AimdConfig::default();
        let trace = run_aimd(&net, &graph, &placement, &cfg);
        for &r in &trace.offered {
            assert!(r >= cfg.initial_rate - 1e-12);
        }
    }
}
