//! The emulated testbed (substitute for the paper's physical testbed +
//! Mininet, §V-A).
//!
//! The paper measures an application's *achieved* processing rate by
//! running the real pipeline on emulated CPUs and links. Here the same
//! measurement drives the queueing-network simulator
//! ([`crate::flow::simulate_flows`]) into saturation: the sources offer
//! more than the placement can sustain and the delivered throughput is
//! the achieved rate. The analytic bottleneck rate of §IV-A is reported
//! alongside, and the two agreeing (they do, within simulation noise) is
//! exactly the queueing-theoretic claim the scheduler relies on.

use crate::flow::{simulate_flows, ArrivalProcess, FlowSimConfig, SimApp};
use sparcle_model::{Network, Placement, TaskGraph};

/// The outcome of one emulated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationReport {
    /// Throughput measured under saturation (data units per second).
    pub measured_rate: f64,
    /// The analytic bottleneck rate of the placement.
    pub analytic_rate: f64,
    /// Mean end-to-end latency at the measured operating point.
    pub mean_latency: f64,
}

/// Emulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EmulatorConfig {
    /// Binary-search iterations for the stability frontier.
    pub search_iters: usize,
    /// A rate is *stable* when at least this fraction of the offered
    /// load is delivered within the window.
    pub stable_fraction: f64,
    /// Warm-up seconds excluded from measurement.
    pub warmup: f64,
    /// Arrival process at the sources.
    pub arrivals: ArrivalProcess,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            search_iters: 12,
            stable_fraction: 0.95,
            warmup: 40.0,
            arrivals: ArrivalProcess::Deterministic,
        }
    }
}

/// Measures the **maximum stable processing rate** of one placed
/// application on the emulated testbed, by binary-searching the offered
/// load for the highest rate the pipeline delivers in full.
///
/// (Driving a FIFO pipeline *past* its bottleneck starves downstream
/// stages behind upstream backlogs, so the paper's metric — the maximum
/// stable rate, objective (1a) — is found at the stability frontier,
/// exactly how a backpressured stream processor operates.)
///
/// # Panics
///
/// Panics if the placement is incomplete.
pub fn measure_saturated_rate(
    network: &Network,
    graph: &TaskGraph,
    placement: &Placement,
    config: &EmulatorConfig,
) -> EmulationReport {
    let analytic = placement.bottleneck_rate(graph, network, &network.capacity_map());
    if !analytic.is_finite() || analytic <= 0.0 {
        return EmulationReport {
            measured_rate: 0.0,
            analytic_rate: analytic.max(0.0),
            mean_latency: f64::NAN,
        };
    }
    let try_rate = |rate: f64| -> (bool, f64, f64) {
        // Horizon delivering a few hundred units for a stable estimate.
        let duration = config.warmup + 400.0 / rate;
        let stats = simulate_flows(
            network,
            &[SimApp {
                graph,
                placement,
                rate,
            }],
            &FlowSimConfig {
                duration,
                warmup: config.warmup,
                arrivals: config.arrivals,
            },
        );
        let s = &stats[0];
        let stable = s.throughput >= config.stable_fraction * rate;
        (stable, s.throughput, s.mean_latency)
    };
    // Bracket the frontier around the analytic bottleneck.
    let mut lo = 0.0;
    let mut lo_result = (0.0, f64::NAN);
    let mut hi = 1.25 * analytic;
    let (stable_hi, tp_hi, lat_hi) = try_rate(hi);
    if stable_hi {
        // The analytic bound was conservative only by noise; report hi.
        return EmulationReport {
            measured_rate: tp_hi,
            analytic_rate: analytic,
            mean_latency: lat_hi,
        };
    }
    for _ in 0..config.search_iters {
        let mid = 0.5 * (lo + hi);
        let (stable, tp, lat) = try_rate(mid);
        if stable {
            lo = mid;
            lo_result = (tp, lat);
        } else {
            hi = mid;
        }
    }
    EmulationReport {
        measured_rate: lo_result.0,
        analytic_rate: analytic,
        mean_latency: lo_result.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_core::DynamicRankingAssigner;
    use sparcle_model::QoeClass;
    use sparcle_workloads::face_detection::{face_detection_app, testbed_network};

    #[test]
    fn emulated_rate_matches_analytic_for_sparcle_placement() {
        let app = face_detection_app(QoeClass::best_effort(1.0)).unwrap();
        let net = testbed_network(10.0);
        let path = DynamicRankingAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        let report = measure_saturated_rate(
            &net,
            app.graph(),
            &path.placement,
            &EmulatorConfig::default(),
        );
        assert!(
            (report.measured_rate - report.analytic_rate).abs() / report.analytic_rate < 0.05,
            "measured {} vs analytic {}",
            report.measured_rate,
            report.analytic_rate
        );
        assert!(report.mean_latency.is_finite());
    }

    #[test]
    fn dead_placement_reports_zero() {
        use sparcle_model::{NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder};
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(10.0));
        tb.add_tt("sw", s, w, 1.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let dead = nb.add_ncp("dead", ResourceVec::cpu(0.0));
        let mut p = Placement::empty(&graph);
        p.place_ct(s, dead);
        p.place_ct(w, dead);
        p.route_tt(sparcle_model::TtId::new(0), vec![]);
        let net = nb.build().unwrap();
        let report = measure_saturated_rate(&net, &graph, &p, &EmulatorConfig::default());
        assert_eq!(report.measured_rate, 0.0);
        assert_eq!(report.analytic_rate, 0.0);
    }
}
