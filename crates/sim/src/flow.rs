//! Discrete-event queueing-network simulation of placed stream
//! processing applications.
//!
//! §IV-A models a placed application as a queueing network: each data
//! unit is a customer, each network element (NCP or link) is a FIFO
//! server, and the service time of task `i` on element `j` is
//! `max_r a_i^(r) / C_j^(r)` (CTs) or `a^(b) / C^(b)` (TTs, once per
//! route link). The stable input rate is bounded by the bottleneck
//! element — the very quantity Algorithm 2 maximizes.
//!
//! [`simulate_flows`] executes that queueing network faithfully —
//! fork/join DAG semantics, elements shared across applications, FIFO
//! service — and reports per-application throughput and latency. It is
//! the validation substrate: the measured saturated throughput must
//! match the analytic bottleneck rate, and offered loads below the
//! bottleneck must be delivered in full.

use crate::des::EventQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "telemetry")]
use sparcle_core::telemetry::Event;
use sparcle_core::TraceHandle;
use sparcle_model::{CtId, Network, NetworkElement, Placement, TaskGraph, TtId};
use std::collections::HashMap;

/// Queue-depth samples taken over the horizon while tracing.
const QUEUE_SAMPLES: u32 = 64;
/// Buckets of the per-app delivery-rate timeline while tracing.
const RATE_BUCKETS: usize = 16;

/// How data units are injected at the sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Constant inter-arrival time `1 / rate`.
    Deterministic,
    /// Exponential inter-arrival times (Poisson stream), seeded.
    Poisson {
        /// RNG seed; simulations are reproducible per seed.
        seed: u64,
    },
}

/// One application instance offered to the simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimApp<'a> {
    /// The application's task graph.
    pub graph: &'a TaskGraph,
    /// A complete, validated placement of that graph.
    pub placement: &'a Placement,
    /// Offered input rate in data units per second.
    pub rate: f64,
}

/// Simulation horizon and measurement window.
#[derive(Debug, Clone, Copy)]
pub struct FlowSimConfig {
    /// Total simulated seconds.
    pub duration: f64,
    /// Initial seconds excluded from throughput/latency statistics.
    pub warmup: f64,
    /// Arrival process at the sources.
    pub arrivals: ArrivalProcess,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            duration: 200.0,
            warmup: 20.0,
            arrivals: ArrivalProcess::Deterministic,
        }
    }
}

/// Aggregate, per-element results of a flow simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementStats {
    /// Busy-time fraction of each NCP over the horizon.
    pub ncp_utilization: Vec<f64>,
    /// Busy-time fraction of each link over the horizon.
    pub link_utilization: Vec<f64>,
}

impl ElementStats {
    /// The most-utilized element and its utilization, if any work ran.
    pub fn bottleneck(&self) -> Option<(NetworkElement, f64)> {
        let mut best: Option<(NetworkElement, f64)> = None;
        for (i, &u) in self.ncp_utilization.iter().enumerate() {
            if best.map_or(u > 0.0, |(_, b)| u > b) {
                best = Some((NetworkElement::Ncp(sparcle_model::NcpId::new(i as u32)), u));
            }
        }
        for (i, &u) in self.link_utilization.iter().enumerate() {
            if best.map_or(u > 0.0, |(_, b)| u > b) {
                best = Some((
                    NetworkElement::Link(sparcle_model::LinkId::new(i as u32)),
                    u,
                ));
            }
        }
        best
    }
}

/// Per-application results of a flow simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppFlowStats {
    /// Units injected over the whole run.
    pub generated: u64,
    /// Units fully delivered (every sink reached) inside the
    /// measurement window.
    pub delivered: u64,
    /// Delivered units per second of measurement window.
    pub throughput: f64,
    /// Mean end-to-end latency of measured deliveries (seconds);
    /// `NaN` when nothing was delivered.
    pub mean_latency: f64,
    /// Maximum end-to-end latency of measured deliveries.
    pub max_latency: f64,
    /// Units still inside the network when the horizon ended.
    pub in_flight: u64,
}

/// A task processing step flowing through the simulator.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// CT service finished on its host.
    CtDone { app: usize, unit: u64, ct: CtId },
    /// One link hop of a TT finished.
    HopDone {
        app: usize,
        unit: u64,
        tt: TtId,
        hop: usize,
    },
    /// Inject the next data unit of an application.
    Generate { app: usize },
}

/// Runs the queueing-network simulation.
///
/// # Panics
///
/// Panics if a placement is incomplete (validate with
/// [`Placement::validate`] first) or rates are negative.
pub fn simulate_flows(
    network: &Network,
    apps: &[SimApp<'_>],
    config: &FlowSimConfig,
) -> Vec<AppFlowStats> {
    simulate_flows_with_elements(network, apps, config).0
}

/// Like [`simulate_flows`], additionally returning per-element busy-time
/// utilizations (useful for locating the simulated bottleneck).
///
/// # Panics
///
/// Same as [`simulate_flows`].
pub fn simulate_flows_with_elements(
    network: &Network,
    apps: &[SimApp<'_>],
    config: &FlowSimConfig,
) -> (Vec<AppFlowStats>, ElementStats) {
    simulate_flows_traced(network, apps, config, TraceHandle::none())
}

/// Like [`simulate_flows_with_elements`], recording telemetry into
/// `trace`: periodic `sim_queue_depth` samples, a per-app
/// `sim_app_rate` delivery timeline, and step/unit counters. All
/// emitted events are deterministic functions of the inputs (and the
/// arrival seed), so traces are byte-identical across runs.
///
/// # Panics
///
/// Same as [`simulate_flows`].
pub fn simulate_flows_traced(
    network: &Network,
    apps: &[SimApp<'_>],
    config: &FlowSimConfig,
    trace: TraceHandle<'_>,
) -> (Vec<AppFlowStats>, ElementStats) {
    for app in apps {
        assert!(app.rate >= 0.0, "offered rate must be non-negative");
        assert!(
            app.placement.is_complete(),
            "placements must be complete before simulation"
        );
    }
    let mut sim = FlowSim::new(network, apps, config, trace);
    // One span over the whole DES loop: per-event spans would dominate
    // the event loop's cost, so attribution stays at simulation
    // granularity (see DESIGN.md §9).
    let span = trace.span("sim.flow");
    sim.run();
    span.finish();
    sim.finish()
}

/// Index of an element in the flat busy-time table.
fn element_slot(network: &Network, element: NetworkElement) -> usize {
    match element {
        NetworkElement::Ncp(id) => id.index(),
        NetworkElement::Link(id) => network.ncp_count() + id.index(),
    }
}

struct FlowSim<'a> {
    network: &'a Network,
    apps: &'a [SimApp<'a>],
    config: &'a FlowSimConfig,
    queue: EventQueue<Step>,
    /// FIFO frontier per element: earliest time new work can start.
    busy_until: Vec<f64>,
    /// Accumulated service time per element (within the horizon).
    busy_time: Vec<f64>,
    /// Next unit id per app.
    next_unit: Vec<u64>,
    /// Birth time per (app, unit).
    birth: HashMap<(usize, u64), f64>,
    /// Remaining undelivered in-edges per (app, unit, ct).
    waiting_inputs: HashMap<(usize, u64, u32), usize>,
    /// Remaining sinks per (app, unit).
    waiting_sinks: HashMap<(usize, u64), usize>,
    rng: Option<StdRng>,
    // Statistics.
    generated: Vec<u64>,
    delivered: Vec<u64>,
    latency_sum: Vec<f64>,
    latency_max: Vec<f64>,
    completed_total: Vec<u64>,
    // Telemetry (inert when no recorder is attached).
    trace: TraceHandle<'a>,
    /// Events popped from the queue so far.
    processed: u64,
    /// Next queue-depth sample time (`∞` when tracing is off).
    next_sample: f64,
    /// Popped step counts: `[Generate, CtDone, HopDone]`.
    step_counts: [u64; 3],
    /// Delivered units per (app, timeline bucket) inside the window.
    bucket_delivered: Vec<Vec<u64>>,
}

impl<'a> FlowSim<'a> {
    fn new(
        network: &'a Network,
        apps: &'a [SimApp<'a>],
        config: &'a FlowSimConfig,
        trace: TraceHandle<'a>,
    ) -> Self {
        let slots = network.ncp_count() + network.link_count();
        let rng = match config.arrivals {
            ArrivalProcess::Poisson { seed } => Some(StdRng::seed_from_u64(seed)),
            ArrivalProcess::Deterministic => None,
        };
        let mut sim = FlowSim {
            network,
            apps,
            config,
            queue: EventQueue::new(),
            busy_until: vec![0.0; slots],
            busy_time: vec![0.0; slots],
            next_unit: vec![0; apps.len()],
            birth: HashMap::new(),
            waiting_inputs: HashMap::new(),
            waiting_sinks: HashMap::new(),
            rng,
            generated: vec![0; apps.len()],
            delivered: vec![0; apps.len()],
            latency_sum: vec![0.0; apps.len()],
            latency_max: vec![0.0; apps.len()],
            completed_total: vec![0; apps.len()],
            trace,
            processed: 0,
            next_sample: if trace.is_enabled() {
                0.0
            } else {
                f64::INFINITY
            },
            step_counts: [0; 3],
            bucket_delivered: if trace.is_enabled() {
                vec![vec![0; RATE_BUCKETS]; apps.len()]
            } else {
                Vec::new()
            },
        };
        for (i, app) in apps.iter().enumerate() {
            if app.rate > 0.0 {
                let first = sim.interarrival(i);
                sim.queue.schedule(first, Step::Generate { app: i });
            }
        }
        sim
    }

    fn interarrival(&mut self, app: usize) -> f64 {
        let mean = 1.0 / self.apps[app].rate;
        match &mut self.rng {
            Some(rng) => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.queue.now() + mean * (-u.ln())
            }
            None => self.queue.now() + mean,
        }
    }

    /// Enqueues FIFO service on `element` and returns the finish time.
    fn serve(&mut self, element: NetworkElement, arrive: f64, service: f64) -> f64 {
        let slot = element_slot(self.network, element);
        let start = self.busy_until[slot].max(arrive);
        let finish = start + service;
        self.busy_until[slot] = finish;
        // Count only the in-horizon portion toward utilization.
        let clipped_end = finish.min(self.config.duration);
        if clipped_end > start {
            self.busy_time[slot] += clipped_end - start;
        }
        finish
    }

    fn ct_service_time(&self, app: usize, ct: CtId) -> f64 {
        let a = self.apps[app];
        let req = a.graph.ct(ct).requirement();
        if req.is_zero() {
            return 0.0;
        }
        let host = a.placement.ct_host(ct).expect("complete placement");
        match self.network.ncp(host).capacity().rate_supported(req) {
            Some(rate) if rate > 0.0 => 1.0 / rate,
            _ => f64::INFINITY,
        }
    }

    /// Starts CT service for a unit whose inputs are all present.
    fn start_ct(&mut self, now: f64, app: usize, unit: u64, ct: CtId) {
        let host = self.apps[app].placement.ct_host(ct).expect("complete");
        let service = self.ct_service_time(app, ct);
        if !service.is_finite() {
            // The host cannot process this task at all: the unit stalls
            // forever (counts as in-flight).
            return;
        }
        let finish = self.serve(NetworkElement::Ncp(host), now, service);
        self.queue.schedule(finish, Step::CtDone { app, unit, ct });
    }

    /// Delivers a TT's payload into its downstream CT (join logic).
    fn deliver_to(&mut self, now: f64, app: usize, unit: u64, ct: CtId) {
        let key = (app, unit, ct.as_u32());
        let remaining = self
            .waiting_inputs
            .entry(key)
            .or_insert_with(|| self.apps[app].graph.in_edges(ct).len());
        *remaining -= 1;
        if *remaining == 0 {
            self.waiting_inputs.remove(&key);
            self.start_ct(now, app, unit, ct);
        }
    }

    fn on_ct_done(&mut self, now: f64, app: usize, unit: u64, ct: CtId) {
        let graph = self.apps[app].graph;
        if graph.out_edges(ct).is_empty() {
            // A sink finished: the unit completes when all sinks have.
            let key = (app, unit);
            let remaining = self
                .waiting_sinks
                .entry(key)
                .or_insert_with(|| graph.sinks().len());
            *remaining -= 1;
            if *remaining == 0 {
                self.waiting_sinks.remove(&key);
                self.complete_unit(now, app, unit);
            }
            return;
        }
        for &tt in graph.out_edges(ct) {
            self.advance_tt(now, app, unit, tt, 0);
        }
    }

    /// Sends a TT through hop `hop` of its route (or delivers if past the
    /// last hop / the route is local).
    fn advance_tt(&mut self, now: f64, app: usize, unit: u64, tt: TtId, hop: usize) {
        let a = self.apps[app];
        let route = a.placement.tt_route(tt).expect("complete placement");
        if hop >= route.len() {
            self.deliver_to(now, app, unit, a.graph.tt(tt).to());
            return;
        }
        let link = route[hop];
        let bits = a.graph.tt(tt).bits_per_unit();
        let bw = self.network.link(link).bandwidth();
        let service = if bits <= 0.0 {
            0.0
        } else if bw > 0.0 {
            bits / bw
        } else {
            return; // dead link: unit stalls, stays in flight
        };
        let finish = self.serve(NetworkElement::Link(link), now, service);
        self.queue
            .schedule(finish, Step::HopDone { app, unit, tt, hop });
    }

    fn complete_unit(&mut self, now: f64, app: usize, unit: u64) {
        let birth = self
            .birth
            .remove(&(app, unit))
            .expect("unit has a birth time");
        self.completed_total[app] += 1;
        if birth >= self.config.warmup {
            self.delivered[app] += 1;
            let latency = now - birth;
            self.latency_sum[app] += latency;
            self.latency_max[app] = self.latency_max[app].max(latency);
            if self.trace.is_enabled() {
                let b = ((now - self.config.warmup) / self.bucket_width()) as usize;
                self.bucket_delivered[app][b.min(RATE_BUCKETS - 1)] += 1;
            }
        }
    }

    /// Width of one delivery-timeline bucket (simulated seconds).
    fn bucket_width(&self) -> f64 {
        let window = (self.config.duration - self.config.warmup).max(f64::MIN_POSITIVE);
        window / RATE_BUCKETS as f64
    }

    /// Emits a queue-depth sample and advances the sampling clock.
    fn sample_queue_depth(&mut self, now: f64) {
        #[cfg(feature = "telemetry")]
        {
            self.trace.event(&Event::SimQueueDepth {
                time: now,
                depth: self.queue.len() as u64,
                processed: self.processed,
            });
        }
        self.trace
            .timing("sim.queue_depth", self.queue.len() as u64);
        let every = (self.config.duration / f64::from(QUEUE_SAMPLES)).max(f64::MIN_POSITIVE);
        while self.next_sample <= now {
            self.next_sample += every;
        }
    }

    /// Emits the delivery-rate timeline and the run counters.
    fn flush_trace(&self) {
        if !self.trace.is_enabled() {
            return;
        }
        #[cfg(feature = "telemetry")]
        {
            let width = self.bucket_width();
            for (app, buckets) in self.bucket_delivered.iter().enumerate() {
                for (b, &count) in buckets.iter().enumerate() {
                    self.trace.event(&Event::SimAppRate {
                        time: self.config.warmup + (b + 1) as f64 * width,
                        app: app as u32,
                        rate: count as f64 / width,
                    });
                }
            }
        }
        self.trace
            .counter("sim.steps.generate", self.step_counts[0]);
        self.trace.counter("sim.steps.ct_done", self.step_counts[1]);
        self.trace
            .counter("sim.steps.hop_done", self.step_counts[2]);
        self.trace.counter("sim.events.processed", self.processed);
        self.trace
            .counter("sim.units.generated", self.generated.iter().sum());
        self.trace
            .counter("sim.units.delivered", self.delivered.iter().sum());
    }

    fn on_generate(&mut self, now: f64, app: usize) {
        if now > self.config.duration {
            return;
        }
        let unit = self.next_unit[app];
        self.next_unit[app] += 1;
        self.generated[app] += 1;
        self.birth.insert((app, unit), now);
        // Emit at every source CT simultaneously.
        let sources: Vec<CtId> = self.apps[app].graph.sources().to_vec();
        for ct in sources {
            self.start_ct(now, app, unit, ct);
        }
        let next = self.interarrival(app);
        if next <= self.config.duration {
            self.queue.schedule(next, Step::Generate { app });
        }
    }

    fn run(&mut self) {
        while let Some((now, step)) = self.queue.pop() {
            if now > self.config.duration {
                // Work past the horizon never counts; stop here so
                // `in_flight` reflects the backlog at the horizon.
                break;
            }
            self.processed += 1;
            if now >= self.next_sample {
                self.sample_queue_depth(now);
            }
            match step {
                Step::Generate { app } => {
                    self.step_counts[0] += 1;
                    self.on_generate(now, app)
                }
                Step::CtDone { app, unit, ct } => {
                    self.step_counts[1] += 1;
                    self.on_ct_done(now, app, unit, ct)
                }
                Step::HopDone { app, unit, tt, hop } => {
                    self.step_counts[2] += 1;
                    self.advance_tt(now, app, unit, tt, hop + 1)
                }
            }
        }
    }

    fn finish(self) -> (Vec<AppFlowStats>, ElementStats) {
        self.flush_trace();
        let window = (self.config.duration - self.config.warmup).max(f64::MIN_POSITIVE);
        let apps = (0..self.apps.len())
            .map(|i| AppFlowStats {
                generated: self.generated[i],
                delivered: self.delivered[i],
                throughput: self.delivered[i] as f64 / window,
                mean_latency: if self.delivered[i] > 0 {
                    self.latency_sum[i] / self.delivered[i] as f64
                } else {
                    f64::NAN
                },
                max_latency: self.latency_max[i],
                in_flight: self.generated[i] - self.completed_total[i],
            })
            .collect();
        let horizon = self.config.duration.max(f64::MIN_POSITIVE);
        let n = self.network.ncp_count();
        let elements = ElementStats {
            ncp_utilization: self.busy_time[..n].iter().map(|&b| b / horizon).collect(),
            link_utilization: self.busy_time[n..].iter().map(|&b| b / horizon).collect(),
        };
        (apps, elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{LinkId, NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder};

    /// source → work → sink placed across a two-node network.
    fn fixture() -> (TaskGraph, Network, Placement, f64) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(10.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, 20.0).unwrap();
        tb.add_tt("wt", w, t, 2.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(50.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        nb.add_link("ab", a, b, 100.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, a);
        p.place_ct(w, b);
        p.place_ct(t, a);
        p.route_tt(sparcle_model::TtId::new(0), vec![LinkId::new(0)]);
        p.route_tt(sparcle_model::TtId::new(1), vec![LinkId::new(0)]);
        p.validate(&graph, &net).unwrap();
        // Analytic bottleneck: link carries 20+2=22 bits → 100/22 ≈ 4.54;
        // NCP b: 100/10 = 10. Bottleneck = 100/22.
        let bottleneck = 100.0 / 22.0;
        (graph, net, p, bottleneck)
    }

    #[test]
    fn underload_is_delivered_in_full() {
        let (graph, net, placement, bottleneck) = fixture();
        let rate = 0.5 * bottleneck;
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate,
            }],
            &FlowSimConfig::default(),
        );
        let s = &stats[0];
        assert!(
            (s.throughput - rate).abs() / rate < 0.05,
            "throughput {} vs offered {rate}",
            s.throughput
        );
        assert!(s.mean_latency.is_finite());
        assert!(s.in_flight < 5, "in flight: {}", s.in_flight);
    }

    #[test]
    fn near_capacity_load_is_delivered_in_full() {
        let (graph, net, placement, bottleneck) = fixture();
        let rate = 0.9 * bottleneck;
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate,
            }],
            &FlowSimConfig::default(),
        );
        let s = &stats[0];
        assert!(
            (s.throughput - rate).abs() / rate < 0.05,
            "throughput {} vs offered {rate}",
            s.throughput
        );
    }

    #[test]
    fn overload_backlogs_and_never_exceeds_bottleneck() {
        // Past the stability frontier a FIFO pipeline backlogs (and
        // upstream stages starve downstream ones), so delivered
        // throughput stays at or below the analytic bottleneck — this
        // is why the emulator searches for the *stable* frontier.
        let (graph, net, placement, bottleneck) = fixture();
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate: 2.0 * bottleneck,
            }],
            &FlowSimConfig::default(),
        );
        let s = &stats[0];
        assert!(
            s.throughput <= bottleneck * 1.05,
            "throughput {} exceeded bottleneck {bottleneck}",
            s.throughput
        );
        // Queues grow under overload.
        assert!(s.in_flight > 10, "in flight: {}", s.in_flight);
    }

    #[test]
    fn poisson_arrivals_deliver_moderate_load() {
        let (graph, net, placement, bottleneck) = fixture();
        let rate = 0.7 * bottleneck;
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate,
            }],
            &FlowSimConfig {
                arrivals: ArrivalProcess::Poisson { seed: 9 },
                ..FlowSimConfig::default()
            },
        );
        let s = &stats[0];
        assert!(
            (s.throughput - rate).abs() / rate < 0.06,
            "throughput {} vs offered {rate}",
            s.throughput
        );
    }

    #[test]
    fn colocated_pipeline_shares_one_server() {
        // Both compute tasks on one NCP: the bottleneck is the summed
        // service.
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w1 = tb.add_ct("w1", ResourceVec::cpu(10.0));
        let w2 = tb.add_ct("w2", ResourceVec::cpu(30.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("a", s, w1, 0.0).unwrap();
        tb.add_tt("b", w1, w2, 0.0).unwrap();
        tb.add_tt("c", w2, t, 0.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let only = nb.add_ncp("only", ResourceVec::cpu(100.0));
        let other = nb.add_ncp("other", ResourceVec::cpu(1.0));
        nb.add_link("l", only, other, 1.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        for ct in graph.ct_ids() {
            p.place_ct(ct, only);
        }
        for tt in graph.tt_ids() {
            p.route_tt(tt, vec![]);
        }
        // Bottleneck: 100/(10+30) = 2.5; offered 90 % of it.
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate: 2.25,
            }],
            &FlowSimConfig::default(),
        );
        assert!(
            (stats[0].throughput - 2.25).abs() < 0.1,
            "throughput {}",
            stats[0].throughput
        );
        // And overload never beats the bottleneck.
        let over = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate: 10.0,
            }],
            &FlowSimConfig::default(),
        );
        assert!(over[0].throughput <= 2.5 + 0.1);
    }

    #[test]
    fn diamond_join_waits_for_both_branches() {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let u = tb.add_ct("u", ResourceVec::cpu(1.0));
        let v = tb.add_ct("v", ResourceVec::cpu(5.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("su", s, u, 0.0).unwrap();
        tb.add_tt("sv", s, v, 0.0).unwrap();
        tb.add_tt("ut", u, t, 0.0).unwrap();
        tb.add_tt("vt", v, t, 0.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu(10.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(10.0));
        nb.add_link("xy", x, y, 1e6).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, x);
        p.place_ct(u, x);
        p.place_ct(v, y);
        p.place_ct(t, x);
        p.route_tt(sparcle_model::TtId::new(0), vec![]);
        p.route_tt(sparcle_model::TtId::new(1), vec![LinkId::new(0)]);
        p.route_tt(sparcle_model::TtId::new(2), vec![]);
        p.route_tt(sparcle_model::TtId::new(3), vec![LinkId::new(0)]);
        p.validate(&graph, &net).unwrap();
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate: 1.0,
            }],
            &FlowSimConfig::default(),
        );
        // Slow branch v (5/10 = 0.5 s) dominates latency.
        assert!(stats[0].mean_latency >= 0.5 - 1e-9);
        assert!((stats[0].throughput - 1.0).abs() < 0.05);
    }

    #[test]
    fn two_apps_share_an_element_fifo() {
        let (graph, net, placement, bottleneck) = fixture();
        let each = 0.4 * bottleneck;
        let apps = [
            SimApp {
                graph: &graph,
                placement: &placement,
                rate: each,
            },
            SimApp {
                graph: &graph,
                placement: &placement,
                rate: each,
            },
        ];
        let stats = simulate_flows(&net, &apps, &FlowSimConfig::default());
        for s in &stats {
            assert!(
                (s.throughput - each).abs() / each < 0.06,
                "throughput {} vs {each}",
                s.throughput
            );
        }
    }

    #[test]
    fn utilization_matches_offered_load() {
        let (graph, net, placement, bottleneck) = fixture();
        let rate = 0.5 * bottleneck;
        let (_, elements) = simulate_flows_with_elements(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate,
            }],
            &FlowSimConfig::default(),
        );
        // Link service per unit = (20 + 2)/100 = 0.22 s; at rate
        // 0.5 × 100/22 the link is ~50 % busy.
        let link_util = elements.link_utilization[0];
        assert!(
            (link_util - 0.5).abs() < 0.05,
            "link utilization {link_util}"
        );
        // NCP b: 0.1 s per unit at ~2.27 units/s ⇒ ~22.7 % busy.
        let b_util = elements.ncp_utilization[1];
        assert!((b_util - 0.227).abs() < 0.05, "ncp utilization {b_util}");
        // The bottleneck finder points at the link.
        let (el, _) = elements.bottleneck().unwrap();
        assert_eq!(el, NetworkElement::Link(LinkId::new(0)));
    }

    #[test]
    fn zero_rate_app_is_inert() {
        let (graph, net, placement, _) = fixture();
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &placement,
                rate: 0.0,
            }],
            &FlowSimConfig::default(),
        );
        assert_eq!(stats[0].generated, 0);
        assert_eq!(stats[0].delivered, 0);
        assert!(stats[0].mean_latency.is_nan());
    }

    #[test]
    fn nonzero_source_requirement_queues_at_source_host() {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::cpu(10.0)); // camera encoding
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("st", s, t, 0.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(20.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(20.0));
        nb.add_link("ab", a, b, 1.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, a);
        p.place_ct(t, a);
        p.route_tt(sparcle_model::TtId::new(0), vec![]);
        let stats = simulate_flows(
            &net,
            &[SimApp {
                graph: &graph,
                placement: &p,
                rate: 1.8,
            }],
            &FlowSimConfig::default(),
        );
        // Capacity is 20/10 = 2 units/s; 1.8 is delivered in full.
        assert!(
            (stats[0].throughput - 1.8).abs() < 0.1,
            "tp {}",
            stats[0].throughput
        );
    }
}
