//! Property-based tests for the simulation substrates.

use proptest::prelude::*;
use sparcle_model::{
    LinkId, NcpId, NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder, TtId,
};
use sparcle_sim::{
    simulate_flows, simulate_flows_with_elements, ArrivalProcess, EnergyModel, FailurePath,
    FailureSim, FlowSimConfig, SimApp,
};
use std::collections::BTreeSet;

/// A pipeline placed across a 2-node network, parameterized by random
/// requirements; returns everything needed to simulate.
fn placed_pipeline(
    cpu: f64,
    bits: f64,
) -> (
    sparcle_model::TaskGraph,
    sparcle_model::Network,
    Placement,
    f64,
) {
    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("s", ResourceVec::new());
    let w = tb.add_ct("w", ResourceVec::cpu(cpu));
    let t = tb.add_ct("t", ResourceVec::new());
    tb.add_tt("sw", s, w, bits).unwrap();
    tb.add_tt("wt", w, t, bits / 10.0).unwrap();
    let graph = tb.build().unwrap();
    let mut nb = NetworkBuilder::new();
    let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
    let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
    nb.add_link("ab", a, b, 100.0).unwrap();
    let net = nb.build().unwrap();
    let mut p = Placement::empty(&graph);
    p.place_ct(s, a);
    p.place_ct(w, b);
    p.place_ct(t, a);
    p.route_tt(TtId::new(0), vec![LinkId::new(0)]);
    p.route_tt(TtId::new(1), vec![LinkId::new(0)]);
    let bottleneck = (100.0 / cpu).min(100.0 / (bits + bits / 10.0));
    (graph, net, p, bottleneck)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: generated = delivered-in-window + delivered-out-of-
    /// window + in-flight; throughput never exceeds the offered rate.
    #[test]
    fn flow_conservation(
        cpu in 1.0f64..50.0,
        bits in 1.0f64..50.0,
        load_frac in 0.1f64..2.0,
    ) {
        let (graph, net, placement, bottleneck) = placed_pipeline(cpu, bits);
        let rate = load_frac * bottleneck;
        let stats = simulate_flows(
            &net,
            &[SimApp { graph: &graph, placement: &placement, rate }],
            &FlowSimConfig::default(),
        );
        let s = &stats[0];
        prop_assert!(s.delivered <= s.generated);
        prop_assert!(s.in_flight <= s.generated);
        // Throughput cannot exceed the offered rate (modulo windowing).
        prop_assert!(s.throughput <= rate * 1.2 + 1e-9);
        // Underload: nearly everything is delivered.
        if load_frac < 0.8 {
            prop_assert!(
                (s.throughput - rate).abs() / rate < 0.1,
                "offered {rate}, got {}", s.throughput
            );
        }
    }

    /// Utilizations are in [0, 1] and the shared link's utilization
    /// scales linearly with the offered rate in the stable regime.
    #[test]
    fn utilization_bounds_and_linearity(
        cpu in 1.0f64..50.0,
        bits in 1.0f64..50.0,
    ) {
        let (graph, net, placement, bottleneck) = placed_pipeline(cpu, bits);
        let mut utils = Vec::new();
        for frac in [0.25, 0.5] {
            let (_, elements) = simulate_flows_with_elements(
                &net,
                &[SimApp {
                    graph: &graph,
                    placement: &placement,
                    rate: frac * bottleneck,
                }],
                &FlowSimConfig::default(),
            );
            for &u in elements
                .ncp_utilization
                .iter()
                .chain(&elements.link_utilization)
            {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
            }
            utils.push(elements.link_utilization[0]);
        }
        // Doubling the rate roughly doubles the link utilization.
        if utils[0] > 0.02 {
            let ratio = utils[1] / utils[0];
            prop_assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
        }
    }

    /// Poisson and deterministic arrivals deliver the same throughput in
    /// the comfortably-stable regime.
    #[test]
    fn arrival_process_does_not_change_stable_throughput(
        cpu in 1.0f64..40.0,
        bits in 1.0f64..40.0,
        seed in 0u64..100,
    ) {
        let (graph, net, placement, bottleneck) = placed_pipeline(cpu, bits);
        let rate = 0.5 * bottleneck;
        // A long horizon shrinks the Poisson count's relative variance.
        let cfg = |arrivals| FlowSimConfig {
            duration: 2_000.0,
            warmup: 100.0,
            arrivals,
        };
        let run = |arrivals| {
            simulate_flows(
                &net,
                &[SimApp { graph: &graph, placement: &placement, rate }],
                &cfg(arrivals),
            )[0]
            .throughput
        };
        let det = run(ArrivalProcess::Deterministic);
        let poi = run(ArrivalProcess::Poisson { seed });
        prop_assert!((det - poi).abs() / det < 0.1, "det {det} vs poisson {poi}");
    }

    /// Failure injection matches the closed form for a single path:
    /// availability = Π(1 − pf).
    #[test]
    fn single_path_failure_injection_matches_product(
        pfs in proptest::collection::vec(0.0f64..0.5, 1..5),
    ) {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
        let mut prev = a;
        for (i, &pf) in pfs.iter().enumerate() {
            let next = nb.add_ncp(format!("n{i}"), ResourceVec::cpu(1.0));
            nb.add_link_full(
                format!("l{i}"),
                prev,
                next,
                1.0,
                sparcle_model::LinkDirection::Undirected,
                pf,
            )
            .unwrap();
            prev = next;
        }
        let net = nb.build().unwrap();
        let elements: BTreeSet<_> = net
            .link_ids()
            .map(sparcle_model::NetworkElement::Link)
            .collect();
        let paths = [FailurePath { elements, rate: 1.0 }];
        let stats = FailureSim::new(120_000, 3).run(&net, &paths, None);
        let expect: f64 = pfs.iter().map(|pf| 1.0 - pf).product();
        prop_assert!(
            (stats.availability - expect).abs() < 0.01,
            "measured {} vs {expect}",
            stats.availability
        );
    }

    /// Energy is monotone: more rate never consumes less power, and
    /// efficiency is invariant to rate while utilization is strictly
    /// below saturation (linear model).
    #[test]
    fn energy_monotonicity(
        cpu_load in 1.0f64..20.0,
        link_load in 0.0f64..20.0,
        r1 in 0.1f64..2.0,
        extra in 0.1f64..2.0,
    ) {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(1000.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(1000.0));
        nb.add_link("ab", a, b, 1000.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let mut load = sparcle_model::LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(cpu_load));
        load.add_tt_load(LinkId::new(0), link_load);
        let model = EnergyModel::default();
        let e1 = model.evaluate(&net, &caps, &load, r1);
        let e2 = model.evaluate(&net, &caps, &load, r1 + extra);
        prop_assert!(e2.cpu_watts + e2.radio_watts >= e1.cpu_watts + e1.radio_watts - 1e-12);
        // Both operating points are far from CPU saturation here, so
        // efficiency (units/J) is rate-invariant.
        let u2 = (r1 + extra) * cpu_load / 1000.0;
        if u2 < 1.0 && e1.units_per_joule > 0.0 {
            prop_assert!(
                (e1.units_per_joule - e2.units_per_joule).abs() / e1.units_per_joule < 1e-9
            );
        }
    }
}
