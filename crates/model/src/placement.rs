//! Task assignment paths: mapping CTs to NCPs and TTs to link routes.
//!
//! One complete mapping of an application's tasks onto a network is what
//! the paper calls a *task assignment path* (§III-B, Figure 2). A
//! [`Placement`] stores the decision variables `y_{i,j}`: each CT's host
//! NCP and each TT's route (an ordered list of links between the hosts of
//! its endpoint CTs — empty when both endpoints share a host).
//!
//! A placement knows how to derive its per-element load vector `R`
//! ([`Placement::load_map`]), its bottleneck processing rate under a given
//! [`CapacityMap`], the set of elements it depends on (for availability
//! analysis), and how to validate itself against constraints (1b)–(1c).

use crate::capacity::{CapacityMap, LoadMap};
use crate::error::{ModelError, RouteError};
use crate::ids::{CtId, LinkId, NcpId, NetworkElement, TtId};
use crate::network::Network;
use crate::taskgraph::TaskGraph;
use std::collections::BTreeSet;

/// An ordered sequence of links carrying one TT between two hosts.
///
/// An empty route means the TT's endpoints are co-located and the
/// transport is a free local handoff.
pub type Route = Vec<LinkId>;

/// One task assignment path: hosts for every CT and routes for every TT.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    ct_hosts: Vec<Option<NcpId>>,
    tt_routes: Vec<Option<Route>>,
}

impl Placement {
    /// An empty placement shaped for `graph` (no CT hosted, no TT routed).
    pub fn empty(graph: &TaskGraph) -> Self {
        Placement {
            ct_hosts: vec![None; graph.ct_count()],
            tt_routes: vec![None; graph.tt_count()],
        }
    }

    /// Number of CT slots.
    pub fn ct_count(&self) -> usize {
        self.ct_hosts.len()
    }

    /// Number of TT slots.
    pub fn tt_count(&self) -> usize {
        self.tt_routes.len()
    }

    /// Host of a CT, if placed.
    ///
    /// # Panics
    ///
    /// Panics if `ct` is out of range.
    pub fn ct_host(&self, ct: CtId) -> Option<NcpId> {
        self.ct_hosts[ct.index()]
    }

    /// Route of a TT, if routed. `Some(&[])` means co-located endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `tt` is out of range.
    pub fn tt_route(&self, tt: TtId) -> Option<&[LinkId]> {
        self.tt_routes[tt.index()].as_deref()
    }

    /// Places a CT on a host (`y_{i,j} = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `ct` is out of range.
    pub fn place_ct(&mut self, ct: CtId, host: NcpId) {
        self.ct_hosts[ct.index()] = Some(host);
    }

    /// Routes a TT over a sequence of links.
    ///
    /// # Panics
    ///
    /// Panics if `tt` is out of range.
    pub fn route_tt(&mut self, tt: TtId, route: Route) {
        self.tt_routes[tt.index()] = Some(route);
    }

    /// Returns `true` once every CT is hosted and every TT routed.
    pub fn is_complete(&self) -> bool {
        self.ct_hosts.iter().all(Option::is_some) && self.tt_routes.iter().all(Option::is_some)
    }

    /// Iterates over `(ct, host)` pairs for all placed CTs.
    pub fn placed_cts(&self) -> impl Iterator<Item = (CtId, NcpId)> + '_ {
        self.ct_hosts
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|h| (CtId::new(i as u32), h)))
    }

    /// Iterates over `(tt, route)` pairs for all routed TTs.
    pub fn routed_tts(&self) -> impl Iterator<Item = (TtId, &[LinkId])> + '_ {
        self.tt_routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|r| (TtId::new(i as u32), r)))
    }

    /// Derives the per-element, per-data-unit load vector `R` of this
    /// placement: each placed CT adds its requirement to its host NCP,
    /// each routed TT adds its bits to *every* link of its route
    /// (constraint (1c) places a TT on all links of the selected path).
    ///
    /// Unplaced tasks contribute nothing, so partial placements can be
    /// scored incrementally.
    pub fn load_map(&self, graph: &TaskGraph, network: &Network) -> LoadMap {
        let mut load = LoadMap::zeroed(network);
        for (ct, host) in self.placed_cts() {
            load.add_ct_load(host, graph.ct(ct).requirement());
        }
        for (tt, route) in self.routed_tts() {
            let bits = graph.tt(tt).bits_per_unit();
            for &link in route {
                load.add_tt_load(link, bits);
            }
        }
        load
    }

    /// Maximum stable processing rate of this placement under the given
    /// capacities — the objective (1a):
    /// `min over elements, kinds of C_j^(r) / Σ_i y_{i,j} a_i^(r)`.
    ///
    /// Returns `f64::INFINITY` when nothing loaded constrains the rate.
    pub fn bottleneck_rate(
        &self,
        graph: &TaskGraph,
        network: &Network,
        capacities: &CapacityMap,
    ) -> f64 {
        capacities.bottleneck_rate(&self.load_map(graph, network))
    }

    /// The distinct network elements this placement depends on: host NCPs,
    /// route links, and the interior NCPs of every route. Failure of any
    /// of these breaks the path, so this set drives availability analysis
    /// (§IV-C: availability of one path is `Π (1 − Pf_j)` over used
    /// elements).
    pub fn elements_used(&self, network: &Network) -> BTreeSet<NetworkElement> {
        let mut used = BTreeSet::new();
        for (_, host) in self.placed_cts() {
            used.insert(NetworkElement::Ncp(host));
        }
        for (_, route) in self.routed_tts() {
            for &link in route {
                used.insert(NetworkElement::Link(link));
                let l = network.link(link);
                used.insert(NetworkElement::Ncp(l.a()));
                used.insert(NetworkElement::Ncp(l.b()));
            }
        }
        used
    }

    /// Validates this placement against the paper's constraints:
    ///
    /// * (1b) every CT is assigned exactly one host;
    /// * (1c) every TT is routed on a simple link path connecting the
    ///   hosts of its endpoint CTs (empty iff co-located), traversing
    ///   directed links only forward.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ModelError`].
    pub fn validate(&self, graph: &TaskGraph, network: &Network) -> Result<(), ModelError> {
        for ct in graph.ct_ids() {
            match self.ct_hosts[ct.index()] {
                None => return Err(ModelError::UnplacedCt(ct)),
                Some(h) if h.index() >= network.ncp_count() => {
                    return Err(ModelError::UnknownNcp(h));
                }
                Some(_) => {}
            }
        }
        for tt in graph.tt_ids() {
            let t = graph.tt(tt);
            let from_host = self.ct_hosts[t.from().index()].expect("checked above");
            let to_host = self.ct_hosts[t.to().index()].expect("checked above");
            let route = match &self.tt_routes[tt.index()] {
                None => return Err(ModelError::UnroutedTt(tt)),
                Some(r) => r,
            };
            self.validate_route(tt, route, from_host, to_host, network)?;
        }
        Ok(())
    }

    fn validate_route(
        &self,
        tt: TtId,
        route: &[LinkId],
        from_host: NcpId,
        to_host: NcpId,
        network: &Network,
    ) -> Result<(), ModelError> {
        let broken = |reason| ModelError::BrokenRoute { tt, reason };
        if from_host == to_host {
            return if route.is_empty() {
                Ok(())
            } else {
                Err(broken(RouteError::NonEmptyLocal))
            };
        }
        if route.is_empty() {
            return Err(ModelError::UnroutedTt(tt));
        }
        let mut seen = BTreeSet::new();
        let mut at = from_host;
        for (i, &link) in route.iter().enumerate() {
            if link.index() >= network.link_count() {
                return Err(ModelError::UnknownLink(link));
            }
            if !seen.insert(link) {
                return Err(broken(RouteError::RepeatedLink));
            }
            let l = network.link(link);
            match l.traverse_from(at) {
                Some(next) => at = next,
                None => {
                    // Distinguish a wrong-direction traversal from a
                    // discontinuity for better diagnostics.
                    let incident = l.a() == at || l.b() == at;
                    return Err(broken(if incident {
                        RouteError::WrongDirection
                    } else if i == 0 {
                        RouteError::BadStart
                    } else {
                        RouteError::Discontinuous
                    }));
                }
            }
        }
        if at != to_host {
            return Err(broken(RouteError::BadEnd));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::resources::{ResourceKind, ResourceVec};
    use crate::taskgraph::TaskGraphBuilder;

    /// Linear app a -> b on a 3-node chain x - y - z.
    fn fixture() -> (TaskGraph, Network) {
        let mut tb = TaskGraphBuilder::new();
        let a = tb.add_ct("a", ResourceVec::cpu(2.0));
        let b = tb.add_ct("b", ResourceVec::cpu(4.0));
        tb.add_tt("ab", a, b, 8.0).unwrap();
        let graph = tb.build().unwrap();

        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu(10.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(20.0));
        let z = nb.add_ncp("z", ResourceVec::cpu(40.0));
        nb.add_link("xy", x, y, 16.0).unwrap();
        nb.add_link("yz", y, z, 32.0).unwrap();
        let network = nb.build().unwrap();
        (graph, network)
    }

    #[test]
    fn complete_placement_validates_and_scores() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(0));
        p.place_ct(CtId::new(1), NcpId::new(2));
        p.route_tt(TtId::new(0), vec![LinkId::new(0), LinkId::new(1)]);
        assert!(p.is_complete());
        p.validate(&graph, &network).unwrap();

        let cap = network.capacity_map();
        // x: 10/2 = 5; z: 40/4 = 10; L0: 16/8 = 2 <- bottleneck; L1: 32/8 = 4.
        assert_eq!(p.bottleneck_rate(&graph, &network, &cap), 2.0);

        let used = p.elements_used(&network);
        // Hosts x,z + links L0,L1 + interior y.
        assert_eq!(used.len(), 5);
        assert!(used.contains(&NetworkElement::Ncp(NcpId::new(1))));
    }

    #[test]
    fn colocated_placement_needs_no_route() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(1));
        p.place_ct(CtId::new(1), NcpId::new(1));
        p.route_tt(TtId::new(0), vec![]);
        p.validate(&graph, &network).unwrap();
        let cap = network.capacity_map();
        // y hosts both: 20/(2+4) = 3.333...
        let r = p.bottleneck_rate(&graph, &network, &cap);
        assert!((r - 20.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.elements_used(&network).len(), 1);
    }

    #[test]
    fn missing_host_is_rejected() {
        let (graph, network) = fixture();
        let p = Placement::empty(&graph);
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::UnplacedCt(_))
        ));
    }

    #[test]
    fn missing_route_is_rejected() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(0));
        p.place_ct(CtId::new(1), NcpId::new(1));
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::UnroutedTt(_))
        ));
        // An empty route between distinct hosts is equally unrouted.
        p.route_tt(TtId::new(0), vec![]);
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::UnroutedTt(_))
        ));
    }

    #[test]
    fn broken_routes_are_diagnosed() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(0));
        p.place_ct(CtId::new(1), NcpId::new(2));

        // Starts at the wrong end.
        p.route_tt(TtId::new(0), vec![LinkId::new(1), LinkId::new(0)]);
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::BrokenRoute {
                reason: RouteError::BadStart,
                ..
            })
        ));

        // Stops short of the destination.
        p.route_tt(TtId::new(0), vec![LinkId::new(0)]);
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::BrokenRoute {
                reason: RouteError::BadEnd,
                ..
            })
        ));

        // Repeats a link.
        p.route_tt(
            TtId::new(0),
            vec![LinkId::new(0), LinkId::new(0), LinkId::new(1)],
        );
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::BrokenRoute {
                reason: RouteError::RepeatedLink,
                ..
            })
        ));

        // Non-empty route between co-located endpoints.
        p.place_ct(CtId::new(1), NcpId::new(0));
        p.route_tt(TtId::new(0), vec![LinkId::new(0)]);
        assert!(matches!(
            p.validate(&graph, &network),
            Err(ModelError::BrokenRoute {
                reason: RouteError::NonEmptyLocal,
                ..
            })
        ));
    }

    #[test]
    fn load_map_places_tt_on_every_route_link() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(0));
        p.place_ct(CtId::new(1), NcpId::new(2));
        p.route_tt(TtId::new(0), vec![LinkId::new(0), LinkId::new(1)]);
        let load = p.load_map(&graph, &network);
        assert_eq!(load.link(LinkId::new(0)), 8.0);
        assert_eq!(load.link(LinkId::new(1)), 8.0);
        assert_eq!(load.ncp(NcpId::new(0)).amount(ResourceKind::Cpu), 2.0);
        assert_eq!(load.ncp(NcpId::new(2)).amount(ResourceKind::Cpu), 4.0);
        assert!(load.ncp(NcpId::new(1)).is_zero());
    }

    #[test]
    fn partial_placement_scores_incrementally() {
        let (graph, network) = fixture();
        let mut p = Placement::empty(&graph);
        p.place_ct(CtId::new(0), NcpId::new(0));
        let cap = network.capacity_map();
        assert_eq!(p.bottleneck_rate(&graph, &network, &cap), 5.0);
    }
}
