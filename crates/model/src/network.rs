//! Dispersed computing network model.
//!
//! A computing network (§III-B of the paper) is a graph whose vertices are
//! *networked computing points* (NCPs, [`Ncp`]) carrying per-resource
//! computation capacities `C_j^(r)`, and whose edges are communication
//! [`Link`]s carrying a bandwidth capacity `C_j^(b)`. Every element may
//! fail independently with a failure probability `Pf_j`, which drives the
//! availability analysis of §IV-C/D.
//!
//! Links are *undirected by default* (bandwidth shared between both
//! directions, the common wireless case in the paper's footnote 2); build
//! a directed network by adding one [`LinkDirection::Directed`] link per
//! direction.
//!
//! # Examples
//!
//! A three-node chain:
//!
//! ```
//! # use sparcle_model::{NetworkBuilder, ResourceVec};
//! # fn main() -> Result<(), sparcle_model::ModelError> {
//! let mut b = NetworkBuilder::new();
//! let a = b.add_ncp("edge-a", ResourceVec::cpu(3000.0));
//! let m = b.add_ncp("mid", ResourceVec::cpu(2000.0));
//! let c = b.add_ncp("cloud", ResourceVec::cpu(16_000.0));
//! b.add_link("a-m", a, m, 10e6)?;
//! b.add_link("m-c", m, c, 100e6)?;
//! let net = b.build()?;
//! assert_eq!(net.ncp_count(), 3);
//! assert_eq!(net.neighbors(m).count(), 2);
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, OnceLock};

use crate::csr::{next_generation, CsrNetwork};
use crate::error::ModelError;
use crate::ids::{LinkId, NcpId, NetworkElement};
use crate::resources::ResourceVec;

/// Whether a link's bandwidth is shared between both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkDirection {
    /// Bandwidth is shared between both directions (undirected edge).
    #[default]
    Undirected,
    /// Bandwidth applies only from `a` to `b`.
    Directed,
}

/// A networked computing point: one vertex of the computing network.
#[derive(Debug, Clone, PartialEq)]
pub struct Ncp {
    name: String,
    capacity: ResourceVec,
    failure_probability: f64,
}

impl Ncp {
    /// Human-readable node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computation capacities `C_j^(r)` per resource type.
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Independent failure probability `Pf_j` of this node.
    pub fn failure_probability(&self) -> f64 {
        self.failure_probability
    }
}

/// A communication link: one edge of the computing network.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    name: String,
    a: NcpId,
    b: NcpId,
    bandwidth: f64,
    direction: LinkDirection,
    failure_probability: f64,
}

impl Link {
    /// Human-readable link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One endpoint (the tail, for directed links).
    pub fn a(&self) -> NcpId {
        self.a
    }

    /// The other endpoint (the head, for directed links).
    pub fn b(&self) -> NcpId {
        self.b
    }

    /// Bandwidth capacity `C_j^(b)` in bits per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Whether bandwidth is shared between directions.
    pub fn direction(&self) -> LinkDirection {
        self.direction
    }

    /// Independent failure probability `Pf_j` of this link.
    pub fn failure_probability(&self) -> f64 {
        self.failure_probability
    }

    /// The bandwidth capacity as a [`ResourceVec`].
    pub fn capacity(&self) -> ResourceVec {
        ResourceVec::bandwidth(self.bandwidth)
    }

    /// Returns the endpoint opposite `ncp`, honoring directedness when
    /// `respect_direction` traversal is needed (see
    /// [`Network::neighbors`]); returns `None` if `ncp` is not an endpoint
    /// or the link cannot be traversed from `ncp`.
    pub fn traverse_from(&self, ncp: NcpId) -> Option<NcpId> {
        if ncp == self.a {
            Some(self.b)
        } else if ncp == self.b && self.direction == LinkDirection::Undirected {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Incrementally builds a [`Network`].
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    name: String,
    ncps: Vec<Ncp>,
    links: Vec<Link>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a human-readable name for the network.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds an NCP with zero failure probability and returns its id.
    pub fn add_ncp(&mut self, name: impl Into<String>, capacity: ResourceVec) -> NcpId {
        self.add_ncp_with_failure(name, capacity, 0.0)
            .expect("zero failure probability is always valid")
    }

    /// Adds an NCP with the given failure probability.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `failure_probability`
    /// is outside `[0, 1]`.
    pub fn add_ncp_with_failure(
        &mut self,
        name: impl Into<String>,
        capacity: ResourceVec,
        failure_probability: f64,
    ) -> Result<NcpId, ModelError> {
        check_probability(failure_probability)?;
        let id = NcpId::new(self.ncps.len() as u32);
        self.ncps.push(Ncp {
            name: name.into(),
            capacity,
            failure_probability,
        });
        Ok(id)
    }

    /// Adds an undirected link with zero failure probability.
    ///
    /// # Errors
    ///
    /// See [`Self::add_link_full`].
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        a: NcpId,
        b: NcpId,
        bandwidth: f64,
    ) -> Result<LinkId, ModelError> {
        self.add_link_full(name, a, b, bandwidth, LinkDirection::Undirected, 0.0)
    }

    /// Adds a link with full control over direction and failure
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNcp`] for dangling endpoints,
    /// [`ModelError::SelfLink`] if `a == b`,
    /// [`ModelError::InvalidQuantity`] for a negative/non-finite
    /// bandwidth, and [`ModelError::InvalidProbability`] for a failure
    /// probability outside `[0, 1]`.
    pub fn add_link_full(
        &mut self,
        name: impl Into<String>,
        a: NcpId,
        b: NcpId,
        bandwidth: f64,
        direction: LinkDirection,
        failure_probability: f64,
    ) -> Result<LinkId, ModelError> {
        if a.index() >= self.ncps.len() {
            return Err(ModelError::UnknownNcp(a));
        }
        if b.index() >= self.ncps.len() {
            return Err(ModelError::UnknownNcp(b));
        }
        if a == b {
            return Err(ModelError::SelfLink(a));
        }
        if !bandwidth.is_finite() || bandwidth < 0.0 {
            return Err(ModelError::InvalidQuantity {
                what: "link bandwidth",
                value: bandwidth,
            });
        }
        check_probability(failure_probability)?;
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            a,
            b,
            bandwidth,
            direction,
            failure_probability,
        });
        Ok(id)
    }

    /// Validates and produces an immutable [`Network`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyNetwork`] when no NCP was added.
    pub fn build(self) -> Result<Network, ModelError> {
        if self.ncps.is_empty() {
            return Err(ModelError::EmptyNetwork);
        }
        let mut adjacency = vec![Vec::new(); self.ncps.len()];
        for (idx, link) in self.links.iter().enumerate() {
            let id = LinkId::new(idx as u32);
            adjacency[link.a.index()].push((id, link.b));
            if link.direction == LinkDirection::Undirected {
                adjacency[link.b.index()].push((id, link.a));
            }
        }
        Ok(Network {
            name: self.name,
            ncps: self.ncps,
            links: self.links,
            adjacency,
            generation: next_generation(),
            csr: OnceLock::new(),
        })
    }
}

/// An immutable dispersed computing network of NCPs and links.
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    ncps: Vec<Ncp>,
    links: Vec<Link>,
    /// For each NCP, the `(link, neighbor)` pairs traversable *from* it.
    adjacency: Vec<Vec<(LinkId, NcpId)>>,
    /// Process-unique build stamp; see [`crate::csr`] module docs.
    generation: u64,
    /// Lazily-built flat CSR view, shared across clones.
    csr: OnceLock<Arc<CsrNetwork>>,
}

/// Equality is structural: two networks with the same elements and
/// wiring are equal regardless of when they were built (the generation
/// stamp and the lazy CSR cell are deliberately ignored — separately
/// built but identical topologies must compare equal, e.g. for seeded
/// scenario determinism checks).
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.ncps == other.ncps
            && self.links == other.links
            && self.adjacency == other.adjacency
    }
}

impl Network {
    /// The network's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NCPs.
    pub fn ncp_count(&self) -> usize {
        self.ncps.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the NCP with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn ncp(&self, id: NcpId) -> &Ncp {
        &self.ncps[id.index()]
    }

    /// Returns the link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all NCP ids in index order.
    pub fn ncp_ids(&self) -> impl Iterator<Item = NcpId> + '_ {
        (0..self.ncps.len() as u32).map(NcpId::new)
    }

    /// Iterates over all link ids in index order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId::new)
    }

    /// Iterates over all elements: NCPs first, then links.
    pub fn elements(&self) -> impl Iterator<Item = NetworkElement> + '_ {
        self.ncp_ids()
            .map(NetworkElement::Ncp)
            .chain(self.link_ids().map(NetworkElement::Link))
    }

    /// `(link, neighbor)` pairs traversable from `ncp`, honoring link
    /// direction.
    pub fn neighbors(&self, ncp: NcpId) -> impl Iterator<Item = (LinkId, NcpId)> + '_ {
        self.adjacency[ncp.index()].iter().copied()
    }

    /// Capacity vector of an arbitrary element (bandwidth for links).
    pub fn element_capacity(&self, element: NetworkElement) -> ResourceVec {
        match element {
            NetworkElement::Ncp(id) => self.ncp(id).capacity().clone(),
            NetworkElement::Link(id) => self.link(id).capacity(),
        }
    }

    /// Failure probability of an arbitrary element.
    pub fn element_failure_probability(&self, element: NetworkElement) -> f64 {
        match element {
            NetworkElement::Ncp(id) => self.ncp(id).failure_probability(),
            NetworkElement::Link(id) => self.link(id).failure_probability(),
        }
    }

    /// Returns `true` if the network is connected when traversing links in
    /// their permitted directions from `from`.
    pub fn all_reachable_from(&self, from: NcpId) -> bool {
        let mut seen = vec![false; self.ncps.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (_, v) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.ncps.len()
    }

    /// Snapshot of all capacities, indexed by element — the paper's vector
    /// `C`. This is the starting point for residual-capacity bookkeeping
    /// (see [`crate::capacity::CapacityMap`]).
    pub fn capacity_map(&self) -> crate::capacity::CapacityMap {
        crate::capacity::CapacityMap::full(self)
    }

    /// Process-unique build stamp of this topology instance (clones
    /// share it; separately-built networks never do). Dense-id keyed
    /// caches use it to refuse rows from a different topology — see the
    /// [`crate::csr`] module docs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The flat CSR view of this network, built lazily on first use and
    /// shared (behind an `Arc`) across clones made after that point.
    pub fn csr(&self) -> &Arc<CsrNetwork> {
        self.csr.get_or_init(|| Arc::new(CsrNetwork::build(self)))
    }
}

fn check_probability(p: f64) -> Result<(), ModelError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ModelError::InvalidProbability(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(10.0));
        let y = b.add_ncp("y", ResourceVec::cpu(20.0));
        let z = b.add_ncp("z", ResourceVec::cpu(30.0));
        b.add_link("xy", x, y, 100.0).unwrap();
        b.add_link("yz", y, z, 200.0).unwrap();
        b.add_link("zx", z, x, 300.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_triangle() {
        let net = triangle();
        assert_eq!(net.ncp_count(), 3);
        assert_eq!(net.link_count(), 3);
        assert_eq!(net.neighbors(NcpId::new(0)).count(), 2);
        assert!(net.all_reachable_from(NcpId::new(0)));
    }

    #[test]
    fn rejects_empty_network() {
        assert!(matches!(
            NetworkBuilder::new().build(),
            Err(ModelError::EmptyNetwork)
        ));
    }

    #[test]
    fn rejects_self_link() {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::new());
        assert!(matches!(
            b.add_link("xx", x, x, 1.0),
            Err(ModelError::SelfLink(_))
        ));
    }

    #[test]
    fn rejects_dangling_link() {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::new());
        assert!(matches!(
            b.add_link("bad", x, NcpId::new(5), 1.0),
            Err(ModelError::UnknownNcp(_))
        ));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = NetworkBuilder::new();
        assert!(matches!(
            b.add_ncp_with_failure("x", ResourceVec::new(), 1.5),
            Err(ModelError::InvalidProbability(_))
        ));
    }

    #[test]
    fn directed_link_traverses_one_way() {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::new());
        let y = b.add_ncp("y", ResourceVec::new());
        b.add_link_full("xy", x, y, 1.0, LinkDirection::Directed, 0.0)
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.neighbors(x).count(), 1);
        assert_eq!(net.neighbors(y).count(), 0);
        assert!(net.all_reachable_from(x));
        assert!(!net.all_reachable_from(y));
    }

    #[test]
    fn element_capacity_and_failure() {
        let mut b = NetworkBuilder::new();
        let x = b
            .add_ncp_with_failure("x", ResourceVec::cpu(5.0), 0.1)
            .unwrap();
        let y = b.add_ncp("y", ResourceVec::new());
        let l = b
            .add_link_full("xy", x, y, 7.0, LinkDirection::Undirected, 0.02)
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            net.element_capacity(NetworkElement::Ncp(x))
                .amount(ResourceKind::Cpu),
            5.0
        );
        assert_eq!(
            net.element_capacity(NetworkElement::Link(l))
                .amount(ResourceKind::Bandwidth),
            7.0
        );
        assert_eq!(net.element_failure_probability(NetworkElement::Ncp(x)), 0.1);
        assert_eq!(
            net.element_failure_probability(NetworkElement::Link(l)),
            0.02
        );
    }

    #[test]
    fn elements_enumerate_ncps_then_links() {
        let net = triangle();
        let elems: Vec<_> = net.elements().collect();
        assert_eq!(elems.len(), 6);
        assert!(elems[0].is_ncp());
        assert!(elems[5].is_link());
    }
}
