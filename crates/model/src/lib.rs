//! Data models for SPARCLE: stream processing applications, dispersed
//! computing networks, and task assignment paths.
//!
//! This crate is the foundation of the SPARCLE workspace (a reproduction
//! of *SPARCLE: Stream Processing Applications over Dispersed Computing
//! Networks*, ICDCS 2020). It defines:
//!
//! * [`TaskGraph`] — an application DAG of computation tasks (CTs) and
//!   transport tasks (TTs), each with per-data-unit resource requirements;
//! * [`Network`] — a graph of networked computing points (NCPs) and
//!   links, each with capacities and failure probabilities;
//! * [`Placement`] — one *task assignment path*: CT → NCP hosts and
//!   TT → link routes, with bottleneck-rate scoring and validation;
//! * [`CapacityMap`] / [`LoadMap`] — the capacity vector `C` and load
//!   vector `R` of the paper's rate constraint `R x ≤ C`;
//! * [`Application`] — a task graph plus QoE class (Best-Effort or
//!   Guaranteed-Rate) and source/sink pinning.
//!
//! # Examples
//!
//! Score a hand-made placement of a two-stage pipeline on a two-node
//! network:
//!
//! ```
//! use sparcle_model::{
//!     NetworkBuilder, Placement, ResourceVec, TaskGraphBuilder,
//! };
//!
//! # fn main() -> Result<(), sparcle_model::ModelError> {
//! let mut tb = TaskGraphBuilder::new();
//! let src = tb.add_ct("source", ResourceVec::new());
//! let work = tb.add_ct("work", ResourceVec::cpu(50.0));
//! tb.add_tt("feed", src, work, 100.0)?;
//! let graph = tb.build()?;
//!
//! let mut nb = NetworkBuilder::new();
//! let sensor = nb.add_ncp("sensor", ResourceVec::cpu(10.0));
//! let server = nb.add_ncp("server", ResourceVec::cpu(1000.0));
//! let uplink = nb.add_link("uplink", sensor, server, 400.0)?;
//! let network = nb.build()?;
//!
//! let mut placement = Placement::empty(&graph);
//! placement.place_ct(src, sensor);
//! placement.place_ct(work, server);
//! placement.route_tt(graph.tt_ids().next().unwrap(), vec![uplink]);
//! placement.validate(&graph, &network)?;
//!
//! let rate = placement.bottleneck_rate(&graph, &network, &network.capacity_map());
//! assert_eq!(rate, 4.0); // uplink: 400 bits/s ÷ 100 bits/unit
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod capacity;
pub mod csr;
pub mod dot;
pub mod error;
pub mod ids;
pub mod network;
pub mod placement;
pub mod resources;
pub mod taskgraph;

pub use app::{Application, QoeClass};
pub use capacity::{CapacityMap, LoadMap};
pub use csr::{CsrNetwork, GraphRepr};
pub use error::{ModelError, RouteError};
pub use ids::{AppId, CtId, LinkId, NcpId, NetworkElement, TtId};
pub use network::{Link, LinkDirection, Ncp, Network, NetworkBuilder};
pub use placement::{Placement, Route};
pub use resources::{ResourceKind, ResourceVec};
pub use taskgraph::{
    ComputationTask, ReachablePlacedCt, TaskGraph, TaskGraphBuilder, TransportTask,
};
