//! Stream processing applications and their QoE requirements.
//!
//! The paper distinguishes two application classes (§III-A):
//!
//! * **Best-Effort (BE)** — no minimum rate; higher rate ⇒ higher QoE.
//!   Each carries a priority `P_j` used by the weighted proportional-fair
//!   allocation (problem (4)) and optionally an availability target (the
//!   probability that at least one task assignment path is working).
//! * **Guaranteed-Rate (GR)** — a minimum processing rate that must hold
//!   for a target fraction of time (*min-rate availability*, problem (5)).
//!
//! An [`Application`] couples a [`TaskGraph`] with a [`QoeClass`] and the
//! *pinning* of its data-source and result-consumer CTs to physical NCPs
//! (Algorithm 2 lines 3–4 place source/sink CTs on their predetermined
//! hosts before anything else).

use crate::error::ModelError;
use crate::ids::{CtId, NcpId};
use crate::network::Network;
use crate::taskgraph::TaskGraph;
use std::collections::BTreeMap;

/// QoE class of an application: Best-Effort or Guaranteed-Rate.
#[derive(Debug, Clone, PartialEq)]
pub enum QoeClass {
    /// Best-Effort: maximize rate, weighted by `priority`; optionally
    /// require that at least one path works with probability
    /// `availability`.
    BestEffort {
        /// Relative importance `P_j` among BE applications (must be
        /// positive).
        priority: f64,
        /// Optional availability target in `[0, 1]`.
        availability: Option<f64>,
    },
    /// Guaranteed-Rate: `min_rate` data units/s must be sustained for at
    /// least a `min_rate_availability` fraction of time.
    GuaranteedRate {
        /// Required processing rate `R_J` in data units per second.
        min_rate: f64,
        /// Required min-rate availability `A_J` in `[0, 1]`.
        min_rate_availability: f64,
    },
}

impl QoeClass {
    /// A Best-Effort class with the given priority and no availability
    /// target.
    pub fn best_effort(priority: f64) -> Self {
        QoeClass::BestEffort {
            priority,
            availability: None,
        }
    }

    /// A Guaranteed-Rate class.
    pub fn guaranteed_rate(min_rate: f64, min_rate_availability: f64) -> Self {
        QoeClass::GuaranteedRate {
            min_rate,
            min_rate_availability,
        }
    }

    /// Returns `true` for Best-Effort applications.
    pub fn is_best_effort(&self) -> bool {
        matches!(self, QoeClass::BestEffort { .. })
    }

    /// The BE priority, or `None` for GR applications.
    pub fn priority(&self) -> Option<f64> {
        match self {
            QoeClass::BestEffort { priority, .. } => Some(*priority),
            QoeClass::GuaranteedRate { .. } => None,
        }
    }

    fn validate(&self) -> Result<(), ModelError> {
        match *self {
            QoeClass::BestEffort {
                priority,
                availability,
            } => {
                if !priority.is_finite() || priority <= 0.0 {
                    return Err(ModelError::InvalidQuantity {
                        what: "BE priority",
                        value: priority,
                    });
                }
                if let Some(a) = availability {
                    if !a.is_finite() || !(0.0..=1.0).contains(&a) {
                        return Err(ModelError::InvalidProbability(a));
                    }
                }
            }
            QoeClass::GuaranteedRate {
                min_rate,
                min_rate_availability,
            } => {
                if !min_rate.is_finite() || min_rate <= 0.0 {
                    return Err(ModelError::InvalidQuantity {
                        what: "GR minimum rate",
                        value: min_rate,
                    });
                }
                if !min_rate_availability.is_finite()
                    || !(0.0..=1.0).contains(&min_rate_availability)
                {
                    return Err(ModelError::InvalidProbability(min_rate_availability));
                }
            }
        }
        Ok(())
    }
}

/// A stream processing application: task graph + QoE + endpoint pinning.
///
/// # Examples
///
/// ```
/// # use sparcle_model::{Application, QoeClass, TaskGraphBuilder, ResourceVec, NcpId};
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut b = TaskGraphBuilder::new();
/// let src = b.add_ct("source", ResourceVec::new());
/// let work = b.add_ct("work", ResourceVec::cpu(100.0));
/// let sink = b.add_ct("sink", ResourceVec::new());
/// b.add_tt("in", src, work, 1e6)?;
/// b.add_tt("out", work, sink, 1e4)?;
/// let graph = b.build()?;
/// let app = Application::new(
///     graph,
///     QoeClass::best_effort(1.0),
///     [(src, NcpId::new(0)), (sink, NcpId::new(2))],
/// )?;
/// assert!(app.qoe().is_best_effort());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    graph: TaskGraph,
    qoe: QoeClass,
    pinned: BTreeMap<CtId, NcpId>,
}

impl Application {
    /// Creates an application.
    ///
    /// `pinned` must cover every source and sink CT of the graph (data
    /// sources and result consumers have predetermined hosts); it may also
    /// pin interior CTs (e.g. a task requiring a GPU present only on one
    /// NCP).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnpinnedEndpoint`] if a source or sink is not
    /// pinned, [`ModelError::UnknownCt`] if a pinned CT is outside the
    /// graph, or an invalid-quantity/probability error for a malformed
    /// [`QoeClass`].
    pub fn new(
        graph: TaskGraph,
        qoe: QoeClass,
        pinned: impl IntoIterator<Item = (CtId, NcpId)>,
    ) -> Result<Self, ModelError> {
        qoe.validate()?;
        let pinned: BTreeMap<CtId, NcpId> = pinned.into_iter().collect();
        for &ct in pinned.keys() {
            if ct.index() >= graph.ct_count() {
                return Err(ModelError::UnknownCt(ct));
            }
        }
        for &ct in graph.sources().iter().chain(graph.sinks()) {
            if !pinned.contains_key(&ct) {
                return Err(ModelError::UnpinnedEndpoint(ct));
            }
        }
        Ok(Application { graph, qoe, pinned })
    }

    /// The application's task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The application's QoE class.
    pub fn qoe(&self) -> &QoeClass {
        &self.qoe
    }

    /// The pinned `CT → NCP` assignments.
    pub fn pinned(&self) -> &BTreeMap<CtId, NcpId> {
        &self.pinned
    }

    /// The pinned host of `ct`, if any.
    pub fn pinned_host(&self, ct: CtId) -> Option<NcpId> {
        self.pinned.get(&ct).copied()
    }

    /// Checks that every pinned host exists in `network`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PinnedHostOutOfRange`] for a pin referencing
    /// an NCP beyond the network.
    pub fn check_against_network(&self, network: &Network) -> Result<(), ModelError> {
        for (&ct, &ncp) in &self.pinned {
            if ncp.index() >= network.ncp_count() {
                return Err(ModelError::PinnedHostOutOfRange { ct, ncp });
            }
        }
        Ok(())
    }

    /// Replaces the QoE class, revalidating it.
    ///
    /// # Errors
    ///
    /// Same as [`Application::new`] for a malformed class.
    pub fn with_qoe(mut self, qoe: QoeClass) -> Result<Self, ModelError> {
        qoe.validate()?;
        self.qoe = qoe;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVec;
    use crate::taskgraph::TaskGraphBuilder;

    fn graph3() -> (TaskGraph, CtId, CtId, CtId) {
        let mut b = TaskGraphBuilder::new();
        let s = b.add_ct("s", ResourceVec::new());
        let m = b.add_ct("m", ResourceVec::cpu(1.0));
        let t = b.add_ct("t", ResourceVec::new());
        b.add_tt("sm", s, m, 1.0).unwrap();
        b.add_tt("mt", m, t, 1.0).unwrap();
        (b.build().unwrap(), s, m, t)
    }

    #[test]
    fn requires_pinned_endpoints() {
        let (g, s, _, t) = graph3();
        let err = Application::new(g.clone(), QoeClass::best_effort(1.0), [(s, NcpId::new(0))]);
        assert!(matches!(err, Err(ModelError::UnpinnedEndpoint(ct)) if ct == t));
        let ok = Application::new(
            g,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(1))],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn allows_pinning_interior_cts() {
        let (g, s, m, t) = graph3();
        let app = Application::new(
            g,
            QoeClass::best_effort(2.0),
            [(s, NcpId::new(0)), (m, NcpId::new(1)), (t, NcpId::new(2))],
        )
        .unwrap();
        assert_eq!(app.pinned_host(m), Some(NcpId::new(1)));
        assert_eq!(app.qoe().priority(), Some(2.0));
    }

    #[test]
    fn rejects_nonpositive_priority() {
        let (g, s, _, t) = graph3();
        let err = Application::new(
            g,
            QoeClass::best_effort(0.0),
            [(s, NcpId::new(0)), (t, NcpId::new(1))],
        );
        assert!(matches!(err, Err(ModelError::InvalidQuantity { .. })));
    }

    #[test]
    fn rejects_bad_gr_parameters() {
        let (g, s, _, t) = graph3();
        let pins = [(s, NcpId::new(0)), (t, NcpId::new(1))];
        assert!(Application::new(g.clone(), QoeClass::guaranteed_rate(-1.0, 0.9), pins).is_err());
        assert!(Application::new(g, QoeClass::guaranteed_rate(1.0, 1.0001), pins).is_err());
    }

    #[test]
    fn rejects_unknown_pinned_ct() {
        let (g, s, _, t) = graph3();
        let err = Application::new(
            g,
            QoeClass::best_effort(1.0),
            [
                (s, NcpId::new(0)),
                (t, NcpId::new(1)),
                (CtId::new(99), NcpId::new(0)),
            ],
        );
        assert!(matches!(err, Err(ModelError::UnknownCt(_))));
    }

    #[test]
    fn network_check_catches_out_of_range_pin() {
        use crate::network::NetworkBuilder;
        let (g, s, _, t) = graph3();
        let app = Application::new(
            g,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(7))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        nb.add_ncp("only", ResourceVec::cpu(1.0));
        let net = nb.build().unwrap();
        assert!(matches!(
            app.check_against_network(&net),
            Err(ModelError::PinnedHostOutOfRange { .. })
        ));
    }

    #[test]
    fn with_qoe_swaps_class() {
        let (g, s, _, t) = graph3();
        let app = Application::new(
            g,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(1))],
        )
        .unwrap();
        let app = app.with_qoe(QoeClass::guaranteed_rate(2.5, 0.9)).unwrap();
        assert!(!app.qoe().is_best_effort());
    }
}
