//! Flat CSR (compressed sparse row) view of a [`Network`].
//!
//! The pointer-chasing `Vec<Vec<(LinkId, NcpId)>>` adjacency inside
//! [`Network`] is convenient to build but hostile to the placement
//! engine's hot loop: every γ-row fill walks the whole graph once per
//! placed reachable CT, and at thousands of NCPs the nested-`Vec`
//! layout turns each neighbor scan into a cache miss per node.
//! [`CsrNetwork`] stores the same arcs as three flat arrays per
//! direction (`row_ptr`, `col_idx`, `arc_link`) plus SoA copies of the
//! static per-element attributes, so a widest-path sweep streams
//! linearly through memory.
//!
//! ## Ordering contract
//!
//! The CSR arc order is **exactly** the legacy traversal order — this
//! is load-bearing, not cosmetic. Widest-path parents update only on
//! *strict* width improvement, so among equal-width alternatives the
//! iteration order decides the witness route, and routes are part of
//! placement equality. Concretely:
//!
//! * forward arcs of node `u` appear in the order
//!   [`Network::neighbors`] yields them (links in insertion order);
//! * reverse arcs of node `v` appear ordered by (source node
//!   ascending, then that source's forward-arc order) — the order
//!   `ReverseAdjacency::new` in `sparcle-core` pushes them.
//!
//! `tests/csr_equivalence.rs` holds the two representations to
//! byte-identical placements, rates, and telemetry on the strength of
//! this contract.
//!
//! ## Generations
//!
//! Every [`Network`] built by [`crate::NetworkBuilder`] draws a fresh
//! **generation** from a process-global counter, and its CSR view
//! inherits it. Caches keyed on dense element ids (the placement
//! engine's γ rows) stamp the generation they were computed under and
//! refuse to cross generations — two topologies with identical shapes
//! but different capacities would otherwise alias each other's rows
//! (dense ids collide and bitset witness intersection silently
//! truncates on mismatched link counts). Generations order by build
//! sequence, so they must never leak into telemetry events or
//! serialized artifacts compared across runs.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::{LinkId, NcpId};
use crate::network::Network;

static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Draws the next topology generation (process-unique, monotone).
pub(crate) fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Which graph representation the placement engine traverses.
///
/// Both representations hold the same arcs in the same order and
/// produce bit-identical placements, rates, and telemetry (the
/// differential suite `tests/csr_equivalence.rs` enforces this); they
/// differ only in memory layout and therefore speed. The legacy
/// nested-`Vec` walk stays available as the ground truth the flat
/// representation is differenced against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GraphRepr {
    /// The original `Vec<Vec<(LinkId, NcpId)>>` adjacency with the
    /// binary-heap widest-path queue.
    Legacy,
    /// The flat [`CsrNetwork`] arrays with the bucketed widest-path
    /// queue (the default).
    #[default]
    Csr,
}

impl std::fmt::Display for GraphRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphRepr::Legacy => f.write_str("legacy"),
            GraphRepr::Csr => f.write_str("csr"),
        }
    }
}

/// Flat CSR adjacency (forward and reverse) plus SoA attribute arrays
/// for one immutable [`Network`].
///
/// Obtained from [`Network::csr`], which builds it lazily once and
/// shares it behind an `Arc` across engine instances and clones of the
/// network.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrNetwork {
    generation: u64,
    ncp_count: usize,
    link_count: usize,
    /// Forward arcs: node `u`'s arcs live at `row_ptr[u]..row_ptr[u+1]`.
    row_ptr: Vec<u32>,
    /// Head node of each forward arc.
    col_idx: Vec<u32>,
    /// Link carrying each forward arc.
    arc_link: Vec<u32>,
    /// Reverse arcs: arcs *into* node `v` at `rev_row_ptr[v]..`.
    rev_row_ptr: Vec<u32>,
    /// Tail node of each reverse arc.
    rev_col_idx: Vec<u32>,
    /// Link carrying each reverse arc.
    rev_arc_link: Vec<u32>,
    /// Nominal bandwidth per link (dense by `LinkId`).
    link_bandwidth: Vec<f64>,
    /// Failure probability per NCP (dense by `NcpId`).
    ncp_failure: Vec<f64>,
    /// Failure probability per link (dense by `LinkId`).
    link_failure: Vec<f64>,
}

impl CsrNetwork {
    /// Builds the CSR view of `network`, preserving the legacy
    /// traversal order exactly (see the module docs).
    pub fn build(network: &Network) -> Self {
        let n = network.ncp_count();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0u32);
        let mut col_idx = Vec::new();
        let mut arc_link = Vec::new();
        for u in network.ncp_ids() {
            for (link, v) in network.neighbors(u) {
                col_idx.push(v.as_u32());
                arc_link.push(link.as_u32());
            }
            row_ptr.push(col_idx.len() as u32);
        }

        // Counting sort of the forward arcs by head node. Enumerating
        // them in (tail asc, forward order) and appending per head
        // bucket reproduces the reverse-adjacency insertion order.
        let arcs = col_idx.len();
        let mut rev_row_ptr = vec![0u32; n + 1];
        for &v in &col_idx {
            rev_row_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_row_ptr[i + 1] += rev_row_ptr[i];
        }
        let mut cursor: Vec<u32> = rev_row_ptr[..n].to_vec();
        let mut rev_col_idx = vec![0u32; arcs];
        let mut rev_arc_link = vec![0u32; arcs];
        for u in 0..n {
            for a in row_ptr[u] as usize..row_ptr[u + 1] as usize {
                let v = col_idx[a] as usize;
                let slot = cursor[v] as usize;
                rev_col_idx[slot] = u as u32;
                rev_arc_link[slot] = arc_link[a];
                cursor[v] += 1;
            }
        }

        CsrNetwork {
            generation: network.generation(),
            ncp_count: n,
            link_count: network.link_count(),
            row_ptr,
            col_idx,
            arc_link,
            rev_row_ptr,
            rev_col_idx,
            rev_arc_link,
            link_bandwidth: network
                .link_ids()
                .map(|l| network.link(l).bandwidth())
                .collect(),
            ncp_failure: network
                .ncp_ids()
                .map(|p| network.ncp(p).failure_probability())
                .collect(),
            link_failure: network
                .link_ids()
                .map(|l| network.link(l).failure_probability())
                .collect(),
        }
    }

    /// The generation of the [`Network`] this view was built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of NCPs.
    pub fn ncp_count(&self) -> usize {
        self.ncp_count
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Number of directed arcs (undirected links contribute two).
    pub fn arc_count(&self) -> usize {
        self.col_idx.len()
    }

    /// Forward arcs out of `node` as parallel `(heads, links)` slices,
    /// in the legacy [`Network::neighbors`] order.
    #[inline]
    pub fn out_arcs(&self, node: NcpId) -> (&[u32], &[u32]) {
        let lo = self.row_ptr[node.index()] as usize;
        let hi = self.row_ptr[node.index() + 1] as usize;
        (&self.col_idx[lo..hi], &self.arc_link[lo..hi])
    }

    /// Reverse arcs into `node` as parallel `(tails, links)` slices, in
    /// the legacy reverse-adjacency order.
    #[inline]
    pub fn in_arcs(&self, node: NcpId) -> (&[u32], &[u32]) {
        let lo = self.rev_row_ptr[node.index()] as usize;
        let hi = self.rev_row_ptr[node.index() + 1] as usize;
        (&self.rev_col_idx[lo..hi], &self.rev_arc_link[lo..hi])
    }

    /// `(link, neighbor)` pairs traversable from `node` — the CSR
    /// mirror of [`Network::neighbors`], identical order.
    pub fn neighbors(&self, node: NcpId) -> impl Iterator<Item = (LinkId, NcpId)> + '_ {
        let (heads, links) = self.out_arcs(node);
        links
            .iter()
            .zip(heads)
            .map(|(&l, &v)| (LinkId::new(l), NcpId::new(v)))
    }

    /// Nominal bandwidth of `link`.
    #[inline]
    pub fn link_bandwidth(&self, link: LinkId) -> f64 {
        self.link_bandwidth[link.index()]
    }

    /// Failure probability of `ncp`.
    #[inline]
    pub fn ncp_failure(&self, ncp: NcpId) -> f64 {
        self.ncp_failure[ncp.index()]
    }

    /// Failure probability of `link`.
    #[inline]
    pub fn link_failure(&self, link: LinkId) -> f64 {
        self.link_failure[link.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{LinkDirection, NetworkBuilder};
    use crate::resources::ResourceVec;

    fn sample() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(10.0));
        let y = b.add_ncp("y", ResourceVec::cpu(20.0));
        let z = b.add_ncp("z", ResourceVec::cpu(30.0));
        b.add_link("xy", x, y, 100.0).unwrap();
        b.add_link_full("yz", y, z, 200.0, LinkDirection::Directed, 0.25)
            .unwrap();
        b.add_link("zx", z, x, 300.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_arcs_match_legacy_neighbor_order() {
        let net = sample();
        let csr = CsrNetwork::build(&net);
        assert_eq!(csr.ncp_count(), net.ncp_count());
        assert_eq!(csr.link_count(), net.link_count());
        for u in net.ncp_ids() {
            let legacy: Vec<_> = net.neighbors(u).collect();
            let flat: Vec<_> = csr.neighbors(u).collect();
            assert_eq!(legacy, flat, "forward order diverged at {u}");
        }
    }

    #[test]
    fn reverse_arcs_match_reverse_adjacency_order() {
        let net = sample();
        let csr = CsrNetwork::build(&net);
        // Reference: the order ReverseAdjacency::new uses.
        let mut adj: Vec<Vec<(LinkId, NcpId)>> = vec![Vec::new(); net.ncp_count()];
        for u in net.ncp_ids() {
            for (link, v) in net.neighbors(u) {
                adj[v.index()].push((link, u));
            }
        }
        for v in net.ncp_ids() {
            let (tails, links) = csr.in_arcs(v);
            let flat: Vec<_> = links
                .iter()
                .zip(tails)
                .map(|(&l, &u)| (LinkId::new(l), NcpId::new(u)))
                .collect();
            assert_eq!(adj[v.index()], flat, "reverse order diverged at {v}");
        }
    }

    #[test]
    fn soa_attributes_round_trip() {
        let net = sample();
        let csr = CsrNetwork::build(&net);
        for l in net.link_ids() {
            assert_eq!(csr.link_bandwidth(l), net.link(l).bandwidth());
            assert_eq!(csr.link_failure(l), net.link(l).failure_probability());
        }
        for p in net.ncp_ids() {
            assert_eq!(csr.ncp_failure(p), net.ncp(p).failure_probability());
        }
        // Directed yz contributes one arc; the undirected links two.
        assert_eq!(csr.arc_count(), 5);
    }

    #[test]
    fn generations_are_unique_per_build() {
        let a = sample();
        let b = sample();
        assert_ne!(a.generation(), b.generation());
        // Clones share the topology instance, hence the generation.
        assert_eq!(a.clone().generation(), a.generation());
        assert_eq!(a.csr().generation(), a.generation());
    }

    #[test]
    fn csr_view_is_shared_across_clones() {
        let net = sample();
        let csr = std::sync::Arc::clone(net.csr());
        let cloned = net.clone();
        assert!(std::sync::Arc::ptr_eq(&csr, cloned.csr()));
    }

    #[test]
    fn graph_repr_default_and_display() {
        assert_eq!(GraphRepr::default(), GraphRepr::Csr);
        assert_eq!(GraphRepr::Legacy.to_string(), "legacy");
        assert_eq!(GraphRepr::Csr.to_string(), "csr");
    }
}
