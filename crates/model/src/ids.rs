//! Strongly-typed identifiers for tasks, network elements, and applications.
//!
//! Every entity in SPARCLE's models is referred to by a small, `Copy`
//! newtype index ([C-NEWTYPE]): computation tasks ([`CtId`]) and transport
//! tasks ([`TtId`]) inside a task graph, networked computing points
//! ([`NcpId`]) and links ([`LinkId`]) inside a computing network, and
//! applications ([`AppId`]) inside a system-level view.
//!
//! Using distinct types prevents the classic index-confusion bugs that an
//! untyped `usize` invites (e.g. indexing the link table with a CT index).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use sparcle_model::ids::CtId;
            /// let id = CtId::new(3);
            /// assert_eq!(id.index(), 3);
            /// ```
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index, suitable for indexing dense tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a computation task (a vertex of a task graph).
    CtId,
    "CT"
);
define_id!(
    /// Identifier of a transport task (an edge of a task graph).
    TtId,
    "TT"
);
define_id!(
    /// Identifier of a networked computing point (a vertex of the network).
    NcpId,
    "NCP"
);
define_id!(
    /// Identifier of a communication link (an edge of the network).
    LinkId,
    "L"
);
define_id!(
    /// Identifier of a stream processing application managed by the system.
    AppId,
    "App"
);

/// A computing-network element: either an NCP or a link.
///
/// Task assignment places CTs on NCPs and TTs on links; both kinds of
/// element carry capacities, loads, and failure probabilities, and many
/// computations (bottleneck rates, availability) iterate over both
/// uniformly. `NetworkElement` is the common currency for that.
///
/// # Examples
///
/// ```
/// # use sparcle_model::ids::{NcpId, LinkId, NetworkElement};
/// let e = NetworkElement::Ncp(NcpId::new(0));
/// assert!(e.is_ncp());
/// assert_eq!(e.to_string(), "NCP0");
/// let l = NetworkElement::Link(LinkId::new(2));
/// assert!(!l.is_ncp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkElement {
    /// A computing node.
    Ncp(NcpId),
    /// A communication link.
    Link(LinkId),
}

impl NetworkElement {
    /// Returns `true` if this element is an NCP.
    #[inline]
    pub const fn is_ncp(self) -> bool {
        matches!(self, NetworkElement::Ncp(_))
    }

    /// Returns `true` if this element is a link.
    #[inline]
    pub const fn is_link(self) -> bool {
        matches!(self, NetworkElement::Link(_))
    }

    /// Returns the NCP id if this element is an NCP.
    #[inline]
    pub const fn as_ncp(self) -> Option<NcpId> {
        match self {
            NetworkElement::Ncp(id) => Some(id),
            NetworkElement::Link(_) => None,
        }
    }

    /// Returns the link id if this element is a link.
    #[inline]
    pub const fn as_link(self) -> Option<LinkId> {
        match self {
            NetworkElement::Ncp(_) => None,
            NetworkElement::Link(id) => Some(id),
        }
    }
}

impl fmt::Display for NetworkElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkElement::Ncp(id) => write!(f, "{id}"),
            NetworkElement::Link(id) => write!(f, "{id}"),
        }
    }
}

impl From<NcpId> for NetworkElement {
    fn from(id: NcpId) -> Self {
        NetworkElement::Ncp(id)
    }
}

impl From<LinkId> for NetworkElement {
    fn from(id: LinkId) -> Self {
        NetworkElement::Link(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_through_u32() {
        let id = NcpId::new(42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NcpId::from(42u32), id);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(CtId::new(1).to_string(), "CT1");
        assert_eq!(TtId::new(2).to_string(), "TT2");
        assert_eq!(NcpId::new(3).to_string(), "NCP3");
        assert_eq!(LinkId::new(4).to_string(), "L4");
        assert_eq!(AppId::new(5).to_string(), "App5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CtId::new(1) < CtId::new(2));
        let mut v = vec![LinkId::new(3), LinkId::new(1), LinkId::new(2)];
        v.sort();
        assert_eq!(v, vec![LinkId::new(1), LinkId::new(2), LinkId::new(3)]);
    }

    #[test]
    fn element_accessors() {
        let n = NetworkElement::from(NcpId::new(7));
        assert_eq!(n.as_ncp(), Some(NcpId::new(7)));
        assert_eq!(n.as_link(), None);
        let l = NetworkElement::from(LinkId::new(9));
        assert_eq!(l.as_link(), Some(LinkId::new(9)));
        assert_eq!(l.as_ncp(), None);
        assert!(l.is_link());
    }

    #[test]
    fn element_ordering_groups_ncps_before_links() {
        let mut v = vec![
            NetworkElement::Link(LinkId::new(0)),
            NetworkElement::Ncp(NcpId::new(1)),
            NetworkElement::Ncp(NcpId::new(0)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                NetworkElement::Ncp(NcpId::new(0)),
                NetworkElement::Ncp(NcpId::new(1)),
                NetworkElement::Link(LinkId::new(0)),
            ]
        );
    }
}
