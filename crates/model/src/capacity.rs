//! Capacity and load bookkeeping over network elements.
//!
//! The paper's rate constraint is `R x ≤ C`: the per-element load vector
//! `R` (sums of task requirements placed on each element, per data unit)
//! times the application rate must stay within the per-element capacity
//! vector `C`.
//!
//! [`CapacityMap`] holds the (possibly residual or predicted) capacities
//! `C`; [`LoadMap`] holds the per-data-unit loads `R` contributed by one
//! or more placements. Both are dense, indexed by [`NcpId`]/[`LinkId`],
//! because every algorithm in SPARCLE touches most elements.

use crate::ids::{LinkId, NcpId, NetworkElement};
use crate::network::Network;
use crate::resources::{ResourceKind, ResourceVec};

/// Per-element capacities `C` — either the full network capacity, a
/// residual after subtracting previously placed applications, or a
/// predicted share (eq. (6) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityMap {
    ncps: Vec<ResourceVec>,
    links: Vec<f64>,
}

impl CapacityMap {
    /// Snapshot of a network's full capacities.
    pub fn full(network: &Network) -> Self {
        CapacityMap {
            ncps: network
                .ncp_ids()
                .map(|id| network.ncp(id).capacity().clone())
                .collect(),
            links: network
                .link_ids()
                .map(|id| network.link(id).bandwidth())
                .collect(),
        }
    }

    /// A zero-capacity map with the same shape as `network`.
    pub fn zeroed(network: &Network) -> Self {
        CapacityMap {
            ncps: vec![ResourceVec::new(); network.ncp_count()],
            links: vec![0.0; network.link_count()],
        }
    }

    /// Number of NCP entries.
    pub fn ncp_count(&self) -> usize {
        self.ncps.len()
    }

    /// Number of link entries.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Capacity vector of an NCP.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ncp(&self, id: NcpId) -> &ResourceVec {
        &self.ncps[id.index()]
    }

    /// Mutable capacity vector of an NCP.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ncp_mut(&mut self, id: NcpId) -> &mut ResourceVec {
        &mut self.ncps[id.index()]
    }

    /// Residual bandwidth of a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> f64 {
        self.links[id.index()]
    }

    /// Sets the residual bandwidth of a link (clamped at zero).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_link(&mut self, id: LinkId, bandwidth: f64) {
        self.links[id.index()] = bandwidth.max(0.0);
    }

    /// Capacity of an arbitrary element as a [`ResourceVec`].
    pub fn element(&self, element: NetworkElement) -> ResourceVec {
        match element {
            NetworkElement::Ncp(id) => self.ncp(id).clone(),
            NetworkElement::Link(id) => ResourceVec::bandwidth(self.link(id)),
        }
    }

    /// Subtracts `rate × load` from every element — the residual update
    /// applied between multi-path assignment iterations (§IV-D: after a
    /// path with rate `r1` is found, the available capacity becomes
    /// `C_j^(r) − r1 Σ y a^(r)`). Entries clamp at zero.
    pub fn subtract_load(&mut self, load: &LoadMap, rate: f64) {
        for (i, l) in load.ncps.iter().enumerate() {
            self.ncps[i].sub_scaled(l, rate);
        }
        for (i, &bits) in load.links.iter().enumerate() {
            self.links[i] = (self.links[i] - bits * rate).max(0.0);
        }
    }

    /// Adds `rate × load` back to every element (undoing
    /// [`Self::subtract_load`], e.g. when an application departs).
    pub fn add_load(&mut self, load: &LoadMap, rate: f64) {
        for (i, l) in load.ncps.iter().enumerate() {
            self.ncps[i].add_vec(&l.scaled(rate));
        }
        for (i, &bits) in load.links.iter().enumerate() {
            self.links[i] += bits * rate;
        }
    }

    /// Like [`Self::subtract_load`] but skips elements the load leaves
    /// untouched. For non-negative capacities a zero-amount subtraction
    /// is the identity, so the result is **bitwise identical** to the
    /// dense subtraction — this is the delta op the incremental residual
    /// maintenance in `sparcle-core` relies on.
    pub fn subtract_load_sparse(&mut self, load: &LoadMap, rate: f64) {
        for (i, l) in load.ncps.iter().enumerate() {
            if !l.is_zero() {
                self.ncps[i].sub_scaled(l, rate);
            }
        }
        for (i, &bits) in load.links.iter().enumerate() {
            if bits != 0.0 {
                self.links[i] = (self.links[i] - bits * rate).max(0.0);
            }
        }
    }

    /// Subtracts `rate × load` on a **single** element, leaving every
    /// other entry untouched. Uses the exact arithmetic of
    /// [`Self::subtract_load`] restricted to `element`, so replaying a
    /// sequence of subtractions per-element reproduces the dense fold
    /// bit-for-bit.
    pub fn subtract_load_element(&mut self, element: NetworkElement, load: &LoadMap, rate: f64) {
        match element {
            NetworkElement::Ncp(id) => {
                self.ncps[id.index()].sub_scaled(load.ncp(id), rate);
            }
            NetworkElement::Link(id) => {
                let i = id.index();
                self.links[i] = (self.links[i] - load.links[i] * rate).max(0.0);
            }
        }
    }

    /// Copies one element's capacity from `other` (same shape) — the
    /// seed of a per-element canonical recompute.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range for either map.
    pub fn copy_element_from(&mut self, other: &CapacityMap, element: NetworkElement) {
        match element {
            NetworkElement::Ncp(id) => {
                self.ncps[id.index()] = other.ncps[id.index()].clone();
            }
            NetworkElement::Link(id) => {
                self.links[id.index()] = other.links[id.index()];
            }
        }
    }

    /// `true` when every entry is finite and non-negative — the
    /// precondition under which the sparse delta ops above are bitwise
    /// equivalent to their dense counterparts.
    pub fn is_finite_non_negative(&self) -> bool {
        self.ncps
            .iter()
            .all(|v| v.iter().all(|(_, a)| a.is_finite() && a >= 0.0))
            && self.links.iter().all(|&b| b.is_finite() && b >= 0.0)
    }

    /// Scales the capacity of one element by `factor` — used by the
    /// priority-share prediction of eq. (6).
    pub fn scale_element(&mut self, element: NetworkElement, factor: f64) {
        match element {
            NetworkElement::Ncp(id) => self.ncps[id.index()].scale(factor),
            NetworkElement::Link(id) => self.links[id.index()] *= factor,
        }
    }

    /// The maximum stable rate this capacity supports for the given load:
    /// `min over elements with load, over resource kinds, of C / R`.
    ///
    /// Returns `f64::INFINITY` for an all-zero load (nothing placed — no
    /// constraint).
    pub fn bottleneck_rate(&self, load: &LoadMap) -> f64 {
        let mut rate = f64::INFINITY;
        for (i, l) in load.ncps.iter().enumerate() {
            if let Some(r) = self.ncps[i].rate_supported(l) {
                rate = rate.min(r);
            }
        }
        for (i, &bits) in load.links.iter().enumerate() {
            if bits > 0.0 {
                rate = rate.min(self.links[i] / bits);
            }
        }
        rate
    }

    /// Per-element utilization at processing rate `rate` under `load`:
    /// the fraction of each element's (tightest) capacity consumed,
    /// `rate × load / C` (`f64::INFINITY` for loaded zero-capacity
    /// elements; `0.0` for unloaded ones). Returned in NCPs-then-links
    /// order, aligned with [`Network::elements`](crate::Network::elements).
    pub fn utilization(&self, load: &LoadMap, rate: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ncps.len() + self.links.len());
        for (i, l) in load.ncps.iter().enumerate() {
            out.push(match self.ncps[i].rate_supported(l) {
                Some(max) if max > 0.0 => rate / max,
                Some(_) => f64::INFINITY,
                None => 0.0,
            });
        }
        for (i, &bits) in load.links.iter().enumerate() {
            out.push(if bits <= 0.0 {
                0.0
            } else if self.links[i] > 0.0 {
                rate * bits / self.links[i]
            } else {
                f64::INFINITY
            });
        }
        out
    }

    /// The element attaining the bottleneck for the given load, if any
    /// element carries load.
    pub fn bottleneck_element(&self, load: &LoadMap) -> Option<(NetworkElement, f64)> {
        let mut best: Option<(NetworkElement, f64)> = None;
        for (i, l) in load.ncps.iter().enumerate() {
            if let Some(r) = self.ncps[i].rate_supported(l) {
                if best.is_none_or(|(_, b)| r < b) {
                    best = Some((NetworkElement::Ncp(NcpId::new(i as u32)), r));
                }
            }
        }
        for (i, &bits) in load.links.iter().enumerate() {
            if bits > 0.0 {
                let r = self.links[i] / bits;
                if best.is_none_or(|(_, b)| r < b) {
                    best = Some((NetworkElement::Link(LinkId::new(i as u32)), r));
                }
            }
        }
        best
    }
}

/// Per-element, per-data-unit loads `R` contributed by placed tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMap {
    ncps: Vec<ResourceVec>,
    links: Vec<f64>,
}

impl LoadMap {
    /// An empty load map shaped like `network`.
    pub fn zeroed(network: &Network) -> Self {
        LoadMap {
            ncps: vec![ResourceVec::new(); network.ncp_count()],
            links: vec![0.0; network.link_count()],
        }
    }

    /// An empty load map with explicit dimensions.
    pub fn with_shape(ncp_count: usize, link_count: usize) -> Self {
        LoadMap {
            ncps: vec![ResourceVec::new(); ncp_count],
            links: vec![0.0; link_count],
        }
    }

    /// Adds a CT's per-data-unit requirement onto its host NCP.
    ///
    /// # Panics
    ///
    /// Panics if `ncp` is out of range.
    pub fn add_ct_load(&mut self, ncp: NcpId, requirement: &ResourceVec) {
        self.ncps[ncp.index()].add_vec(requirement);
    }

    /// Adds a TT's per-data-unit bits onto a link it traverses.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn add_tt_load(&mut self, link: LinkId, bits_per_unit: f64) {
        self.links[link.index()] += bits_per_unit;
    }

    /// Load vector on an NCP.
    pub fn ncp(&self, id: NcpId) -> &ResourceVec {
        &self.ncps[id.index()]
    }

    /// Bits per data unit on a link.
    pub fn link(&self, id: LinkId) -> f64 {
        self.links[id.index()]
    }

    /// Load of an arbitrary element as a [`ResourceVec`].
    pub fn element(&self, element: NetworkElement) -> ResourceVec {
        match element {
            NetworkElement::Ncp(id) => self.ncp(id).clone(),
            NetworkElement::Link(id) => ResourceVec::bandwidth(self.link(id)),
        }
    }

    /// Merges another load map (same shape) into this one, scaled by
    /// `scale` (e.g. a path's share of the application's rate).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge_scaled(&mut self, other: &LoadMap, scale: f64) {
        assert_eq!(self.ncps.len(), other.ncps.len(), "NCP shape mismatch");
        assert_eq!(self.links.len(), other.links.len(), "link shape mismatch");
        for (i, l) in other.ncps.iter().enumerate() {
            self.ncps[i].add_vec(&l.scaled(scale));
        }
        for (i, &bits) in other.links.iter().enumerate() {
            self.links[i] += bits * scale;
        }
    }

    /// Number of NCP entries.
    pub fn ncp_count(&self) -> usize {
        self.ncps.len()
    }

    /// Number of link entries.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Strictly positive `(element, kind, amount)` entries in
    /// NCPs-then-links order, kinds in their sorted storage order — the
    /// same order [`crate::Network::elements`] walks and constraint
    /// builders emit rows in.
    pub fn positive_entries(
        &self,
    ) -> impl Iterator<Item = (NetworkElement, ResourceKind, f64)> + '_ {
        let ncps = self.ncps.iter().enumerate().flat_map(|(i, v)| {
            v.iter()
                .filter(|&(_, a)| a > 0.0)
                .map(move |(kind, a)| (NetworkElement::Ncp(NcpId::new(i as u32)), kind, a))
        });
        let links = self
            .links
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0.0)
            .map(|(i, &b)| {
                (
                    NetworkElement::Link(LinkId::new(i as u32)),
                    ResourceKind::Bandwidth,
                    b,
                )
            });
        ncps.chain(links)
    }

    /// Elements carrying non-zero load, in NCPs-then-links order.
    pub fn loaded_elements(&self) -> Vec<NetworkElement> {
        let mut out = Vec::new();
        for (i, l) in self.ncps.iter().enumerate() {
            if !l.is_zero() {
                out.push(NetworkElement::Ncp(NcpId::new(i as u32)));
            }
        }
        for (i, &bits) in self.links.iter().enumerate() {
            if bits > 0.0 {
                out.push(NetworkElement::Link(LinkId::new(i as u32)));
            }
        }
        out
    }

    /// Returns `true` if nothing is loaded.
    pub fn is_zero(&self) -> bool {
        self.ncps.iter().all(ResourceVec::is_zero) && self.links.iter().all(|&b| b == 0.0)
    }

    /// Total CPU cycles per data unit across all NCPs (used by the energy
    /// model).
    pub fn total_cpu_load(&self) -> f64 {
        self.ncps.iter().map(|v| v.amount(ResourceKind::Cpu)).sum()
    }

    /// Total bits per data unit across all links (used by the energy
    /// model).
    pub fn total_link_bits(&self) -> f64 {
        self.links.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn net2() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.add_ncp("x", ResourceVec::cpu(100.0));
        let y = b.add_ncp("y", ResourceVec::cpu(50.0));
        b.add_link("xy", x, y, 1000.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_capacity_snapshot() {
        let net = net2();
        let cap = CapacityMap::full(&net);
        assert_eq!(cap.ncp(NcpId::new(0)).amount(ResourceKind::Cpu), 100.0);
        assert_eq!(cap.link(LinkId::new(0)), 1000.0);
    }

    #[test]
    fn bottleneck_rate_matches_paper_formula() {
        let net = net2();
        let cap = CapacityMap::full(&net);
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0)); // 100/10 = 10
        load.add_ct_load(NcpId::new(1), &ResourceVec::cpu(1.0)); // 50/1 = 50
        load.add_tt_load(LinkId::new(0), 250.0); // 1000/250 = 4  <- bottleneck
        assert_eq!(cap.bottleneck_rate(&load), 4.0);
        let (el, r) = cap.bottleneck_element(&load).unwrap();
        assert_eq!(el, NetworkElement::Link(LinkId::new(0)));
        assert_eq!(r, 4.0);
    }

    #[test]
    fn empty_load_is_unconstrained() {
        let net = net2();
        let cap = CapacityMap::full(&net);
        let load = LoadMap::zeroed(&net);
        assert_eq!(cap.bottleneck_rate(&load), f64::INFINITY);
        assert_eq!(cap.bottleneck_element(&load), None);
        assert!(load.is_zero());
    }

    #[test]
    fn subtract_and_add_load_roundtrip() {
        let net = net2();
        let mut cap = CapacityMap::full(&net);
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0));
        load.add_tt_load(LinkId::new(0), 100.0);
        cap.subtract_load(&load, 2.0);
        assert_eq!(cap.ncp(NcpId::new(0)).amount(ResourceKind::Cpu), 80.0);
        assert_eq!(cap.link(LinkId::new(0)), 800.0);
        cap.add_load(&load, 2.0);
        assert_eq!(cap.ncp(NcpId::new(0)).amount(ResourceKind::Cpu), 100.0);
        assert_eq!(cap.link(LinkId::new(0)), 1000.0);
    }

    #[test]
    fn subtract_clamps_at_zero() {
        let net = net2();
        let mut cap = CapacityMap::full(&net);
        let mut load = LoadMap::zeroed(&net);
        load.add_tt_load(LinkId::new(0), 100.0);
        cap.subtract_load(&load, 1e9);
        assert_eq!(cap.link(LinkId::new(0)), 0.0);
    }

    #[test]
    fn scale_element_for_prediction() {
        let net = net2();
        let mut cap = CapacityMap::full(&net);
        cap.scale_element(NetworkElement::Ncp(NcpId::new(0)), 2.0 / 3.0);
        assert!((cap.ncp(NcpId::new(0)).amount(ResourceKind::Cpu) - 200.0 / 3.0).abs() < 1e-9);
        cap.scale_element(NetworkElement::Link(LinkId::new(0)), 0.5);
        assert_eq!(cap.link(LinkId::new(0)), 500.0);
    }

    #[test]
    fn merge_scaled_accumulates() {
        let net = net2();
        let mut a = LoadMap::zeroed(&net);
        let mut b = LoadMap::zeroed(&net);
        b.add_ct_load(NcpId::new(1), &ResourceVec::cpu(4.0));
        b.add_tt_load(LinkId::new(0), 8.0);
        a.merge_scaled(&b, 0.5);
        assert_eq!(a.ncp(NcpId::new(1)).amount(ResourceKind::Cpu), 2.0);
        assert_eq!(a.link(LinkId::new(0)), 4.0);
        assert_eq!(a.loaded_elements().len(), 2);
    }

    #[test]
    fn utilization_matches_hand_math() {
        let net = net2();
        let cap = CapacityMap::full(&net);
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(10.0)); // max 10/s
        load.add_tt_load(LinkId::new(0), 250.0); // max 4/s
        let u = cap.utilization(&load, 2.0);
        assert!((u[0] - 0.2).abs() < 1e-12, "ncp0 {}", u[0]);
        assert_eq!(u[1], 0.0, "unloaded ncp");
        assert!((u[2] - 0.5).abs() < 1e-12, "link {}", u[2]);
        // At the bottleneck rate, the binding element hits 1.0.
        let u = cap.utilization(&load, cap.bottleneck_rate(&load));
        assert!((u[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_delta_ops_match_dense_subtraction_bitwise() {
        let net = net2();
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(7.3));
        load.add_tt_load(LinkId::new(0), 11.1);

        let mut dense = CapacityMap::full(&net);
        let mut sparse = CapacityMap::full(&net);
        dense.subtract_load(&load, 1.7);
        sparse.subtract_load_sparse(&load, 1.7);
        assert_eq!(dense, sparse);

        // Per-element replay over every element reproduces the dense fold.
        let mut replayed = CapacityMap::full(&net);
        for i in 0..replayed.ncp_count() {
            replayed.subtract_load_element(NetworkElement::Ncp(NcpId::new(i as u32)), &load, 1.7);
        }
        for i in 0..replayed.link_count() {
            replayed.subtract_load_element(NetworkElement::Link(LinkId::new(i as u32)), &load, 1.7);
        }
        assert_eq!(dense, replayed);

        // copy_element_from restores individual elements.
        let full = CapacityMap::full(&net);
        let mut restored = dense.clone();
        restored.copy_element_from(&full, NetworkElement::Ncp(NcpId::new(0)));
        restored.copy_element_from(&full, NetworkElement::Link(LinkId::new(0)));
        assert_eq!(restored, full);
        assert!(full.is_finite_non_negative());
    }

    #[test]
    fn positive_entries_lists_loads_in_element_order() {
        let net = net2();
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(1), &ResourceVec::cpu(4.0));
        load.add_tt_load(LinkId::new(0), 8.0);
        let entries: Vec<_> = load.positive_entries().collect();
        assert_eq!(
            entries,
            vec![
                (NetworkElement::Ncp(NcpId::new(1)), ResourceKind::Cpu, 4.0),
                (
                    NetworkElement::Link(LinkId::new(0)),
                    ResourceKind::Bandwidth,
                    8.0
                ),
            ]
        );
        assert_eq!(load.ncp_count(), 2);
        assert_eq!(load.link_count(), 1);
    }

    #[test]
    fn totals_for_energy_model() {
        let net = net2();
        let mut load = LoadMap::zeroed(&net);
        load.add_ct_load(NcpId::new(0), &ResourceVec::cpu(3.0));
        load.add_ct_load(NcpId::new(1), &ResourceVec::cpu(4.0));
        load.add_tt_load(LinkId::new(0), 9.0);
        assert_eq!(load.total_cpu_load(), 7.0);
        assert_eq!(load.total_link_bits(), 9.0);
    }
}
