//! Graphviz DOT export for task graphs, networks, and placements.
//!
//! Feed the returned strings to `dot -Tsvg` to visualize an
//! application's DAG, a computing network, or — most usefully — a
//! finished placement: hosts carry the CTs placed on them and every TT
//! route is drawn along its links.
//!
//! Names are escaped, so arbitrary user-provided names are safe.

use crate::ids::CtId;
use crate::network::Network;
use crate::placement::Placement;
use crate::taskgraph::TaskGraph;
use std::fmt::Write as _;

/// Escapes a string for use inside a DOT double-quoted id.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a task graph as a DOT digraph: CTs as nodes (sources and
/// sinks shaded), TTs as labeled edges.
///
/// # Examples
///
/// ```
/// # use sparcle_model::{TaskGraphBuilder, ResourceVec, dot::task_graph_dot};
/// # fn main() -> Result<(), sparcle_model::ModelError> {
/// let mut b = TaskGraphBuilder::new();
/// let s = b.add_ct("src", ResourceVec::new());
/// let t = b.add_ct("sink", ResourceVec::new());
/// b.add_tt("flow", s, t, 42.0)?;
/// let dot = task_graph_dot(&b.build()?);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"src\" -> \"sink\""));
/// # Ok(())
/// # }
/// ```
pub fn task_graph_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(graph.name())).expect("string write");
    out.push_str("  rankdir=LR;\n  node [shape=box];\n");
    for ct in graph.ct_ids() {
        let c = graph.ct(ct);
        let shape = if graph.in_edges(ct).is_empty() || graph.out_edges(ct).is_empty() {
            " style=filled fillcolor=lightgray"
        } else {
            ""
        };
        writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}\"{shape}];",
            escape(c.name()),
            escape(c.name()),
            c.requirement()
        )
        .expect("string write");
    }
    for tt in graph.tt_ids() {
        let t = graph.tt(tt);
        writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{} ({})\"];",
            escape(graph.ct(t.from()).name()),
            escape(graph.ct(t.to()).name()),
            escape(t.name()),
            t.bits_per_unit()
        )
        .expect("string write");
    }
    out.push_str("}\n");
    out
}

/// Renders a computing network as a DOT graph: NCPs as ellipses with
/// their capacities, links as (un)directed edges with bandwidths.
pub fn network_dot(network: &Network) -> String {
    let mut out = String::new();
    writeln!(out, "graph \"{}\" {{", escape(network.name())).expect("string write");
    out.push_str("  node [shape=ellipse];\n");
    for id in network.ncp_ids() {
        let ncp = network.ncp(id);
        writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}\"];",
            escape(ncp.name()),
            escape(ncp.name()),
            ncp.capacity()
        )
        .expect("string write");
    }
    for id in network.link_ids() {
        let link = network.link(id);
        let arrow = match link.direction() {
            crate::network::LinkDirection::Undirected => "",
            crate::network::LinkDirection::Directed => " dir=forward",
        };
        writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{} ({})\"{arrow}];",
            escape(network.ncp(link.a()).name()),
            escape(network.ncp(link.b()).name()),
            escape(link.name()),
            link.bandwidth()
        )
        .expect("string write");
    }
    out.push_str("}\n");
    out
}

/// Renders a placement: the network with each NCP annotated by the CTs
/// it hosts, and each TT's route listed on the links it crosses.
///
/// # Panics
///
/// Panics if the placement is incomplete.
pub fn placement_dot(graph: &TaskGraph, network: &Network, placement: &Placement) -> String {
    assert!(placement.is_complete(), "placement must be complete");
    let mut hosted: Vec<Vec<CtId>> = vec![Vec::new(); network.ncp_count()];
    for (ct, host) in placement.placed_cts() {
        hosted[host.index()].push(ct);
    }
    let mut link_labels: Vec<Vec<String>> = vec![Vec::new(); network.link_count()];
    for (tt, route) in placement.routed_tts() {
        for &link in route {
            link_labels[link.index()].push(graph.tt(tt).name().to_owned());
        }
    }
    let mut out = String::new();
    writeln!(out, "graph \"placement\" {{").expect("string write");
    out.push_str("  node [shape=record];\n");
    for id in network.ncp_ids() {
        let ncp = network.ncp(id);
        let tasks: Vec<String> = hosted[id.index()]
            .iter()
            .map(|&ct| escape(graph.ct(ct).name()))
            .collect();
        writeln!(
            out,
            "  \"{}\" [label=\"{{{}|{}}}\"];",
            escape(ncp.name()),
            escape(ncp.name()),
            if tasks.is_empty() {
                "-".to_owned()
            } else {
                tasks.join("\\n")
            }
        )
        .expect("string write");
    }
    for id in network.link_ids() {
        let link = network.link(id);
        let label = if link_labels[id.index()].is_empty() {
            String::new()
        } else {
            link_labels[id.index()]
                .iter()
                .map(|l| escape(l))
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{label}\"];",
            escape(network.ncp(link.a()).name()),
            escape(network.ncp(link.b()).name()),
        )
        .expect("string write");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::resources::ResourceVec;
    use crate::taskgraph::TaskGraphBuilder;

    fn fixture() -> (TaskGraph, Network, Placement) {
        let mut tb = TaskGraphBuilder::new();
        tb.name("app");
        let s = tb.add_ct("src", ResourceVec::new());
        let w = tb.add_ct("work", ResourceVec::cpu(5.0));
        let t = tb.add_ct("out", ResourceVec::new());
        tb.add_tt("in", s, w, 3.0).unwrap();
        tb.add_tt("res", w, t, 1.0).unwrap();
        let graph = tb.build().unwrap();
        let mut nb = NetworkBuilder::new();
        nb.name("net");
        let a = nb.add_ncp("alpha", ResourceVec::cpu(10.0));
        let b = nb.add_ncp("beta", ResourceVec::cpu(20.0));
        nb.add_link("wire", a, b, 7.0).unwrap();
        let net = nb.build().unwrap();
        let mut p = Placement::empty(&graph);
        p.place_ct(s, a);
        p.place_ct(w, b);
        p.place_ct(t, a);
        p.route_tt(crate::ids::TtId::new(0), vec![crate::ids::LinkId::new(0)]);
        p.route_tt(crate::ids::TtId::new(1), vec![crate::ids::LinkId::new(0)]);
        (graph, net, p)
    }

    #[test]
    fn task_graph_dot_structure() {
        let (graph, _, _) = fixture();
        let dot = task_graph_dot(&graph);
        assert!(dot.starts_with("digraph \"app\""));
        assert!(dot.contains("\"src\" -> \"work\" [label=\"in (3)\"]"));
        assert!(dot.contains("\"work\" -> \"out\" [label=\"res (1)\"]"));
        // Source/sink shaded, inner CT not.
        assert_eq!(dot.matches("fillcolor=lightgray").count(), 2);
    }

    #[test]
    fn network_dot_structure() {
        let (_, net, _) = fixture();
        let dot = network_dot(&net);
        assert!(dot.starts_with("graph \"net\""));
        assert!(dot.contains("\"alpha\" -- \"beta\" [label=\"wire (7)\"]"));
        assert!(dot.contains("{cpu: 20}"));
    }

    #[test]
    fn placement_dot_annotates_hosts_and_routes() {
        let (graph, net, p) = fixture();
        let dot = placement_dot(&graph, &net, &p);
        assert!(dot.contains("{alpha|src\\nout}"), "{dot}");
        assert!(dot.contains("{beta|work}"), "{dot}");
        assert!(dot.contains("label=\"in, res\""), "{dot}");
    }

    #[test]
    fn names_are_escaped() {
        let mut tb = TaskGraphBuilder::new();
        tb.name("a\"b");
        let s = tb.add_ct("s\"rc", ResourceVec::new());
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("e", s, t, 1.0).unwrap();
        let dot = task_graph_dot(&tb.build().unwrap());
        assert!(dot.contains("digraph \"a\\\"b\""));
        assert!(dot.contains("\"s\\\"rc\""));
    }
}
