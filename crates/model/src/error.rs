//! Error types for model construction and validation.

use crate::ids::{CtId, LinkId, NcpId, TtId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating SPARCLE models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A task graph must contain at least one CT.
    EmptyTaskGraph,
    /// The transport tasks form a directed cycle; applications must be
    /// DAGs.
    CyclicTaskGraph,
    /// The task graph splits into unrelated components.
    DisconnectedTaskGraph,
    /// A TT referenced a CT id that was never added.
    UnknownCt(CtId),
    /// A TT connected a CT to itself.
    SelfLoop(CtId),
    /// A network must contain at least one NCP.
    EmptyNetwork,
    /// A link referenced an NCP id that was never added.
    UnknownNcp(NcpId),
    /// A link connected an NCP to itself.
    SelfLink(NcpId),
    /// A physical quantity was negative or not finite.
    InvalidQuantity {
        /// What the quantity measures.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability was outside `[0, 1]`.
    InvalidProbability(f64),
    /// A placement left a CT without a host (violates constraint (1b)).
    UnplacedCt(CtId),
    /// A placement left a TT between remotely-hosted CTs without a route.
    UnroutedTt(TtId),
    /// A TT route does not form a path between the hosts of its endpoint
    /// CTs (violates constraint (1c)).
    BrokenRoute {
        /// The transport task whose route is invalid.
        tt: TtId,
        /// Why the route is invalid.
        reason: RouteError,
    },
    /// A pinned CT host refers to an NCP outside the target network.
    PinnedHostOutOfRange {
        /// The pinned computation task.
        ct: CtId,
        /// The out-of-range host.
        ncp: NcpId,
    },
    /// The application's pinning does not cover a source or sink CT.
    UnpinnedEndpoint(CtId),
    /// A referenced link does not exist in the network.
    UnknownLink(LinkId),
}

/// Detail for [`ModelError::BrokenRoute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The first link of the route is not incident to the upstream host.
    BadStart,
    /// Two consecutive links do not share an NCP.
    Discontinuous,
    /// The route ends at an NCP other than the downstream host.
    BadEnd,
    /// The route is non-empty although both endpoints share a host.
    NonEmptyLocal,
    /// A directed link is traversed against its direction.
    WrongDirection,
    /// The same link appears more than once in the route.
    RepeatedLink,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyTaskGraph => f.write_str("task graph has no computation tasks"),
            ModelError::CyclicTaskGraph => f.write_str("task graph contains a directed cycle"),
            ModelError::DisconnectedTaskGraph => f.write_str("task graph is not weakly connected"),
            ModelError::UnknownCt(id) => write!(f, "unknown computation task {id}"),
            ModelError::SelfLoop(id) => write!(f, "transport task loops {id} to itself"),
            ModelError::EmptyNetwork => f.write_str("network has no computing nodes"),
            ModelError::UnknownNcp(id) => write!(f, "unknown computing node {id}"),
            ModelError::SelfLink(id) => write!(f, "link connects {id} to itself"),
            ModelError::InvalidQuantity { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            ModelError::InvalidProbability(p) => {
                write!(f, "probability must lie in [0, 1], got {p}")
            }
            ModelError::UnplacedCt(id) => write!(f, "computation task {id} has no host"),
            ModelError::UnroutedTt(id) => {
                write!(f, "transport task {id} crosses hosts but has no route")
            }
            ModelError::BrokenRoute { tt, reason } => {
                write!(f, "route of transport task {tt} is invalid: {reason}")
            }
            ModelError::PinnedHostOutOfRange { ct, ncp } => {
                write!(f, "pinned host {ncp} for {ct} is outside the network")
            }
            ModelError::UnpinnedEndpoint(id) => {
                write!(f, "source or sink {id} has no pinned host")
            }
            ModelError::UnknownLink(id) => write!(f, "unknown link {id}"),
        }
    }
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadStart => f.write_str("first link is not incident to the source host"),
            RouteError::Discontinuous => f.write_str("consecutive links do not share a node"),
            RouteError::BadEnd => f.write_str("route does not end at the destination host"),
            RouteError::NonEmptyLocal => {
                f.write_str("endpoints share a host but the route is non-empty")
            }
            RouteError::WrongDirection => {
                f.write_str("a directed link is traversed against its direction")
            }
            RouteError::RepeatedLink => f.write_str("a link appears more than once"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            ModelError::EmptyTaskGraph.to_string(),
            ModelError::UnknownCt(CtId::new(1)).to_string(),
            ModelError::BrokenRoute {
                tt: TtId::new(0),
                reason: RouteError::BadStart,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "lowercase: {m}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
