//! Stream processing application task graphs.
//!
//! An application is modeled as a Directed Acyclic Graph (§III-A of the
//! paper): vertices are *computation tasks* (CTs) carrying a per-data-unit
//! [`ResourceVec`] requirement, and edges are *transport tasks* (TTs)
//! carrying the number of bits each data unit occupies on the wire between
//! the hosts of two consecutive CTs.
//!
//! A [`TaskGraph`] is immutable once built; construct one with
//! [`TaskGraphBuilder`], which validates acyclicity and weak connectivity.
//!
//! # Examples
//!
//! Building the two-camera object classification pipeline of the paper's
//! Figure 1:
//!
//! ```
//! # use sparcle_model::{TaskGraphBuilder, ResourceVec};
//! # fn main() -> Result<(), sparcle_model::ModelError> {
//! let mut b = TaskGraphBuilder::new();
//! let cam1 = b.add_ct("camera1", ResourceVec::new());
//! let cam2 = b.add_ct("camera2", ResourceVec::new());
//! let detect = b.add_ct("object-detection", ResourceVec::cpu(5_000.0));
//! let classify = b.add_ct("object-classification", ResourceVec::cpu(8_000.0));
//! let consumer = b.add_ct("consumer", ResourceVec::new());
//! b.add_tt("images-1", cam1, detect, 3.1e6 * 8.0)?;
//! b.add_tt("images-2", cam2, detect, 3.1e6 * 8.0)?;
//! b.add_tt("objects", detect, classify, 182e3 * 8.0)?;
//! b.add_tt("classes", classify, consumer, 11e3 * 8.0)?;
//! let graph = b.build()?;
//! assert_eq!(graph.sources().len(), 2);
//! assert_eq!(graph.sinks().len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::error::ModelError;
use crate::ids::{CtId, TtId};
use crate::resources::ResourceVec;
use std::collections::VecDeque;

/// A computation task: one vertex of the application DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputationTask {
    name: String,
    requirement: ResourceVec,
}

impl ComputationTask {
    /// Human-readable task name (unique within a graph is recommended but
    /// not enforced; identity is the [`CtId`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resources needed to process one data unit (`a_i^(r)`).
    pub fn requirement(&self) -> &ResourceVec {
        &self.requirement
    }
}

/// A transport task: one edge of the application DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportTask {
    name: String,
    from: CtId,
    to: CtId,
    bits_per_unit: f64,
}

impl TransportTask {
    /// Human-readable task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The upstream (producing) CT.
    pub fn from(&self) -> CtId {
        self.from
    }

    /// The downstream (consuming) CT.
    pub fn to(&self) -> CtId {
        self.to
    }

    /// Bits carried per data unit (`a_k^(b)`).
    pub fn bits_per_unit(&self) -> f64 {
        self.bits_per_unit
    }

    /// The bandwidth requirement as a [`ResourceVec`].
    pub fn requirement(&self) -> ResourceVec {
        ResourceVec::bandwidth(self.bits_per_unit)
    }

    /// Returns the endpoint other than `ct`, or `None` if `ct` is not an
    /// endpoint of this TT.
    pub fn other_endpoint(&self, ct: CtId) -> Option<CtId> {
        if ct == self.from {
            Some(self.to)
        } else if ct == self.to {
            Some(self.from)
        } else {
            None
        }
    }
}

/// Incrementally builds a [`TaskGraph`].
///
/// See the [module documentation](self) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    cts: Vec<ComputationTask>,
    tts: Vec<TransportTask>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a human-readable name for the application graph.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds a computation task and returns its id.
    pub fn add_ct(&mut self, name: impl Into<String>, requirement: ResourceVec) -> CtId {
        let id = CtId::new(self.cts.len() as u32);
        self.cts.push(ComputationTask {
            name: name.into(),
            requirement,
        });
        id
    }

    /// Adds a transport task from `from` to `to` carrying `bits_per_unit`
    /// bits per data unit, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownCt`] if either endpoint has not been
    /// added, [`ModelError::SelfLoop`] if `from == to`, and
    /// [`ModelError::InvalidQuantity`] if `bits_per_unit` is negative or
    /// not finite.
    pub fn add_tt(
        &mut self,
        name: impl Into<String>,
        from: CtId,
        to: CtId,
        bits_per_unit: f64,
    ) -> Result<TtId, ModelError> {
        if from.index() >= self.cts.len() {
            return Err(ModelError::UnknownCt(from));
        }
        if to.index() >= self.cts.len() {
            return Err(ModelError::UnknownCt(to));
        }
        if from == to {
            return Err(ModelError::SelfLoop(from));
        }
        if !bits_per_unit.is_finite() || bits_per_unit < 0.0 {
            return Err(ModelError::InvalidQuantity {
                what: "TT bits per data unit",
                value: bits_per_unit,
            });
        }
        let id = TtId::new(self.tts.len() as u32);
        self.tts.push(TransportTask {
            name: name.into(),
            from,
            to,
            bits_per_unit,
        });
        Ok(id)
    }

    /// Validates the accumulated tasks and produces an immutable
    /// [`TaskGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTaskGraph`] when no CT was added,
    /// [`ModelError::CyclicTaskGraph`] when the TTs form a directed cycle,
    /// and [`ModelError::DisconnectedTaskGraph`] when the graph is not
    /// weakly connected (an application with unrelated islands of tasks
    /// should be split into separate applications).
    pub fn build(self) -> Result<TaskGraph, ModelError> {
        TaskGraph::from_parts(self.name, self.cts, self.tts)
    }
}

/// An immutable, validated application DAG of CTs and TTs.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    name: String,
    cts: Vec<ComputationTask>,
    tts: Vec<TransportTask>,
    /// Outgoing TTs per CT.
    out_edges: Vec<Vec<TtId>>,
    /// Incoming TTs per CT.
    in_edges: Vec<Vec<TtId>>,
    /// CTs with no incoming TT (data sources).
    sources: Vec<CtId>,
    /// CTs with no outgoing TT (result consumers).
    sinks: Vec<CtId>,
    /// A topological order of the CTs.
    topo: Vec<CtId>,
}

impl TaskGraph {
    fn from_parts(
        name: String,
        cts: Vec<ComputationTask>,
        tts: Vec<TransportTask>,
    ) -> Result<Self, ModelError> {
        if cts.is_empty() {
            return Err(ModelError::EmptyTaskGraph);
        }
        let n = cts.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (idx, tt) in tts.iter().enumerate() {
            let id = TtId::new(idx as u32);
            out_edges[tt.from.index()].push(id);
            in_edges[tt.to.index()].push(id);
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            topo.push(CtId::new(i as u32));
            for &tt in &out_edges[i] {
                let j = tts[tt.index()].to.index();
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if topo.len() != n {
            return Err(ModelError::CyclicTaskGraph);
        }

        // Weak connectivity: BFS over undirected edges.
        if n > 1 {
            let mut seen = vec![false; n];
            let mut queue = VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(i) = queue.pop_front() {
                for &tt in out_edges[i].iter().chain(in_edges[i].iter()) {
                    let t = &tts[tt.index()];
                    let j = if t.from.index() == i {
                        t.to.index()
                    } else {
                        t.from.index()
                    };
                    if !seen[j] {
                        seen[j] = true;
                        count += 1;
                        queue.push_back(j);
                    }
                }
            }
            if count != n {
                return Err(ModelError::DisconnectedTaskGraph);
            }
        }

        let sources = (0..n)
            .filter(|&i| in_edges[i].is_empty())
            .map(|i| CtId::new(i as u32))
            .collect();
        let sinks = (0..n)
            .filter(|&i| out_edges[i].is_empty())
            .map(|i| CtId::new(i as u32))
            .collect();

        Ok(TaskGraph {
            name,
            cts,
            tts,
            out_edges,
            in_edges,
            sources,
            sinks,
            topo,
        })
    }

    /// The application graph's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of computation tasks.
    pub fn ct_count(&self) -> usize {
        self.cts.len()
    }

    /// Number of transport tasks.
    pub fn tt_count(&self) -> usize {
        self.tts.len()
    }

    /// Returns the CT with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn ct(&self, id: CtId) -> &ComputationTask {
        &self.cts[id.index()]
    }

    /// Returns the TT with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn tt(&self, id: TtId) -> &TransportTask {
        &self.tts[id.index()]
    }

    /// Iterates over all CT ids in index order.
    pub fn ct_ids(&self) -> impl Iterator<Item = CtId> + '_ {
        (0..self.cts.len() as u32).map(CtId::new)
    }

    /// Iterates over all TT ids in index order.
    pub fn tt_ids(&self) -> impl Iterator<Item = TtId> + '_ {
        (0..self.tts.len() as u32).map(TtId::new)
    }

    /// TTs leaving `ct`.
    pub fn out_edges(&self, ct: CtId) -> &[TtId] {
        &self.out_edges[ct.index()]
    }

    /// TTs entering `ct`.
    pub fn in_edges(&self, ct: CtId) -> &[TtId] {
        &self.in_edges[ct.index()]
    }

    /// TTs incident to `ct` in either direction.
    pub fn incident_edges(&self, ct: CtId) -> impl Iterator<Item = TtId> + '_ {
        self.in_edges[ct.index()]
            .iter()
            .chain(self.out_edges[ct.index()].iter())
            .copied()
    }

    /// Data-source CTs (no incoming TT).
    pub fn sources(&self) -> &[CtId] {
        &self.sources
    }

    /// Result-consumer CTs (no outgoing TT).
    pub fn sinks(&self) -> &[CtId] {
        &self.sinks
    }

    /// A topological order of the CTs (sources first).
    pub fn topo_order(&self) -> &[CtId] {
        &self.topo
    }

    /// All TTs directly connecting `a` and `b` in either direction — the
    /// paper's `G(i, i')` for neighbor CTs.
    pub fn tts_between(&self, a: CtId, b: CtId) -> Vec<TtId> {
        self.incident_edges(a)
            .filter(|&tt| self.tts[tt.index()].other_endpoint(a) == Some(b))
            .collect()
    }

    /// Computes the *placed reachable CTs* `ν_i` of CT `i` used by the
    /// dynamic ranking algorithm (Algorithm 2, line 8): the CTs for which
    /// `placed` returns `true` that are connected to `i` through TTs whose
    /// intermediate CTs are all unplaced — together with, for each, the
    /// minimum `a^(b)` over the connecting TT set `G(i, i')` (line 12 picks
    /// the most optimistic TT for the bottleneck bound).
    ///
    /// The traversal is undirected: data dependencies constrain ordering of
    /// execution, not of placement.
    pub fn placed_reachable(
        &self,
        i: CtId,
        placed: impl Fn(CtId) -> bool,
    ) -> Vec<ReachablePlacedCt> {
        // Relaxation through unplaced CTs, tracking per-CT the minimum TT
        // bits (and the TT attaining it) over the best connecting walk
        // found so far. Values only decrease, so this terminates.
        let n = self.cts.len();
        let mut best = vec![f64::INFINITY; n];
        let mut best_tt: Vec<Option<TtId>> = vec![None; n];
        let mut queue = VecDeque::new();
        queue.push_back(i);
        let mut found_best = vec![f64::INFINITY; n];
        let mut found_tt: Vec<Option<TtId>> = vec![None; n];
        while let Some(u) = queue.pop_front() {
            for tt in self.incident_edges(u) {
                let t = &self.tts[tt.index()];
                let v = t.other_endpoint(u).expect("incident edge endpoint");
                let (along, along_tt) = if t.bits_per_unit <= best[u.index()] {
                    (t.bits_per_unit, Some(tt))
                } else {
                    (best[u.index()], best_tt[u.index()])
                };
                if placed(v) {
                    if along < found_best[v.index()] {
                        found_best[v.index()] = along;
                        found_tt[v.index()] = along_tt;
                    }
                } else if v != i && along < best[v.index()] {
                    best[v.index()] = along;
                    best_tt[v.index()] = along_tt;
                    queue.push_back(v);
                }
            }
        }
        let mut found: Vec<ReachablePlacedCt> = Vec::new();
        for (idx, tt) in found_tt.into_iter().enumerate() {
            if let Some(tt) = tt {
                found.push(ReachablePlacedCt {
                    ct: CtId::new(idx as u32),
                    min_bits_tt: tt,
                    min_bits: found_best[idx],
                });
            }
        }
        found.sort_by_key(|r| r.ct);
        found
    }

    /// Sum of all CT requirements (useful for sizing scenarios).
    pub fn total_ct_requirement(&self) -> ResourceVec {
        let mut total = ResourceVec::new();
        for ct in &self.cts {
            total.add_vec(&ct.requirement);
        }
        total
    }

    /// Sum of all TT bits per data unit.
    pub fn total_tt_bits(&self) -> f64 {
        self.tts.iter().map(|t| t.bits_per_unit).sum()
    }
}

/// One placed CT reachable from an unplaced CT, as computed by
/// [`TaskGraph::placed_reachable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachablePlacedCt {
    /// The placed CT `i'`.
    pub ct: CtId,
    /// The TT `k = argmin_y a_y^(b), y ∈ G(i, i')` whose bandwidth
    /// requirement bounds the network bottleneck check.
    pub min_bits_tt: TtId,
    /// `a_k^(b)` for that TT.
    pub min_bits: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear3() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_ct("a", ResourceVec::cpu(1.0));
        let c = b.add_ct("b", ResourceVec::cpu(2.0));
        let d = b.add_ct("c", ResourceVec::cpu(3.0));
        b.add_tt("ab", a, c, 10.0).unwrap();
        b.add_tt("bc", c, d, 20.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_linear_graph() {
        let g = linear3();
        assert_eq!(g.ct_count(), 3);
        assert_eq!(g.tt_count(), 2);
        assert_eq!(g.sources(), &[CtId::new(0)]);
        assert_eq!(g.sinks(), &[CtId::new(2)]);
        assert_eq!(g.topo_order(), &[CtId::new(0), CtId::new(1), CtId::new(2)]);
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            TaskGraphBuilder::new().build(),
            Err(ModelError::EmptyTaskGraph)
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        let y = b.add_ct("y", ResourceVec::new());
        b.add_tt("xy", x, y, 1.0).unwrap();
        b.add_tt("yx", y, x, 1.0).unwrap();
        assert!(matches!(b.build(), Err(ModelError::CyclicTaskGraph)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        assert!(matches!(
            b.add_tt("xx", x, x, 1.0),
            Err(ModelError::SelfLoop(_))
        ));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        assert!(matches!(
            b.add_tt("bad", x, CtId::new(9), 1.0),
            Err(ModelError::UnknownCt(_))
        ));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        let y = b.add_ct("y", ResourceVec::new());
        let z = b.add_ct("z", ResourceVec::new());
        b.add_tt("xy", x, y, 1.0).unwrap();
        let _ = z;
        assert!(matches!(b.build(), Err(ModelError::DisconnectedTaskGraph)));
    }

    #[test]
    fn rejects_negative_bits() {
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        let y = b.add_ct("y", ResourceVec::new());
        assert!(matches!(
            b.add_tt("xy", x, y, -1.0),
            Err(ModelError::InvalidQuantity { .. })
        ));
    }

    #[test]
    fn tts_between_finds_direct_edges() {
        let g = linear3();
        assert_eq!(
            g.tts_between(CtId::new(0), CtId::new(1)),
            vec![TtId::new(0)]
        );
        assert_eq!(
            g.tts_between(CtId::new(1), CtId::new(0)),
            vec![TtId::new(0)]
        );
        assert!(g.tts_between(CtId::new(0), CtId::new(2)).is_empty());
    }

    #[test]
    fn placed_reachable_direct_neighbor() {
        let g = linear3();
        // Only CT0 placed; from CT1, CT0 is reachable via TT0.
        let r = g.placed_reachable(CtId::new(1), |ct| ct == CtId::new(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].ct, CtId::new(0));
        assert_eq!(r[0].min_bits_tt, TtId::new(0));
        assert_eq!(r[0].min_bits, 10.0);
    }

    #[test]
    fn placed_reachable_through_unplaced_intermediate() {
        let g = linear3();
        // CT0 and CT2 placed; from CT1 both are direct neighbors.
        let r = g.placed_reachable(CtId::new(1), |ct| ct != CtId::new(1));
        assert_eq!(r.len(), 2);
        // From CT0 (unplaced scenario): CT2 is reachable *through* CT1.
        let r = g.placed_reachable(CtId::new(0), |ct| ct == CtId::new(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].ct, CtId::new(2));
        // min bits over {TT0(10), TT1(20)} path = 10.
        assert_eq!(r[0].min_bits, 10.0);
    }

    #[test]
    fn placed_reachable_blocked_by_placed_intermediate() {
        let g = linear3();
        // CT1 and CT2 placed. From CT0, BFS stops at placed CT1: CT2 is
        // not reached through an unplaced walk.
        let r = g.placed_reachable(CtId::new(0), |ct| ct.index() >= 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].ct, CtId::new(1));
    }

    #[test]
    fn diamond_has_one_source_one_sink() {
        let mut b = TaskGraphBuilder::new();
        let s = b.add_ct("s", ResourceVec::new());
        let u = b.add_ct("u", ResourceVec::cpu(1.0));
        let v = b.add_ct("v", ResourceVec::cpu(1.0));
        let t = b.add_ct("t", ResourceVec::new());
        b.add_tt("su", s, u, 1.0).unwrap();
        b.add_tt("sv", s, v, 1.0).unwrap();
        b.add_tt("ut", u, t, 1.0).unwrap();
        b.add_tt("vt", v, t, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.sources(), &[s]);
        assert_eq!(g.sinks(), &[t]);
        assert_eq!(g.topo_order()[0], s);
        assert_eq!(*g.topo_order().last().unwrap(), t);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        // Figure 1 allows multiple TTs between a pair of CTs via G(i,i').
        let mut b = TaskGraphBuilder::new();
        let x = b.add_ct("x", ResourceVec::new());
        let y = b.add_ct("y", ResourceVec::cpu(1.0));
        b.add_tt("t1", x, y, 5.0).unwrap();
        b.add_tt("t2", x, y, 7.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.tts_between(x, y).len(), 2);
        let r = g.placed_reachable(y, |ct| ct == x);
        assert_eq!(r[0].min_bits, 5.0, "min-bits TT should be picked");
    }

    #[test]
    fn total_requirements_sum() {
        let g = linear3();
        assert_eq!(
            g.total_ct_requirement().amount(crate::ResourceKind::Cpu),
            6.0
        );
        assert_eq!(g.total_tt_bits(), 30.0);
    }
}
