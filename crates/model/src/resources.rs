//! Multi-resource requirement and capacity vectors.
//!
//! The paper associates every computation task with a *resource requirement
//! vector* `a_i^(r)` (the amount of resource type `r` needed to process one
//! data unit — e.g. CPU mega-cycles and megabytes of memory) and every NCP
//! with a capacity `C_j^(r)` per resource type (e.g. CPU Hz). Transport
//! tasks and links use the single [`ResourceKind::Bandwidth`] type.
//!
//! [`ResourceVec`] is a tiny sorted association list from [`ResourceKind`]
//! to `f64`. Applications rarely use more than two or three resource types,
//! so a sorted `Vec` beats a hash map both in speed and determinism.

use std::fmt;

/// A kind of consumable resource on a network element.
///
/// `Cpu` and `Memory` apply to NCPs/CTs; `Bandwidth` applies to links/TTs.
/// `Custom(n)` supports experiments with additional resource types beyond
/// the ones the paper evaluates (Figure 12 uses CPU + memory).
///
/// # Examples
///
/// ```
/// # use sparcle_model::resources::ResourceKind;
/// assert!(ResourceKind::Cpu < ResourceKind::Memory);
/// assert_eq!(ResourceKind::Custom(3).to_string(), "custom3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ResourceKind {
    /// Processor cycles (requirements in cycles/data-unit, capacity in Hz).
    #[default]
    Cpu,
    /// Memory (requirements in bytes/data-unit, capacity in bytes/s of churn).
    Memory,
    /// Link bandwidth (requirements in bits/data-unit, capacity in bits/s).
    Bandwidth,
    /// An experiment-defined resource type.
    Custom(u8),
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => f.write_str("cpu"),
            ResourceKind::Memory => f.write_str("memory"),
            ResourceKind::Bandwidth => f.write_str("bandwidth"),
            ResourceKind::Custom(n) => write!(f, "custom{n}"),
        }
    }
}

/// A sparse vector of per-resource quantities.
///
/// Used both for task requirements (`a_i^(r)`, per data unit) and element
/// capacities (`C_j^(r)`, per second). Entries are kept sorted by kind and
/// entries with value exactly `0.0` are retained (a zero requirement is
/// meaningful: the paper models data sources as CTs "with possibly zero
/// resource requirements").
///
/// # Examples
///
/// ```
/// # use sparcle_model::resources::{ResourceKind, ResourceVec};
/// let req = ResourceVec::cpu(9880.0); // mega-cycles per image (Table II `resize`)
/// let cap = ResourceVec::cpu(3000.0); // field NCP MHz (Table I)
/// // Service rate = min over kinds of capacity / requirement:
/// assert!((cap.rate_supported(&req).unwrap() - 3000.0 / 9880.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceVec {
    entries: Vec<(ResourceKind, f64)>,
}

impl ResourceVec {
    /// Creates an empty resource vector (all quantities zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vector with a single CPU entry.
    pub fn cpu(amount: f64) -> Self {
        Self::from_entries([(ResourceKind::Cpu, amount)])
    }

    /// Creates a vector with a single memory entry.
    pub fn memory(amount: f64) -> Self {
        Self::from_entries([(ResourceKind::Memory, amount)])
    }

    /// Creates a vector with a single bandwidth entry.
    pub fn bandwidth(amount: f64) -> Self {
        Self::from_entries([(ResourceKind::Bandwidth, amount)])
    }

    /// Creates a vector with CPU and memory entries (the two computation
    /// resource types evaluated in the paper's Figure 12).
    pub fn cpu_memory(cpu: f64, memory: f64) -> Self {
        Self::from_entries([(ResourceKind::Cpu, cpu), (ResourceKind::Memory, memory)])
    }

    /// Creates a vector from `(kind, amount)` pairs.
    ///
    /// Later duplicates of a kind are summed into the earlier entry.
    ///
    /// # Panics
    ///
    /// Panics if any amount is negative, NaN, or infinite: requirements and
    /// capacities are physical quantities.
    pub fn from_entries<I: IntoIterator<Item = (ResourceKind, f64)>>(entries: I) -> Self {
        let mut v = Self::new();
        for (kind, amount) in entries {
            v.add(kind, amount);
        }
        v
    }

    /// Returns the quantity of `kind` (zero if absent).
    pub fn amount(&self, kind: ResourceKind) -> f64 {
        match self.entries.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Sets the quantity of `kind`, replacing any previous value.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn set(&mut self, kind: ResourceKind, amount: f64) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "resource amount must be finite and non-negative, got {amount}"
        );
        match self.entries.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => self.entries[i].1 = amount,
            Err(i) => self.entries.insert(i, (kind, amount)),
        }
    }

    /// Adds `amount` of `kind` to the vector.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite. Use [`Self::sub`] to
    /// remove quantity.
    pub fn add(&mut self, kind: ResourceKind, amount: f64) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "resource amount must be finite and non-negative, got {amount}"
        );
        match self.entries.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => self.entries[i].1 += amount,
            Err(i) => self.entries.insert(i, (kind, amount)),
        }
    }

    /// Subtracts `amount` of `kind`, clamping at zero.
    ///
    /// Clamping (rather than going negative) matches how residual
    /// capacities are maintained between multi-path assignment iterations:
    /// floating-point drift must not produce negative capacities.
    pub fn sub(&mut self, kind: ResourceKind, amount: f64) {
        if let Ok(i) = self.entries.binary_search_by_key(&kind, |e| e.0) {
            self.entries[i].1 = (self.entries[i].1 - amount).max(0.0);
        }
    }

    /// Adds an entire vector, entry-wise.
    pub fn add_vec(&mut self, other: &ResourceVec) {
        for &(kind, amount) in &other.entries {
            self.add(kind, amount);
        }
    }

    /// Subtracts `scale * other` entry-wise, clamping each entry at zero.
    pub fn sub_scaled(&mut self, other: &ResourceVec, scale: f64) {
        for &(kind, amount) in &other.entries {
            self.sub(kind, amount * scale);
        }
    }

    /// Returns `self + scale * other` without mutating `self`.
    pub fn plus_scaled(&self, other: &ResourceVec, scale: f64) -> ResourceVec {
        let mut out = self.clone();
        for &(kind, amount) in &other.entries {
            out.add(kind, amount * scale);
        }
        out
    }

    /// Scales every entry by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        for e in &mut self.entries {
            e.1 *= factor;
        }
    }

    /// Returns a scaled copy of this vector.
    pub fn scaled(&self, factor: f64) -> ResourceVec {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Iterates over the non-zero structure as `(kind, amount)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Returns the set of kinds present in this vector.
    pub fn kinds(&self) -> impl Iterator<Item = ResourceKind> + '_ {
        self.entries.iter().map(|e| e.0)
    }

    /// Returns `true` if no kind is present (or all amounts are zero).
    pub fn is_zero(&self) -> bool {
        self.entries.iter().all(|e| e.1 == 0.0)
    }

    /// Computes the maximum stable rate (data units per second) a server
    /// with capacity `self` can sustain for a task demanding `requirement`
    /// per data unit:
    ///
    /// `min over r present in requirement of  C^(r) / a^(r)`
    ///
    /// (the inverse of the paper's per-data-unit processing time
    /// `max_r a_i^(r) / C_j^(r)`).
    ///
    /// Returns `None` when the requirement is all-zero (the rate is
    /// unbounded — e.g. a data-source CT pinned to its host).
    /// Zero-requirement kinds are skipped; a kind required but entirely
    /// missing from the capacity yields a rate of `0.0`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sparcle_model::resources::ResourceVec;
    /// let cap = ResourceVec::cpu_memory(100.0, 50.0);
    /// let req = ResourceVec::cpu_memory(10.0, 25.0);
    /// assert_eq!(cap.rate_supported(&req), Some(2.0)); // memory binds: 50/25
    /// ```
    pub fn rate_supported(&self, requirement: &ResourceVec) -> Option<f64> {
        let mut rate: Option<f64> = None;
        for &(kind, need) in &requirement.entries {
            if need == 0.0 {
                continue;
            }
            let have = self.amount(kind);
            let r = have / need;
            rate = Some(match rate {
                Some(best) => best.min(r),
                None => r,
            });
        }
        rate
    }

    /// Returns `true` if every entry of `requirement` fits within `self`
    /// (with a small relative tolerance for floating-point drift).
    pub fn covers(&self, requirement: &ResourceVec) -> bool {
        const REL_TOL: f64 = 1e-9;
        requirement.entries.iter().all(|&(kind, need)| {
            let have = self.amount(kind);
            have + REL_TOL * need.max(1.0) >= need
        })
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (kind, amount)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{kind}: {amount}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(ResourceKind, f64)> for ResourceVec {
    fn from_iter<I: IntoIterator<Item = (ResourceKind, f64)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

impl Extend<(ResourceKind, f64)> for ResourceVec {
    fn extend<I: IntoIterator<Item = (ResourceKind, f64)>>(&mut self, iter: I) {
        for (kind, amount) in iter {
            self.add(kind, amount);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector_is_zero() {
        let v = ResourceVec::new();
        assert!(v.is_zero());
        assert_eq!(v.amount(ResourceKind::Cpu), 0.0);
        assert_eq!(v.to_string(), "{}");
    }

    #[test]
    fn add_accumulates_and_sorts() {
        let mut v = ResourceVec::new();
        v.add(ResourceKind::Memory, 2.0);
        v.add(ResourceKind::Cpu, 1.0);
        v.add(ResourceKind::Cpu, 3.0);
        assert_eq!(v.amount(ResourceKind::Cpu), 4.0);
        assert_eq!(v.amount(ResourceKind::Memory), 2.0);
        let kinds: Vec<_> = v.kinds().collect();
        assert_eq!(kinds, vec![ResourceKind::Cpu, ResourceKind::Memory]);
    }

    #[test]
    fn sub_clamps_at_zero() {
        let mut v = ResourceVec::cpu(1.0);
        v.sub(ResourceKind::Cpu, 5.0);
        assert_eq!(v.amount(ResourceKind::Cpu), 0.0);
        // Subtracting an absent kind is a no-op.
        v.sub(ResourceKind::Memory, 1.0);
        assert_eq!(v.amount(ResourceKind::Memory), 0.0);
    }

    #[test]
    fn rate_supported_takes_min_over_kinds() {
        let cap = ResourceVec::cpu_memory(100.0, 30.0);
        let req = ResourceVec::cpu_memory(10.0, 10.0);
        assert_eq!(cap.rate_supported(&req), Some(3.0));
    }

    #[test]
    fn rate_supported_none_for_zero_requirement() {
        let cap = ResourceVec::cpu(100.0);
        assert_eq!(cap.rate_supported(&ResourceVec::new()), None);
        assert_eq!(cap.rate_supported(&ResourceVec::cpu(0.0)), None);
    }

    #[test]
    fn rate_supported_zero_when_kind_missing() {
        let cap = ResourceVec::cpu(100.0);
        let req = ResourceVec::memory(1.0);
        assert_eq!(cap.rate_supported(&req), Some(0.0));
    }

    #[test]
    fn covers_with_tolerance() {
        let cap = ResourceVec::cpu(1.0);
        let mut req = ResourceVec::cpu(1.0);
        assert!(cap.covers(&req));
        req.set(ResourceKind::Cpu, 1.0 + 1e-12);
        assert!(cap.covers(&req), "tiny overshoot should be tolerated");
        req.set(ResourceKind::Cpu, 1.1);
        assert!(!cap.covers(&req));
    }

    #[test]
    fn plus_scaled_and_sub_scaled_are_inverse() {
        let base = ResourceVec::cpu_memory(10.0, 20.0);
        let delta = ResourceVec::cpu_memory(1.0, 2.0);
        let mut bumped = base.plus_scaled(&delta, 3.0);
        assert_eq!(bumped.amount(ResourceKind::Cpu), 13.0);
        bumped.sub_scaled(&delta, 3.0);
        assert_eq!(bumped.amount(ResourceKind::Cpu), 10.0);
        assert_eq!(bumped.amount(ResourceKind::Memory), 20.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amount_panics() {
        ResourceVec::cpu(-1.0);
    }

    #[test]
    fn from_iterator_collects() {
        let v: ResourceVec = [(ResourceKind::Cpu, 1.0), (ResourceKind::Memory, 2.0)]
            .into_iter()
            .collect();
        assert_eq!(v.amount(ResourceKind::Memory), 2.0);
    }

    #[test]
    fn scaled_display() {
        let v = ResourceVec::cpu(2.0).scaled(2.5);
        assert_eq!(v.amount(ResourceKind::Cpu), 5.0);
        assert_eq!(v.to_string(), "{cpu: 5}");
    }
}
