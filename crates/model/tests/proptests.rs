#![allow(clippy::needless_range_loop)] // index loops mirror the math notation
//! Property-based tests for the SPARCLE data models.

use proptest::prelude::*;
use sparcle_model::{
    CapacityMap, CtId, LinkId, LoadMap, NcpId, NetworkBuilder, Placement, ResourceKind,
    ResourceVec, TaskGraphBuilder,
};

/// Strategy: a random DAG built by only adding forward edges over a random
/// vertex order (guarantees acyclicity by construction), then connected by
/// a spine so `build()` accepts it.
fn arb_dag(max_cts: usize) -> impl Strategy<Value = sparcle_model::TaskGraph> {
    (2..=max_cts)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0..n, 0..n, 1.0f64..1000.0), 0..n * 2);
            let reqs = proptest::collection::vec(0.0f64..500.0, n);
            (Just(n), extra, reqs)
        })
        .prop_map(|(n, extra, reqs)| {
            let mut b = TaskGraphBuilder::new();
            let cts: Vec<_> = (0..n)
                .map(|i| b.add_ct(format!("ct{i}"), ResourceVec::cpu(reqs[i])))
                .collect();
            // Spine guaranteeing weak connectivity and at least one
            // source/sink structure.
            for w in cts.windows(2) {
                b.add_tt("spine", w[0], w[1], 64.0).unwrap();
            }
            for (a, bb, bits) in extra {
                if a < bb {
                    b.add_tt("extra", cts[a], cts[bb], bits).unwrap();
                }
            }
            b.build().expect("forward-edge construction is a DAG")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random forward-edge graphs always validate as DAGs, with a
    /// consistent topological order.
    #[test]
    fn random_dags_topologically_ordered(graph in arb_dag(10)) {
        let topo = graph.topo_order();
        prop_assert_eq!(topo.len(), graph.ct_count());
        // position[ct] strictly increases along every TT.
        let mut pos = vec![0usize; graph.ct_count()];
        for (i, ct) in topo.iter().enumerate() {
            pos[ct.index()] = i;
        }
        for tt in graph.tt_ids() {
            let t = graph.tt(tt);
            prop_assert!(pos[t.from().index()] < pos[t.to().index()]);
        }
    }

    /// Sources have no in-edges, sinks no out-edges, and both sets are
    /// non-empty in any DAG.
    #[test]
    fn sources_and_sinks_consistent(graph in arb_dag(10)) {
        prop_assert!(!graph.sources().is_empty());
        prop_assert!(!graph.sinks().is_empty());
        for &s in graph.sources() {
            prop_assert!(graph.in_edges(s).is_empty());
        }
        for &s in graph.sinks() {
            prop_assert!(graph.out_edges(s).is_empty());
        }
    }

    /// placed_reachable returns only placed CTs, never the query CT, and
    /// for a fully-placed graph it contains exactly the direct neighbors.
    #[test]
    fn placed_reachable_is_sound(graph in arb_dag(8), query in 0u32..8) {
        let query = CtId::new(query % graph.ct_count() as u32);
        // Everyone except the query is placed.
        let reach = graph.placed_reachable(query, |ct| ct != query);
        let mut neighbors: Vec<CtId> = graph
            .incident_edges(query)
            .map(|tt| graph.tt(tt).other_endpoint(query).unwrap())
            .collect();
        neighbors.sort();
        neighbors.dedup();
        let got: Vec<CtId> = reach.iter().map(|r| r.ct).collect();
        prop_assert_eq!(got, neighbors);
        for r in &reach {
            prop_assert!(r.ct != query);
            // The reported min_bits is attainable by some direct TT.
            let best_direct = graph
                .tts_between(query, r.ct)
                .iter()
                .map(|&tt| graph.tt(tt).bits_per_unit())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(r.min_bits <= best_direct + 1e-9);
        }
    }

    /// ResourceVec add/sub/scale preserve non-negativity and the amount
    /// accessor agrees with the iterator view.
    #[test]
    fn resource_vec_arithmetic(
        pairs in proptest::collection::vec((0u8..4, 0.0f64..1e6), 0..12),
        scale in 0.0f64..10.0,
    ) {
        let mut v = ResourceVec::new();
        for &(k, amt) in &pairs {
            v.add(ResourceKind::Custom(k), amt);
        }
        v.scale(scale);
        for (kind, amount) in v.iter() {
            prop_assert!(amount >= 0.0);
            prop_assert_eq!(v.amount(kind), amount);
        }
        // Subtracting everything leaves zero.
        let snapshot: Vec<_> = v.iter().collect();
        for (kind, amount) in snapshot {
            v.sub(kind, amount);
        }
        prop_assert!(v.is_zero());
    }

    /// rate_supported is monotone: more capacity never lowers the rate;
    /// more requirement never raises it.
    #[test]
    fn rate_supported_monotone(c in 1.0f64..1e6, a in 1.0f64..1e6, extra in 0.0f64..1e6) {
        let cap = ResourceVec::cpu(c);
        let cap_more = ResourceVec::cpu(c + extra);
        let req = ResourceVec::cpu(a);
        let req_more = ResourceVec::cpu(a + extra);
        let base = cap.rate_supported(&req).unwrap();
        prop_assert!(cap_more.rate_supported(&req).unwrap() >= base - 1e-12);
        prop_assert!(cap.rate_supported(&req_more).unwrap() <= base + 1e-12);
    }
}

/// Strategy-free deterministic helper: build a line network of `n` NCPs.
fn line_network(n: usize, cpu: f64, bw: f64) -> sparcle_model::Network {
    let mut b = NetworkBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_ncp(format!("n{i}"), ResourceVec::cpu(cpu)))
        .collect();
    for w in ids.windows(2) {
        b.add_link("l", w[0], w[1], bw).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// subtract_load followed by add_load restores capacities (within
    /// floating-point tolerance), for random loads.
    #[test]
    fn capacity_subtract_add_roundtrip(
        n in 2usize..6,
        cpu_loads in proptest::collection::vec(0.0f64..50.0, 6),
        bits in proptest::collection::vec(0.0f64..50.0, 5),
        rate in 0.0f64..1.0,
    ) {
        let net = line_network(n, 1e4, 1e4);
        let mut load = LoadMap::zeroed(&net);
        for i in 0..n {
            load.add_ct_load(NcpId::new(i as u32), &ResourceVec::cpu(cpu_loads[i]));
        }
        for i in 0..n - 1 {
            load.add_tt_load(LinkId::new(i as u32), bits[i]);
        }
        let orig = CapacityMap::full(&net);
        let mut cap = orig.clone();
        cap.subtract_load(&load, rate);
        cap.add_load(&load, rate);
        for id in net.ncp_ids() {
            let a = cap.ncp(id).amount(ResourceKind::Cpu);
            let b = orig.ncp(id).amount(ResourceKind::Cpu);
            prop_assert!((a - b).abs() < 1e-6);
        }
        for id in net.link_ids() {
            prop_assert!((cap.link(id) - orig.link(id)).abs() < 1e-6);
        }
    }

    /// The bottleneck rate equals the minimum over loaded elements of the
    /// per-element supported rate, recomputed naively.
    #[test]
    fn bottleneck_rate_is_elementwise_min(
        n in 2usize..6,
        cpu_loads in proptest::collection::vec(0.1f64..50.0, 6),
        bits in proptest::collection::vec(0.1f64..50.0, 5),
    ) {
        let net = line_network(n, 100.0, 100.0);
        let mut load = LoadMap::zeroed(&net);
        for i in 0..n {
            load.add_ct_load(NcpId::new(i as u32), &ResourceVec::cpu(cpu_loads[i]));
        }
        for i in 0..n - 1 {
            load.add_tt_load(LinkId::new(i as u32), bits[i]);
        }
        let cap = CapacityMap::full(&net);
        let got = cap.bottleneck_rate(&load);
        let mut expect = f64::INFINITY;
        for i in 0..n {
            expect = expect.min(100.0 / cpu_loads[i]);
        }
        for b in bits.iter().take(n - 1) {
            expect = expect.min(100.0 / b);
        }
        prop_assert!((got - expect).abs() < 1e-9 * expect.max(1.0));
    }

    /// A placement's load map puts each TT's bits on every route link and
    /// bottleneck scoring matches manual math on a line network.
    #[test]
    fn placement_on_line_network(
        hops in 1usize..5,
        req_a in 0.5f64..20.0,
        req_b in 0.5f64..20.0,
        bits in 1.0f64..200.0,
    ) {
        let n = hops + 1;
        let net = line_network(n, 100.0, 1000.0);
        let mut tb = TaskGraphBuilder::new();
        let a = tb.add_ct("a", ResourceVec::cpu(req_a));
        let b = tb.add_ct("b", ResourceVec::cpu(req_b));
        let tt = tb.add_tt("ab", a, b, bits).unwrap();
        let graph = tb.build().unwrap();

        let mut p = Placement::empty(&graph);
        p.place_ct(a, NcpId::new(0));
        p.place_ct(b, NcpId::new(hops as u32));
        p.route_tt(tt, (0..hops as u32).map(LinkId::new).collect());
        p.validate(&graph, &net).unwrap();

        let rate = p.bottleneck_rate(&graph, &net, &net.capacity_map());
        let expect = (100.0 / req_a).min(100.0 / req_b).min(1000.0 / bits);
        prop_assert!((rate - expect).abs() < 1e-9 * expect.max(1.0));
    }
}
