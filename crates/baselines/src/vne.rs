//! The VNE baseline \[12\]: topology-aware node ranking (NodeRank).
//!
//! Cheng et al. embed virtual networks by computing a Markov-chain
//! ranking of nodes — a PageRank-style score seeded by each node's
//! `CPU × Σ adjacent bandwidth` — for both the virtual graph (here: the
//! task graph, with `requirement × Σ incident TT bits`) and the
//! substrate (the computing network), then mapping nodes rank-to-rank
//! and routing virtual links on shortest paths.
//!
//! The key mismatch the paper exploits: VNE treats each virtual node's
//! demand as *fixed*, so the mapping never adapts to how placement
//! changes the application's achievable rate.

use crate::Assigner;
use sparcle_core::{AssignError, AssignedPath, PlacementEngine, RoutePolicy, TraceHandle};
use sparcle_model::{Application, CapacityMap, CtId, NcpId, Network};

/// PageRank damping factor used by the NodeRank iteration.
const DAMPING: f64 = 0.85;
/// Power-iteration rounds (converges in well under 50 for these sizes).
const ROUNDS: usize = 50;

/// NodeRank-based task assignment in the style of VNE \[12\].
#[derive(Debug, Clone, Copy, Default)]
pub struct VneAssigner {
    _private: (),
}

impl VneAssigner {
    /// Creates the VNE assigner.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Power iteration of `r ← (1−d)·h + d·Wᵀr` where `W` spreads a node's
/// rank to its neighbors proportionally to the neighbors' seed scores.
fn node_rank(h: &[f64], neighbors: &[Vec<usize>]) -> Vec<f64> {
    let n = h.len();
    let total: f64 = h.iter().sum::<f64>().max(1e-300);
    let seed: Vec<f64> = h.iter().map(|&x| x / total).collect();
    let mut rank = seed.clone();
    for _ in 0..ROUNDS {
        let mut next = vec![0.0; n];
        for v in 0..n {
            let nbrs = &neighbors[v];
            if nbrs.is_empty() {
                // Dangling mass returns to the seed distribution.
                for (u, s) in seed.iter().enumerate() {
                    next[u] += rank[v] * s;
                }
                continue;
            }
            let mass: f64 = nbrs.iter().map(|&u| seed[u]).sum::<f64>().max(1e-300);
            for &u in nbrs {
                next[u] += rank[v] * seed[u] / mass;
            }
        }
        for v in 0..n {
            rank[v] = (1.0 - DAMPING) * seed[v] + DAMPING * next[v];
        }
    }
    rank
}

impl Assigner for VneAssigner {
    fn name(&self) -> &str {
        "VNE"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let graph = app.graph();
        let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;

        // Substrate ranking: seed = available CPU × Σ adjacent residual
        // bandwidth.
        let sub_h: Vec<f64> = network
            .ncp_ids()
            .map(|ncp| {
                let cpu = capacities
                    .ncp(ncp)
                    .iter()
                    .map(|(_, v)| v)
                    .fold(0.0f64, f64::max);
                let bw: f64 = network
                    .neighbors(ncp)
                    .map(|(l, _)| capacities.link(l))
                    .sum();
                cpu * bw.max(1e-12)
            })
            .collect();
        let sub_nbrs: Vec<Vec<usize>> = network
            .ncp_ids()
            .map(|ncp| network.neighbors(ncp).map(|(_, v)| v.index()).collect())
            .collect();
        let sub_rank = node_rank(&sub_h, &sub_nbrs);
        let mut ncps_by_rank: Vec<NcpId> = network.ncp_ids().collect();
        ncps_by_rank.sort_by(|&a, &b| {
            sub_rank[b.index()]
                .total_cmp(&sub_rank[a.index()])
                .then(a.cmp(&b))
        });

        // Virtual ranking: seed = requirement × Σ incident TT bits
        // (epsilon floors keep zero-requirement CTs rankable).
        let virt_h: Vec<f64> = graph
            .ct_ids()
            .map(|ct| {
                let req = graph
                    .ct(ct)
                    .requirement()
                    .iter()
                    .map(|(_, v)| v)
                    .fold(0.0f64, f64::max)
                    .max(1e-9);
                let bits: f64 = graph
                    .incident_edges(ct)
                    .map(|tt| graph.tt(tt).bits_per_unit())
                    .sum();
                req * bits.max(1e-9)
            })
            .collect();
        let virt_nbrs: Vec<Vec<usize>> = graph
            .ct_ids()
            .map(|ct| {
                graph
                    .incident_edges(ct)
                    .filter_map(|tt| graph.tt(tt).other_endpoint(ct))
                    .map(|c| c.index())
                    .collect()
            })
            .collect();
        let virt_rank = node_rank(&virt_h, &virt_nbrs);
        let mut cts_by_rank: Vec<CtId> = graph.ct_ids().collect();
        cts_by_rank.sort_by(|&a, &b| {
            virt_rank[b.index()]
                .total_cmp(&virt_rank[a.index()])
                .then(a.cmp(&b))
        });

        // Rank-to-rank greedy map: k-th ranked (unpinned) CT onto the
        // k-th ranked NCP, keeping hosts distinct while they last (the
        // VNE one-to-one constraint), then wrapping.
        let mut next_slot = 0usize;
        for ct in cts_by_rank {
            if engine.is_placed(ct) {
                continue;
            }
            let host = ncps_by_rank[next_slot % ncps_by_rank.len()];
            next_slot += 1;
            engine.commit_with(ct, host, RoutePolicy::FewestHops)?;
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    #[test]
    fn rank_prefers_resource_rich_hub() {
        // Star with a fat hub: the hub must outrank the leaves.
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(1000.0));
        for i in 0..3 {
            let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(10.0));
            nb.add_link(format!("l{i}"), hub, leaf, 100.0).unwrap();
        }
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let h: Vec<f64> = net
            .ncp_ids()
            .map(|ncp| {
                let cpu = caps.ncp(ncp).iter().map(|(_, v)| v).fold(0.0f64, f64::max);
                let bw: f64 = net.neighbors(ncp).map(|(l, _)| caps.link(l)).sum();
                cpu * bw.max(1e-12)
            })
            .collect();
        let nbrs: Vec<Vec<usize>> = net
            .ncp_ids()
            .map(|n| net.neighbors(n).map(|(_, v)| v.index()).collect())
            .collect();
        let rank = node_rank(&h, &nbrs);
        assert!(rank[0] > rank[1], "hub {} leaf {}", rank[0], rank[1]);
    }

    #[test]
    fn rank_sums_to_one() {
        let h = [1.0, 2.0, 3.0];
        let nbrs = vec![vec![1], vec![0, 2], vec![1]];
        let rank = node_rank(&h, &nbrs);
        let total: f64 = rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn produces_valid_placement() {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(10.0));
        let b = tb.add_ct("b", ResourceVec::cpu(20.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 5.0).unwrap();
        tb.add_tt("ab", a, b, 5.0).unwrap();
        tb.add_tt("bt", b, t, 5.0).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(1)), (t, NcpId::new(2))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu(100.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(100.0));
        let z = nb.add_ncp("z", ResourceVec::cpu(100.0));
        nb.add_link("xy", x, y, 50.0).unwrap();
        nb.add_link("yz", y, z, 50.0).unwrap();
        let net = nb.build().unwrap();
        let path = VneAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        assert!(path.rate > 0.0);
    }
}
