//! The Random baseline: CTs assigned to uniformly random NCPs.

use crate::Assigner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_core::{AssignError, AssignedPath, PlacementEngine, RoutePolicy, TraceHandle};
use sparcle_model::{Application, CapacityMap, CtId, NcpId, Network};
use std::cell::RefCell;

/// Uniformly random CT placement (§V: "the CTs of application are
/// assigned randomly on NCPs of the network"). Deterministic per seed;
/// successive calls on the same assigner draw fresh placements.
#[derive(Debug)]
pub struct RandomAssigner {
    seed: u64,
    calls: RefCell<u64>,
}

impl RandomAssigner {
    /// Creates the random assigner with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomAssigner {
            seed,
            calls: RefCell::new(0),
        }
    }
}

impl Assigner for RandomAssigner {
    fn name(&self) -> &str {
        "Random"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let mut calls = self.calls.borrow_mut();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(*calls));
        *calls += 1;
        let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;
        let order: Vec<CtId> = engine.unplaced().collect();
        for ct in order {
            // Draw hosts until one can route to all placed reachable
            // CTs; on a connected network the first draw always works.
            let mut committed = false;
            for _ in 0..4 * network.ncp_count() {
                let host = NcpId::new(rng.gen_range(0..network.ncp_count()) as u32);
                if engine.gamma_batched(ct, host).is_some() {
                    engine.commit_with(ct, host, RoutePolicy::FewestHops)?;
                    committed = true;
                    break;
                }
            }
            if !committed {
                // Exhaustive fallback for adversarial topologies.
                let mut fallback = None;
                for h in network.ncp_ids() {
                    if engine.gamma_batched(ct, h).is_some() {
                        fallback = Some(h);
                        break;
                    }
                }
                let host = fallback.ok_or(AssignError::NoHostForCt(ct))?;
                engine.commit_with(ct, host, RoutePolicy::FewestHops)?;
            }
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    fn fixture() -> (Application, Network) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(1.0));
        let b = tb.add_ct("b", ResourceVec::cpu(1.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 1.0).unwrap();
        tb.add_tt("ab", a, b, 1.0).unwrap();
        tb.add_tt("bt", b, t, 1.0).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(10.0));
        for i in 0..4 {
            let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(10.0));
            nb.add_link(format!("l{i}"), hub, leaf, 10.0).unwrap();
        }
        (app, nb.build().unwrap())
    }

    #[test]
    fn produces_valid_placements() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let assigner = RandomAssigner::new(3);
        for _ in 0..10 {
            let path = assigner.assign(&app, &net, &caps).unwrap();
            path.placement.validate(app.graph(), &net).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let a = RandomAssigner::new(3).assign(&app, &net, &caps).unwrap();
        let b = RandomAssigner::new(3).assign(&app, &net, &caps).unwrap();
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn different_calls_explore_different_placements() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let assigner = RandomAssigner::new(3);
        let placements: Vec<_> = (0..20)
            .map(|_| assigner.assign(&app, &net, &caps).unwrap().placement)
            .collect();
        let distinct = placements
            .iter()
            .enumerate()
            .filter(|(i, p)| placements[..*i].iter().all(|q| &q != p))
            .count();
        assert!(distinct > 1, "random assigner never varied");
    }
}
