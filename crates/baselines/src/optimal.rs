//! Exhaustive optimal task assignment, for normalizing SPARCLE's rates
//! (Figures 6 and 8).
//!
//! Enumerates every CT → NCP mapping for the unpinned CTs (the pinned
//! ones are fixed), routes TTs with the same widest-path rule used by
//! SPARCLE, and keeps the placement with the best bottleneck rate. The
//! search is `O(|N|^|unpinned|)` placements, each costing a handful of
//! Dijkstras — only feasible for the small instances the paper uses it
//! on (≤ ~8 NCPs, ≤ ~6 free CTs); [`optimal_assignment`] refuses larger
//! spaces instead of silently running forever.
//!
//! Note the optimum is over CT placements given SPARCLE's sequential TT
//! routing (TTs committed in topological order); jointly optimal routing
//! is a multicommodity-flow problem outside the paper's search too.
//!
//! [`optimal_assignment`] actually runs a branch-and-bound refinement:
//! a partial placement's bottleneck rate only decreases as more tasks
//! are committed, so any prefix already at or below the incumbent's
//! rate is pruned. The result is identical to plain enumeration
//! ([`optimal_assignment_exhaustive`], kept for cross-checking) but
//! typically orders of magnitude faster.

use sparcle_core::{AssignedPath, PlacementEngine};
use sparcle_model::{Application, CapacityMap, CtId, NcpId, Network};
use std::error::Error;
use std::fmt;

/// Default cap on the number of enumerated placements.
pub const DEFAULT_SEARCH_LIMIT: u64 = 3_000_000;

/// The exhaustive search refused to run or found nothing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimalSearchError {
    /// `|N|^|unpinned CTs|` exceeds the limit.
    SearchSpaceTooLarge {
        /// The number of placements that would be enumerated.
        placements: f64,
        /// The configured cap.
        limit: u64,
    },
    /// No enumerated placement was feasible (e.g. disconnected pins).
    NoFeasiblePlacement,
}

impl fmt::Display for OptimalSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimalSearchError::SearchSpaceTooLarge { placements, limit } => write!(
                f,
                "exhaustive search would enumerate {placements:.3e} placements (limit {limit})"
            ),
            OptimalSearchError::NoFeasiblePlacement => f.write_str("no feasible placement exists"),
        }
    }
}

impl Error for OptimalSearchError {}

/// Finds the rate-optimal placement by branch-and-bound over CT → host
/// assignments, with the default search-space cap (applied to the
/// worst-case enumeration size).
///
/// # Errors
///
/// See [`OptimalSearchError`].
pub fn optimal_assignment(
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
) -> Result<AssignedPath, OptimalSearchError> {
    optimal_assignment_limited(app, network, capacities, DEFAULT_SEARCH_LIMIT)
}

/// [`optimal_assignment`] with an explicit worst-case search-space cap.
///
/// # Errors
///
/// See [`OptimalSearchError`].
pub fn optimal_assignment_limited(
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    limit: u64,
) -> Result<AssignedPath, OptimalSearchError> {
    let graph = app.graph();
    let free: Vec<CtId> = graph
        .topo_order()
        .iter()
        .copied()
        .filter(|ct| app.pinned_host(*ct).is_none())
        .collect();
    let n = network.ncp_count() as u64;
    let placements = (n as f64).powi(free.len() as i32);
    if placements > limit as f64 {
        return Err(OptimalSearchError::SearchSpaceTooLarge { placements, limit });
    }
    let Ok(root) = PlacementEngine::new(app, network, capacities) else {
        return Err(OptimalSearchError::NoFeasiblePlacement);
    };
    let mut best: Option<AssignedPath> = None;
    branch_and_bound(&root, &free, network, &mut best);
    best.ok_or(OptimalSearchError::NoFeasiblePlacement)
}

/// DFS with monotone-bound pruning: committing more tasks can only
/// lower the bottleneck rate, so a prefix at or below the incumbent is
/// dead.
fn branch_and_bound(
    engine: &PlacementEngine<'_>,
    remaining: &[CtId],
    network: &Network,
    best: &mut Option<AssignedPath>,
) {
    let Some((&ct, rest)) = remaining.split_first() else {
        if let Ok(path) = engine.clone().finish() {
            if best.as_ref().is_none_or(|b| path.rate > b.rate) {
                *best = Some(path);
            }
        }
        return;
    };
    for host in network.ncp_ids() {
        let mut child = engine.clone();
        if child.commit(ct, host).is_err() {
            continue;
        }
        let upper_bound = child.capacities().bottleneck_rate(child.load());
        if let Some(b) = best.as_ref() {
            if upper_bound <= b.rate {
                continue;
            }
        }
        branch_and_bound(&child, rest, network, best);
    }
}

/// Plain exhaustive enumeration, kept as the reference implementation
/// the branch-and-bound is tested against.
///
/// # Errors
///
/// See [`OptimalSearchError`].
pub fn optimal_assignment_exhaustive(
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    limit: u64,
) -> Result<AssignedPath, OptimalSearchError> {
    let graph = app.graph();
    let free: Vec<CtId> = graph
        .topo_order()
        .iter()
        .copied()
        .filter(|ct| app.pinned_host(*ct).is_none())
        .collect();
    let n = network.ncp_count() as u64;
    let placements = (n as f64).powi(free.len() as i32);
    if placements > limit as f64 {
        return Err(OptimalSearchError::SearchSpaceTooLarge { placements, limit });
    }

    let mut best: Option<AssignedPath> = None;
    let total = n.pow(free.len() as u32).max(1);
    let mut hosts = vec![NcpId::new(0); free.len()];
    for code in 0..total {
        let mut c = code;
        for h in hosts.iter_mut() {
            *h = NcpId::new((c % n) as u32);
            c /= n;
        }
        let Ok(mut engine) = PlacementEngine::new(app, network, capacities) else {
            continue;
        };
        let mut ok = true;
        for (ct, &host) in free.iter().zip(&hosts) {
            if engine.commit(*ct, host).is_err() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if let Ok(path) = engine.finish() {
            if best.as_ref().is_none_or(|b| path.rate > b.rate) {
                best = Some(path);
            }
        }
    }
    best.ok_or(OptimalSearchError::NoFeasiblePlacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_core::DynamicRankingAssigner;
    use sparcle_model::{NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    fn fixture() -> (Application, Network) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(10.0));
        let b = tb.add_ct("b", ResourceVec::cpu(20.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 4.0).unwrap();
        tb.add_tt("ab", a, b, 8.0).unwrap();
        tb.add_tt("bt", b, t, 2.0).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(30.0));
        for i in 0..3 {
            let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(60.0));
            nb.add_link(format!("l{i}"), hub, leaf, 40.0).unwrap();
        }
        (app, nb.build().unwrap())
    }

    #[test]
    fn optimum_dominates_every_roster_member() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let opt = optimal_assignment(&app, &net, &caps).unwrap();
        for assigner in crate::standard_roster(1) {
            if let Ok(path) = assigner.assign(&app, &net, &caps) {
                assert!(
                    opt.rate >= path.rate - 1e-9,
                    "{} beat the optimum: {} > {}",
                    assigner.name(),
                    path.rate,
                    opt.rate
                );
            }
        }
    }

    #[test]
    fn sparcle_is_near_optimal_here() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let opt = optimal_assignment(&app, &net, &caps).unwrap();
        let sparcle = DynamicRankingAssigner::new()
            .assign(&app, &net, &caps)
            .unwrap();
        assert!(
            sparcle.rate >= 0.8 * opt.rate,
            "sparcle {} vs opt {}",
            sparcle.rate,
            opt.rate
        );
    }

    #[test]
    fn refuses_oversized_search() {
        let (app, net) = fixture();
        let err = optimal_assignment_limited(&app, &net, &net.capacity_map(), 3);
        assert!(matches!(
            err,
            Err(OptimalSearchError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn branch_and_bound_matches_exhaustive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
        for case in BottleneckCase::SINGLE_RESOURCE {
            let mut cfg =
                ScenarioConfig::new(case, GraphKind::Linear { stages: 2 }, TopologyKind::Star);
            cfg.ncps = 5;
            let mut rng = StdRng::seed_from_u64(7 + case as u64);
            for _ in 0..6 {
                let s = cfg.sample(&mut rng).unwrap();
                let caps = s.network.capacity_map();
                let bnb = optimal_assignment(&s.app, &s.network, &caps).unwrap();
                let plain =
                    optimal_assignment_exhaustive(&s.app, &s.network, &caps, 1_000_000).unwrap();
                assert!(
                    (bnb.rate - plain.rate).abs() < 1e-9 * plain.rate.max(1.0),
                    "{case}: bnb {} vs exhaustive {}",
                    bnb.rate,
                    plain.rate
                );
            }
        }
    }

    #[test]
    fn optimal_placement_validates() {
        let (app, net) = fixture();
        let opt = optimal_assignment(&app, &net, &net.capacity_map()).unwrap();
        opt.placement.validate(app.graph(), &net).unwrap();
    }
}
