//! The GS (Greedy Sorted) and GRand (Greedy Random) baselines.
//!
//! Both reuse SPARCLE's placement machinery (incremental commits with
//! widest-path TT routing) but, per §V, place CTs "based on their
//! resource requirements … not considering the connecting TTs' resource
//! requirements":
//!
//! * **GS** orders CTs by descending resource requirement;
//! * **GRand** orders CTs uniformly at random (seeded);
//! * both pick each CT's host by compute headroom alone
//!   ([`PlacementEngine::host_rate`]) — links play no part in the
//!   choice.
//!
//! Comparing these with SPARCLE isolates the value of TT-aware dynamic
//! ranking — the paper reports a ~30 % rate gain for SPARCLE over GS in
//! the link-bottleneck case precisely because GS ignores the connecting
//! TTs. In the NCP-bottleneck case `γ` reduces to the compute term, so
//! SPARCLE and GS coincide (Figure 11(a)).

use crate::Assigner;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparcle_core::{AssignError, AssignedPath, PlacementEngine, TraceHandle};
use sparcle_model::{Application, CapacityMap, CtId, Network};
use std::cell::RefCell;

/// Places CTs in descending order of resource requirement (the largest
/// requirement over all resource kinds), each on its best (`argmax γ`)
/// host.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySorted {
    _private: (),
}

impl GreedySorted {
    /// Creates the GS assigner.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Places CTs in uniformly random order, each on its best (`argmax γ`)
/// host. Deterministic for a fixed seed (a fresh RNG is derived per
/// `assign` call, so repeated calls with the same inputs agree).
#[derive(Debug)]
pub struct GreedyRandom {
    seed: u64,
    calls: RefCell<u64>,
}

impl GreedyRandom {
    /// Creates the GRand assigner with the given seed.
    pub fn new(seed: u64) -> Self {
        GreedyRandom {
            seed,
            calls: RefCell::new(0),
        }
    }
}

fn assign_in_order(
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    order: &[CtId],
    trace: TraceHandle<'_>,
) -> Result<AssignedPath, AssignError> {
    let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;
    for &ct in order {
        if engine.is_placed(ct) {
            continue;
        }
        // Host by compute headroom only; skip hosts that would strand a
        // TT (unroutable to a placed reachable CT). The batched γ probe
        // computes routability for the whole host row at once.
        let mut best: Option<(f64, sparcle_model::NcpId)> = None;
        for host in network.ncp_ids() {
            if engine.gamma_batched(ct, host).is_none() {
                continue;
            }
            let r = engine.host_rate(ct, host);
            if best.is_none_or(|(b, _)| r > b) {
                best = Some((r, host));
            }
        }
        let (_, host) = best.ok_or(AssignError::NoHostForCt(ct))?;
        engine.commit(ct, host)?;
    }
    engine.finish()
}

impl Assigner for GreedySorted {
    fn name(&self) -> &str {
        "GS"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let graph = app.graph();
        let mut order: Vec<CtId> = graph.ct_ids().collect();
        // Largest requirement first; ties by id for determinism.
        let weight = |ct: CtId| {
            graph
                .ct(ct)
                .requirement()
                .iter()
                .map(|(_, v)| v)
                .fold(0.0f64, f64::max)
        };
        order.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)).then(a.cmp(&b)));
        assign_in_order(app, network, capacities, &order, trace)
    }
}

impl Assigner for GreedyRandom {
    fn name(&self) -> &str {
        "GRand"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let mut calls = self.calls.borrow_mut();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(*calls));
        *calls += 1;
        let mut order: Vec<CtId> = app.graph().ct_ids().collect();
        order.shuffle(&mut rng);
        assign_in_order(app, network, capacities, &order, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NcpId, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    fn fixture() -> (Application, Network) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let big = tb.add_ct("big", ResourceVec::cpu(100.0));
        let small = tb.add_ct("small", ResourceVec::cpu(1.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("a", s, big, 1.0).unwrap();
        tb.add_tt("b", big, small, 1.0).unwrap();
        tb.add_tt("c", small, t, 1.0).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(10.0));
        for i in 0..3 {
            let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(200.0));
            nb.add_link(format!("l{i}"), hub, leaf, 100.0).unwrap();
        }
        (app, nb.build().unwrap())
    }

    #[test]
    fn gs_produces_valid_placement() {
        let (app, net) = fixture();
        let path = GreedySorted::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        assert!(path.rate > 0.0);
    }

    #[test]
    fn grand_is_deterministic_for_same_seed() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let a = GreedyRandom::new(5).assign(&app, &net, &caps).unwrap();
        let b = GreedyRandom::new(5).assign(&app, &net, &caps).unwrap();
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn grand_varies_across_calls_on_same_instance() {
        // The per-call counter advances the stream so multipath-style
        // repeated invocations explore different orders.
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let g = GreedyRandom::new(5);
        let a = g.assign(&app, &net, &caps).unwrap();
        let _b = g.assign(&app, &net, &caps).unwrap();
        // No assertion on inequality (orders may coincide); just both
        // valid.
        a.placement.validate(app.graph(), &net).unwrap();
    }

    #[test]
    fn names() {
        assert_eq!(GreedySorted::new().name(), "GS");
        assert_eq!(GreedyRandom::new(0).name(), "GRand");
    }
}
