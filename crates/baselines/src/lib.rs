//! Baseline task-assignment algorithms (§V of the paper).
//!
//! SPARCLE is compared against six schedulers:
//!
//! | Name | Idea | Module |
//! |------|------|--------|
//! | T-Storm \[29\] | place CTs to minimize added inter-node traffic | [`tstorm`] |
//! | VNE \[12\] | topology-aware node ranking, rank-to-rank mapping | [`vne`] |
//! | GS | SPARCLE's host selection, CTs ordered by requirement | [`greedy`] |
//! | GRand | SPARCLE's host selection, CTs in random order | [`greedy`] |
//! | HEFT \[27\] | upward-rank priority, earliest-finish-time hosts | [`heft`] |
//! | Random | random hosts | [`random`] |
//!
//! plus the **cloud computing** reference (all compute on the cloud NCP,
//! [`cloud`]) and an **exhaustive optimal** search ([`optimal`]) used to
//! normalize Figures 6 and 8.
//!
//! All baselines emit the same [`AssignedPath`] as SPARCLE, so every
//! experiment scores them identically. Schedulers that are not
//! network-aware route their TTs by hop count
//! ([`sparcle_core::RoutePolicy::FewestHops`]), mirroring what a
//! topology-oblivious scheduler gets from the underlay; GS/GRand reuse
//! SPARCLE's widest-path routing because the paper defines them as
//! SPARCLE-with-a-different-CT-order.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cloud;
pub mod greedy;
pub mod heft;
pub mod optimal;
pub mod random;
pub mod tstorm;
pub mod vne;

pub use cloud::CloudAssigner;
pub use greedy::{GreedyRandom, GreedySorted};
pub use heft::HeftAssigner;
pub use optimal::{
    optimal_assignment, optimal_assignment_exhaustive, optimal_assignment_limited,
    OptimalSearchError,
};
pub use random::RandomAssigner;
pub use tstorm::TStormAssigner;
pub use vne::VneAssigner;

use sparcle_core::{AssignError, AssignedPath, DynamicRankingAssigner, TraceHandle};
use sparcle_model::{Application, CapacityMap, Network};

/// Common interface over SPARCLE and every baseline, for sweep harnesses.
pub trait Assigner: std::fmt::Debug {
    /// Short display name used in experiment tables ("SPARCLE",
    /// "T-Storm", …).
    fn name(&self) -> &str;

    /// Produces one task assignment path for `app` on `network` under
    /// `capacities`.
    ///
    /// # Errors
    ///
    /// Returns an [`AssignError`] when no complete placement exists
    /// (disconnected pins, unroutable TTs).
    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError>;

    /// Like [`Assigner::assign`], threading a telemetry handle through
    /// to the placement engine so commit events and γ-cache counters
    /// are recorded. The handle is zero-sized (and this method is
    /// equivalent to [`Assigner::assign`]) when the `telemetry` feature
    /// is off; every roster member overrides the default to actually
    /// thread the handle through.
    ///
    /// # Errors
    ///
    /// Same as [`Assigner::assign`].
    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let _ = trace;
        self.assign(app, network, capacities)
    }
}

impl Assigner for DynamicRankingAssigner {
    fn name(&self) -> &str {
        "SPARCLE"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        DynamicRankingAssigner::assign(self, app, network, capacities)
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_with_trace(app, network, capacities, trace)
    }
}

/// The full comparison roster of §V-B (SPARCLE + the five simulated
/// baselines), each boxed behind the [`Assigner`] trait. `seed` feeds the
/// randomized baselines.
pub fn standard_roster(seed: u64) -> Vec<Box<dyn Assigner>> {
    vec![
        Box::new(DynamicRankingAssigner::new()),
        Box::new(GreedyRandom::new(seed)),
        Box::new(GreedySorted::new()),
        Box::new(RandomAssigner::new(seed ^ 0x9e37_79b9_7f4a_7c15)),
        Box::new(TStormAssigner::new()),
        Box::new(VneAssigner::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

    /// Every roster member completes on a balanced diamond/star scenario
    /// and produces a valid placement with a positive rate.
    #[test]
    fn roster_completes_on_standard_scenario() {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        let scenario = cfg.sample(&mut StdRng::seed_from_u64(7)).unwrap();
        let caps = scenario.network.capacity_map();
        for assigner in standard_roster(7) {
            let path = assigner
                .assign(&scenario.app, &scenario.network, &caps)
                .unwrap_or_else(|e| panic!("{} failed: {e}", assigner.name()));
            path.placement
                .validate(scenario.app.graph(), &scenario.network)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", assigner.name()));
            assert!(path.rate > 0.0, "{} produced zero rate", assigner.name());
        }
    }

    /// SPARCLE should essentially never lose to roster members on its own
    /// metric, aggregated over scenarios.
    #[test]
    fn sparcle_wins_or_ties_on_average() {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = ScenarioConfig::new(
            BottleneckCase::LinkBottleneck,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        let mut sparcle_total = 0.0;
        let mut best_other_total = 0.0f64;
        for _ in 0..10 {
            let scenario = cfg.sample(&mut rng).unwrap();
            let caps = scenario.network.capacity_map();
            let roster = standard_roster(11);
            let mut sparcle = 0.0;
            let mut best_other: f64 = 0.0;
            for assigner in &roster {
                if let Ok(path) = assigner.assign(&scenario.app, &scenario.network, &caps) {
                    if assigner.name() == "SPARCLE" {
                        sparcle = path.rate;
                    } else {
                        best_other = best_other.max(path.rate);
                    }
                }
            }
            sparcle_total += sparcle;
            best_other_total += best_other;
        }
        assert!(
            sparcle_total >= 0.95 * best_other_total,
            "sparcle {sparcle_total} vs best baseline {best_other_total}"
        );
    }
}
