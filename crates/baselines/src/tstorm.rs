//! The T-Storm baseline \[29\]: traffic-aware online scheduling.
//!
//! T-Storm places executors (CTs) so as to minimize inter-node traffic,
//! assigning heavy-traffic tasks first and balancing task counts across
//! workers. Unlike SPARCLE it considers neither heterogeneous resource
//! capacities nor link bandwidths (§V: "it does not consider
//! heterogeneous resource capacities"), so here:
//!
//! * CTs are ordered by descending *incident traffic* (sum of TT bits);
//! * each NCP offers `⌈|C| / |N|⌉` executor slots (T-Storm distributes
//!   executors evenly over workers);
//! * each CT goes to the slot-available NCP minimizing the traffic it
//!   adds across node boundaries (bits of TTs to placed neighbors
//!   hosted elsewhere), tie-broken by fewest CTs already hosted, then
//!   by NCP id;
//! * TTs are routed by hop count, not by load-aware widest paths.

use crate::Assigner;
use sparcle_core::{AssignError, AssignedPath, PlacementEngine, RoutePolicy, TraceHandle};
use sparcle_model::{Application, CapacityMap, CtId, Network};

/// Traffic-aware CT placement in the style of T-Storm.
#[derive(Debug, Clone, Copy, Default)]
pub struct TStormAssigner {
    _private: (),
}

impl TStormAssigner {
    /// Creates the T-Storm assigner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Assigner for TStormAssigner {
    fn name(&self) -> &str {
        "T-Storm"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let graph = app.graph();
        let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;

        // Descending incident traffic.
        let traffic = |ct: CtId| -> f64 {
            graph
                .incident_edges(ct)
                .map(|tt| graph.tt(tt).bits_per_unit())
                .sum()
        };
        let mut order: Vec<CtId> = graph.ct_ids().collect();
        order.sort_by(|&a, &b| traffic(b).total_cmp(&traffic(a)).then(a.cmp(&b)));

        let mut hosted_count = vec![0usize; network.ncp_count()];
        for (_, host) in engine.placement().placed_cts() {
            hosted_count[host.index()] += 1;
        }
        // Even executor distribution: each worker offers a bounded
        // number of slots.
        let slots = graph.ct_count().div_ceil(network.ncp_count()).max(1);

        for ct in order {
            if engine.is_placed(ct) {
                continue;
            }
            // Added inter-node traffic if ct lands on `host`: bits of
            // TTs whose other endpoint is placed on a different NCP.
            let mut best: Option<(f64, usize, sparcle_model::NcpId)> = None;
            for host in network.ncp_ids() {
                if hosted_count[host.index()] >= slots {
                    continue;
                }
                let mut added = 0.0;
                for tt in graph.incident_edges(ct) {
                    let t = graph.tt(tt);
                    let other = t.other_endpoint(ct).expect("incident");
                    if let Some(other_host) = engine.placement().ct_host(other) {
                        if other_host != host {
                            added += t.bits_per_unit();
                        }
                    }
                }
                let key = (added, hosted_count[host.index()], host);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            // All slots exhausted can only happen when pinning already
            // over-filled hosts; fall back to ignoring slots then.
            let (_, _, host) = match best {
                Some(b) => b,
                None => {
                    let mut fallback: Option<(f64, usize, sparcle_model::NcpId)> = None;
                    for host in network.ncp_ids() {
                        let mut added = 0.0;
                        for tt in graph.incident_edges(ct) {
                            let t = graph.tt(tt);
                            let other = t.other_endpoint(ct).expect("incident");
                            if let Some(other_host) = engine.placement().ct_host(other) {
                                if other_host != host {
                                    added += t.bits_per_unit();
                                }
                            }
                        }
                        let key = (added, hosted_count[host.index()], host);
                        if fallback.is_none_or(|b| key < b) {
                            fallback = Some(key);
                        }
                    }
                    fallback.expect("network has NCPs")
                }
            };
            engine.commit_with(ct, host, RoutePolicy::FewestHops)?;
            hosted_count[host.index()] += 1;
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NcpId, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    #[test]
    fn respects_slot_limits() {
        // Three CTs over two NCPs: at most ceil(3/2) = 2 executors may
        // land on one worker, whatever the traffic says.
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(100.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 1e6).unwrap();
        tb.add_tt("at", a, t, 1e6).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let weak = nb.add_ncp("weak", ResourceVec::cpu(1.0));
        let strong = nb.add_ncp("strong", ResourceVec::cpu(1e6));
        nb.add_link("l", weak, strong, 1e9).unwrap();
        let net = nb.build().unwrap();

        let path = TStormAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        let mut counts = [0usize; 2];
        for (_, host) in path.placement.placed_cts() {
            counts[host.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2), "slot overflow: {counts:?}");
        // Both NCPs host something: the even-distribution constraint
        // forced the compute CT off the (slot-full) pinned host.
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn balances_when_traffic_ties() {
        // Two independent CTs tied to both endpoints equally: the
        // tie-break spreads them by hosted count.
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(1.0));
        let b = tb.add_ct("b", ResourceVec::cpu(1.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 1.0).unwrap();
        tb.add_tt("sb", s, b, 1.0).unwrap();
        tb.add_tt("at", a, t, 1.0).unwrap();
        tb.add_tt("bt", b, t, 1.0).unwrap();
        let app = Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(1))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu(10.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(10.0));
        nb.add_link("l", x, y, 10.0).unwrap();
        let net = nb.build().unwrap();
        let path = TStormAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        // Both compute CTs placed (somewhere); placement is complete.
        assert!(path.placement.is_complete());
    }
}
