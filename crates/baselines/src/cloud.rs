//! The cloud-computing reference: all compute CTs on one cloud NCP.
//!
//! Figure 6 compares SPARCLE-based dispersed computing against the
//! conventional deployment where every computation runs in the cloud
//! and only the data stream crosses the access network.

use crate::Assigner;
use sparcle_core::{AssignError, AssignedPath, PlacementEngine, RoutePolicy, TraceHandle};
use sparcle_model::{Application, CapacityMap, CtId, NcpId, Network};

/// Places every unpinned CT on the designated cloud NCP.
#[derive(Debug, Clone, Copy)]
pub struct CloudAssigner {
    cloud: NcpId,
}

impl CloudAssigner {
    /// Creates a cloud assigner targeting `cloud` (e.g.
    /// `sparcle_workloads::face_detection::CLOUD`).
    pub fn new(cloud: NcpId) -> Self {
        CloudAssigner { cloud }
    }

    /// The targeted cloud NCP.
    pub fn cloud(&self) -> NcpId {
        self.cloud
    }
}

impl Assigner for CloudAssigner {
    fn name(&self) -> &str {
        "Cloud"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;
        let order: Vec<CtId> = engine.unplaced().collect();
        for ct in order {
            engine.commit_with(ct, self.cloud, RoutePolicy::Widest)?;
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{CtId, QoeClass};
    use sparcle_workloads::face_detection::{
        face_detection_app, testbed_network, CLOUD, FACES_MBIT, RAW_IMAGE_MBIT,
    };

    #[test]
    fn cloud_rate_is_uplink_limited_at_low_field_bw() {
        let app = face_detection_app(QoeClass::best_effort(1.0)).unwrap();
        let net = testbed_network(0.5);
        let path = CloudAssigner::new(CLOUD)
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        // The raw 24.8 Mb image must cross a 0.5 Mbps field link, and
        // the detected-faces stream (0.088 Mb) returns over the same
        // links, so the binding load is their sum.
        let expect = 0.5 / (RAW_IMAGE_MBIT + FACES_MBIT);
        assert!(
            (path.rate - expect).abs() < 1e-9,
            "rate {} vs {}",
            path.rate,
            expect
        );
        // All compute CTs on the cloud.
        for ct in 1..=4u32 {
            assert_eq!(path.placement.ct_host(CtId::new(ct)), Some(CLOUD));
        }
    }

    #[test]
    fn cloud_rate_is_cpu_limited_at_high_field_bw() {
        let app = face_detection_app(QoeClass::best_effort(1.0)).unwrap();
        let net = testbed_network(1000.0);
        let path = CloudAssigner::new(CLOUD)
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        // Cloud CPU: 15200 MHz / 33164 MC per image.
        let expect = 15200.0 / (9880.0 + 12800.0 + 4826.0 + 5658.0);
        assert!(
            (path.rate - expect).abs() < 1e-9,
            "rate {} vs {}",
            path.rate,
            expect
        );
    }
}
