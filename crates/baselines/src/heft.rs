//! The HEFT baseline \[27\]: Heterogeneous Earliest Finish Time.
//!
//! HEFT schedules a DAG onto heterogeneous processors by (1) computing
//! each task's *upward rank* — its average execution time plus the
//! maximum over successors of average communication time + successor
//! rank — and (2) assigning tasks in descending rank order to the
//! processor that minimizes the task's earliest finish time (EFT).
//!
//! For a stream application we apply HEFT to one data unit's flow: the
//! per-unit latency of each CT on each NCP, plus per-hop transfer
//! latency for TTs crossing hosts. The resulting placement optimizes
//! *latency* of a single unit — not the sustainable *rate* — which is
//! exactly the mismatch the paper's Figure 6 exposes (HEFT does not see
//! that the bottleneck element limits throughput).

use crate::Assigner;
use sparcle_core::{
    fewest_hops_path, AssignError, AssignedPath, PlacementEngine, RoutePolicy, TraceHandle,
};
use sparcle_model::{Application, CapacityMap, CtId, Network};

/// HEFT task assignment adapted to per-data-unit latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeftAssigner {
    _private: (),
}

impl HeftAssigner {
    /// Creates the HEFT assigner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Assigner for HeftAssigner {
    fn name(&self) -> &str {
        "HEFT"
    }

    fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced(app, network, capacities, TraceHandle::none())
    }

    fn assign_traced(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        let graph = app.graph();
        let n_ncp = network.ncp_count();

        // Average execution time of each CT over all NCPs, skipping NCPs
        // that cannot run it at all (zero capacity for a needed kind).
        let avg_exec: Vec<f64> = graph
            .ct_ids()
            .map(|ct| {
                let req = graph.ct(ct).requirement();
                if req.is_zero() {
                    return 0.0;
                }
                let mut total = 0.0;
                let mut count = 0usize;
                for ncp in network.ncp_ids() {
                    if let Some(rate) = capacities.ncp(ncp).rate_supported(req) {
                        if rate > 0.0 {
                            total += 1.0 / rate;
                            count += 1;
                        }
                    }
                }
                if count == 0 {
                    f64::INFINITY
                } else {
                    total / count as f64
                }
            })
            .collect();

        // Average communication time of each TT over all links.
        let avg_bw: f64 = {
            let total: f64 = network.link_ids().map(|l| capacities.link(l)).sum();
            (total / network.link_count().max(1) as f64).max(1e-12)
        };
        let avg_comm = |tt: sparcle_model::TtId| graph.tt(tt).bits_per_unit() / avg_bw;

        // Upward ranks via reverse topological order.
        let mut rank = vec![0.0f64; graph.ct_count()];
        for &ct in graph.topo_order().iter().rev() {
            let mut best = 0.0f64;
            for &tt in graph.out_edges(ct) {
                let succ = graph.tt(tt).to();
                best = best.max(avg_comm(tt) + rank[succ.index()]);
            }
            rank[ct.index()] = avg_exec[ct.index()] + best;
        }
        let mut order: Vec<CtId> = graph.ct_ids().collect();
        order.sort_by(|&a, &b| rank[b.index()].total_cmp(&rank[a.index()]).then(a.cmp(&b)));

        // EFT host selection with per-NCP ready times.
        let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;
        let mut ready = vec![0.0f64; n_ncp];
        let mut finish = vec![0.0f64; graph.ct_count()];
        // Pinned CTs finish at their execution time.
        for (ct, host) in engine.placement().placed_cts().collect::<Vec<_>>() {
            let exec = capacities
                .ncp(host)
                .rate_supported(graph.ct(ct).requirement())
                .map_or(0.0, |r| if r > 0.0 { 1.0 / r } else { f64::INFINITY });
            finish[ct.index()] = ready[host.index()] + exec;
            ready[host.index()] = finish[ct.index()];
        }

        for ct in order {
            if engine.is_placed(ct) {
                continue;
            }
            let mut best: Option<(f64, sparcle_model::NcpId)> = None;
            for host in network.ncp_ids() {
                let exec = match capacities
                    .ncp(host)
                    .rate_supported(graph.ct(ct).requirement())
                {
                    Some(r) if r > 0.0 => 1.0 / r,
                    Some(_) => continue,
                    None => 0.0,
                };
                // Earliest start: all placed predecessors' data must
                // arrive (hop count × per-hop transfer as a latency
                // proxy).
                let mut est = ready[host.index()];
                for &tt in graph.in_edges(ct) {
                    let pred = graph.tt(tt).from();
                    if let Some(pred_host) = engine.placement().ct_host(pred) {
                        let hops = fewest_hops_path(network, pred_host, host)
                            .map_or(usize::MAX, |p| p.len());
                        if hops == usize::MAX {
                            est = f64::INFINITY;
                            break;
                        }
                        let per_hop = graph.tt(tt).bits_per_unit() / avg_bw;
                        est = est.max(finish[pred.index()] + hops as f64 * per_hop);
                    }
                }
                let eft = est + exec;
                if eft.is_finite() && best.is_none_or(|(b, _)| eft < b) {
                    best = Some((eft, host));
                }
            }
            let (eft, host) = best.ok_or(AssignError::NoHostForCt(ct))?;
            engine.commit_with(ct, host, RoutePolicy::FewestHops)?;
            finish[ct.index()] = eft;
            ready[host.index()] = ready[host.index()].max(eft);
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NcpId, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    fn chain_app() -> Application {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let a = tb.add_ct("a", ResourceVec::cpu(10.0));
        let b = tb.add_ct("b", ResourceVec::cpu(10.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sa", s, a, 2.0).unwrap();
        tb.add_tt("ab", a, b, 2.0).unwrap();
        tb.add_tt("bt", b, t, 2.0).unwrap();
        Application::new(
            tb.build().unwrap(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap()
    }

    #[test]
    fn picks_fast_processors_for_latency() {
        let app = chain_app();
        let mut nb = NetworkBuilder::new();
        let slow = nb.add_ncp("slow", ResourceVec::cpu(1.0));
        let fast = nb.add_ncp("fast", ResourceVec::cpu(1000.0));
        nb.add_link("l", slow, fast, 1e6).unwrap();
        let net = nb.build().unwrap();
        let path = HeftAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        // With enormous bandwidth, HEFT offloads both compute CTs to the
        // fast node.
        assert_eq!(
            path.placement.ct_host(sparcle_model::CtId::new(1)),
            Some(fast)
        );
        assert_eq!(
            path.placement.ct_host(sparcle_model::CtId::new(2)),
            Some(fast)
        );
    }

    #[test]
    fn heft_ignores_bandwidth_contention() {
        // HEFT optimizes one unit's latency, so it happily routes all
        // traffic over a thin link if that minimizes latency per unit.
        let app = chain_app();
        let mut nb = NetworkBuilder::new();
        let src = nb.add_ncp("src", ResourceVec::cpu(5.0));
        let far = nb.add_ncp("far", ResourceVec::cpu(1e9));
        nb.add_link("thin", src, far, 3.0).unwrap();
        let net = nb.build().unwrap();
        let path = HeftAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        assert!(path.rate > 0.0);
    }

    #[test]
    fn upward_rank_orders_chain_front_first() {
        // In a chain, the earliest task has the largest upward rank, so
        // HEFT must place "a" before "b" — observable via determinism of
        // the final placement (smoke check on a symmetric network).
        let app = chain_app();
        let mut nb = NetworkBuilder::new();
        let x = nb.add_ncp("x", ResourceVec::cpu(10.0));
        let y = nb.add_ncp("y", ResourceVec::cpu(10.0));
        nb.add_link("l", x, y, 10.0).unwrap();
        let net = nb.build().unwrap();
        let p1 = HeftAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        let p2 = HeftAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        assert_eq!(p1.placement, p2.placement);
    }
}
