//! Property-based tests over the baseline roster: every algorithm, on
//! every random scenario, produces a valid placement scored identically
//! to SPARCLE's, and the exhaustive optimum dominates all of them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::{optimal_assignment_limited, standard_roster};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

fn arb_case() -> impl Strategy<Value = BottleneckCase> {
    prop_oneof![
        Just(BottleneckCase::NcpBottleneck),
        Just(BottleneckCase::LinkBottleneck),
        Just(BottleneckCase::Balanced),
        Just(BottleneckCase::MemoryBottleneck),
    ]
}

fn arb_topology() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Star),
        Just(TopologyKind::Linear),
        Just(TopologyKind::FullyConnected),
    ]
}

fn arb_graph() -> impl Strategy<Value = GraphKind> {
    prop_oneof![
        (1usize..5).prop_map(|stages| GraphKind::Linear { stages }),
        Just(GraphKind::Diamond),
        (1usize..5).prop_map(|cts| GraphKind::Random { cts }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every roster algorithm completes with a valid placement on every
    /// scenario family, and its reported rate is self-consistent.
    #[test]
    fn roster_is_total_and_consistent(
        case in arb_case(),
        topology in arb_topology(),
        graph in arb_graph(),
        seed in 0u64..10_000,
    ) {
        let cfg = ScenarioConfig::new(case, graph, topology);
        let scenario = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        let caps = scenario.network.capacity_map();
        for algo in standard_roster(seed) {
            let path = algo
                .assign(&scenario.app, &scenario.network, &caps)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
            path.placement
                .validate(scenario.app.graph(), &scenario.network)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", algo.name()));
            let recomputed = path.placement.bottleneck_rate(
                scenario.app.graph(),
                &scenario.network,
                &caps,
            );
            prop_assert!(
                (path.rate - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
                "{}: {} vs {recomputed}",
                algo.name(),
                path.rate
            );
        }
    }

    /// The exhaustive optimum upper-bounds every algorithm, SPARCLE
    /// included, on small instances.
    #[test]
    fn optimum_dominates_roster(
        case in arb_case(),
        seed in 0u64..10_000,
    ) {
        let mut cfg = ScenarioConfig::new(
            case,
            GraphKind::Linear { stages: 2 },
            TopologyKind::Star,
        );
        cfg.ncps = 5;
        let scenario = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        let caps = scenario.network.capacity_map();
        let opt = optimal_assignment_limited(&scenario.app, &scenario.network, &caps, 100_000)
            .expect("small search space");
        for algo in standard_roster(seed) {
            if let Ok(path) = algo.assign(&scenario.app, &scenario.network, &caps) {
                prop_assert!(
                    path.rate <= opt.rate + 1e-9 * opt.rate.max(1.0),
                    "{} beat the optimum: {} > {}",
                    algo.name(),
                    path.rate,
                    opt.rate
                );
            }
        }
    }
}
