//! Proportional-fair allocator benchmarks: problem (4) solve time
//! versus the number of applications and constraint rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_alloc::num::{ConstraintRow, ConstraintSystem, ProportionalFairSolver};
use std::hint::black_box;

/// A random dense-ish system: each app loads ~30 % of the rows.
fn random_system(apps: usize, rows: usize, seed: u64) -> (ConstraintSystem, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = ConstraintSystem::new(apps);
    for _ in 0..rows {
        let coeffs: Vec<f64> = (0..apps)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    rng.gen_range(1.0..20.0)
                } else {
                    0.0
                }
            })
            .collect();
        sys.push_row(ConstraintRow {
            element: None,
            capacity: rng.gen_range(50.0..500.0),
            coeffs,
        });
    }
    // Guarantee every app is constrained.
    for i in 0..apps {
        let mut coeffs = vec![0.0; apps];
        coeffs[i] = 1.0;
        sys.push_row(ConstraintRow {
            element: None,
            capacity: 100.0,
            coeffs,
        });
    }
    let priorities: Vec<f64> = (0..apps).map(|_| rng.gen_range(0.5..4.0)).collect();
    (sys, priorities)
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("num_solver_vs_apps");
    for apps in [2usize, 4, 8, 16, 32] {
        let (sys, priorities) = random_system(apps, 60, 42);
        let solver = ProportionalFairSolver::new();
        group.bench_with_input(BenchmarkId::from_parameter(apps), &apps, |b, _| {
            b.iter(|| black_box(solver.solve(&sys, &priorities).expect("solvable")))
        });
    }
    group.finish();
}

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("num_solver_vs_rows");
    for rows in [20usize, 80, 320] {
        let (sys, priorities) = random_system(8, rows, 43);
        let solver = ProportionalFairSolver::new();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(solver.solve(&sys, &priorities).expect("solvable")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apps, bench_rows);
criterion_main!(benches);
