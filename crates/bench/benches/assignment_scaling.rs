//! Theorem 2 scaling check: Algorithm 2's running time versus network
//! size `|N|` and task-graph size `|C|`.
//!
//! The paper bounds the worst case at `O(|N|³ |C|³)`. This bench sweeps
//! both dimensions so the growth exponent can be read off the Criterion
//! report (in practice well below the worst case: the Dijkstra inside is
//! `O(|L| log |N|)`, not `O(|N|²)`, on these sparse topologies).

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{DynamicRankingAssigner, EngineScratch, PlacementEngine};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting allocation calls, so the bench can
/// assert hot paths stay allocation-free (see [`zero_alloc_check`]).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// `PlacementEngine::unplaced` returns a lazy iterator over the
/// engine's placement bitmap; iterating it in the steady state of the
/// ranking loop must never touch the allocator. This drives one full
/// Algorithm-2 assignment and asserts exactly that after every commit.
fn zero_alloc_check() {
    let mut cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 8 },
        TopologyKind::Star,
    );
    cfg.ncps = 16;
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(7))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let mut engine =
        PlacementEngine::new(&scenario.app, &scenario.network, &caps).expect("engine construction");
    let mut rounds = 0u32;
    while let Some((ct, host, _gamma)) = engine.rank_round(1).expect("rankable") {
        engine.commit(ct, host).expect("committable");
        rounds += 1;
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let n = black_box(engine.unplaced().count());
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            before, after,
            "unplaced() allocated after commit {rounds} ({n} CTs left)"
        );
    }
    assert!(rounds > 0, "the check must exercise at least one commit");
    println!("zero-alloc check: unplaced() stayed allocation-free over {rounds} commits");
}

/// The system's probe loops (γ reconcile, defrag migration what-ifs)
/// hoist one [`EngineScratch`] across thousands of assignments. This
/// asserts the hoist pays: a warm scratch-reusing assignment must issue
/// strictly fewer allocator calls than the same assignment building its
/// buffers fresh. Single-threaded cached mode keeps the counts
/// deterministic (no worker threads racing the counter).
fn scratch_reuse_check() {
    let mut cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 8 },
        TopologyKind::Star,
    );
    cfg.ncps = 16;
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(11))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let assigner = DynamicRankingAssigner::with_threads(1);
    let mut scratch = EngineScratch::default();
    // First scratch call grows the buffers to this shape; later calls
    // reuse them at capacity.
    let warm_path = assigner
        .assign_scratch_with_stats(&mut scratch, &scenario.app, &scenario.network, &caps)
        .expect("assignable")
        .0;
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let hot_path = assigner
        .assign_scratch_with_stats(&mut scratch, &scenario.app, &scenario.network, &caps)
        .expect("assignable")
        .0;
    let warm = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let cold_path = assigner
        .assign_with_stats(&scenario.app, &scenario.network, &caps)
        .expect("assignable")
        .0;
    let cold = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(black_box(warm_path).rate, black_box(&hot_path).rate);
    assert_eq!(hot_path.rate, black_box(cold_path).rate);
    assert!(
        warm < cold,
        "scratch reuse must cut allocator calls: warm {warm} vs cold {cold}"
    );
    println!("scratch reuse check: warm assignment {warm} allocator calls vs cold {cold}");
}

fn bench_network_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_network_size");
    for ncps in [4usize, 8, 16, 32] {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 4 },
            TopologyKind::Star,
        );
        cfg.ncps = ncps;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(1))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(ncps), &ncps, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

fn bench_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_graph_size");
    for stages in [2usize, 4, 8, 16] {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages },
            TopologyKind::Star,
        );
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(2))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_topology");
    for topology in TopologyKind::ALL {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        cfg.topology = topology;
        cfg.ncps = 12;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(3))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(topology), &topology, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

/// Serial-reference vs cached vs cached+parallel γ evaluation, one
/// column per topology size. All three modes commit identical placements
/// (`tests/parallel_equivalence.rs` proves it), so the columns are
/// directly comparable; the cached modes should win by well over the
/// target 3× on the largest size thanks to the batched per-row sweeps
/// and incremental invalidation.
fn bench_evaluator_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_modes");
    for ncps in [8usize, 16, 32] {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 8 },
            TopologyKind::Star,
        );
        cfg.ncps = ncps;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(4))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        // More workers than cores never helps the CPU-bound row fills,
        // so the parallel column uses the machine's real parallelism.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let modes = [
            ("serial".to_string(), DynamicRankingAssigner::reference()),
            (
                "cached".to_string(),
                DynamicRankingAssigner::with_threads(1),
            ),
            (
                format!("parallel{cores}"),
                DynamicRankingAssigner::with_threads(cores),
            ),
        ];
        for (name, assigner) in modes {
            group.bench_with_input(BenchmarkId::new(name, ncps), &ncps, |b, _| {
                b.iter(|| {
                    black_box(
                        assigner
                            .assign(&scenario.app, &scenario.network, &caps)
                            .expect("assignable"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_network_size,
    bench_graph_size,
    bench_topologies,
    bench_evaluator_modes
);

// Hand-rolled `criterion_main!` so the allocation assertion runs before
// the timed groups.
fn main() {
    zero_alloc_check();
    scratch_reuse_check();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
