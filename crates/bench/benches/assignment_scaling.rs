//! Theorem 2 scaling check: Algorithm 2's running time versus network
//! size `|N|` and task-graph size `|C|`.
//!
//! The paper bounds the worst case at `O(|N|³ |C|³)`. This bench sweeps
//! both dimensions so the growth exponent can be read off the Criterion
//! report (in practice well below the worst case: the Dijkstra inside is
//! `O(|L| log |N|)`, not `O(|N|²)`, on these sparse topologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::DynamicRankingAssigner;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::hint::black_box;

fn bench_network_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_network_size");
    for ncps in [4usize, 8, 16, 32] {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 4 },
            TopologyKind::Star,
        );
        cfg.ncps = ncps;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(1))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(ncps), &ncps, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

fn bench_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_graph_size");
    for stages in [2usize, 4, 8, 16] {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages },
            TopologyKind::Star,
        );
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(2))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_vs_topology");
    for topology in TopologyKind::ALL {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        cfg.topology = topology;
        cfg.ncps = 12;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(3))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        let assigner = DynamicRankingAssigner::new();
        group.bench_with_input(BenchmarkId::from_parameter(topology), &topology, |b, _| {
            b.iter(|| {
                black_box(
                    assigner
                        .assign(&scenario.app, &scenario.network, &caps)
                        .expect("assignable"),
                )
            })
        });
    }
    group.finish();
}

/// Serial-reference vs cached vs cached+parallel γ evaluation, one
/// column per topology size. All three modes commit identical placements
/// (`tests/parallel_equivalence.rs` proves it), so the columns are
/// directly comparable; the cached modes should win by well over the
/// target 3× on the largest size thanks to the batched per-row sweeps
/// and incremental invalidation.
fn bench_evaluator_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_modes");
    for ncps in [8usize, 16, 32] {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 8 },
            TopologyKind::Star,
        );
        cfg.ncps = ncps;
        let scenario = cfg
            .sample(&mut StdRng::seed_from_u64(4))
            .expect("valid scenario");
        let caps = scenario.network.capacity_map();
        // More workers than cores never helps the CPU-bound row fills,
        // so the parallel column uses the machine's real parallelism.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let modes = [
            ("serial".to_string(), DynamicRankingAssigner::reference()),
            (
                "cached".to_string(),
                DynamicRankingAssigner::with_threads(1),
            ),
            (
                format!("parallel{cores}"),
                DynamicRankingAssigner::with_threads(cores),
            ),
        ];
        for (name, assigner) in modes {
            group.bench_with_input(BenchmarkId::new(name, ncps), &ncps, |b, _| {
                b.iter(|| {
                    black_box(
                        assigner
                            .assign(&scenario.app, &scenario.network, &caps)
                            .expect("assignable"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_network_size,
    bench_graph_size,
    bench_topologies,
    bench_evaluator_modes
);
criterion_main!(benches);
