//! Algorithm 1 micro-benchmarks: the modified-Dijkstra widest path on
//! the paper's topologies, versus network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcle_core::widest_path::{widest_path, widest_path_brute_force};
use sparcle_model::{LoadMap, NcpId, Network};
use sparcle_workloads::{TopologyKind, TopologySpec};
use std::hint::black_box;

fn mesh(n: usize) -> Network {
    TopologySpec::uniform(TopologyKind::FullyConnected, n, 100.0, 50.0)
        .build()
        .expect("valid network")
}

fn bench_widest_path_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("widest_path_vs_mesh_size");
    for n in [8usize, 16, 32, 64] {
        let net = mesh(n);
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        // Pre-load a third of the links to exercise the load-aware
        // weights.
        for (i, link) in net.link_ids().enumerate() {
            if i % 3 == 0 {
                load.add_tt_load(link, 10.0);
            }
        }
        let from = NcpId::new(0);
        let to = NcpId::new((n - 1) as u32);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(widest_path(&net, &caps, &load, 8.0, from, to).expect("connected")))
        });
    }
    group.finish();
}

fn bench_widest_vs_brute_force(c: &mut Criterion) {
    // On a tiny mesh the brute force is feasible; this quantifies how
    // much the Dijkstra formulation buys.
    let net = mesh(7);
    let caps = net.capacity_map();
    let load = LoadMap::zeroed(&net);
    let from = NcpId::new(0);
    let to = NcpId::new(6);
    let mut group = c.benchmark_group("widest_path_algorithms");
    group.bench_function("dijkstra", |b| {
        b.iter(|| black_box(widest_path(&net, &caps, &load, 8.0, from, to)))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(widest_path_brute_force(&net, &caps, &load, 8.0, from, to)))
    });
    group.finish();
}

criterion_group!(benches, bench_widest_path_size, bench_widest_vs_brute_force);
criterion_main!(benches);
