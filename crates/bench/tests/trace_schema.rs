//! JSONL trace-schema conformance.
//!
//! Default mode: produce a real trace in-process — a seeded assignment
//! plus a flow simulation recorded through a [`JsonlRecorder`] — and
//! validate every line against the schema table in
//! `sparcle_telemetry::schema`.
//!
//! CI mode: when the `TRACE_FILE` env var is set, validate that file
//! instead. The nightly workflow runs `exp_fig6 --trace-out <path>` and
//! then this test, so the shipped binaries and the schema cannot drift
//! apart without a red build.
//!
//! By default the trace must carry placement-decision events and the
//! γ-cache counters. Traces from binaries that exercise other
//! subsystems set `EXPECT_KINDS` to a comma-separated list of event
//! types that must appear instead (the nightly `exp_churn` step uses
//! this for the `runtime_*` kinds).

#![cfg(feature = "telemetry")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{DynamicRankingAssigner, TraceHandle};
use sparcle_sim::{simulate_flows_traced, FlowSimConfig, SimApp};
use sparcle_telemetry::schema::validate_trace;
use sparcle_telemetry::{Event, JsonlRecorder, Recorder};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

/// Writes a representative trace (engine + sim events) to `path`.
fn produce_trace(path: &std::path::Path) {
    let recorder = JsonlRecorder::create(path).expect("create trace file");
    recorder.event(&Event::RunStart {
        name: "trace-schema-test".to_owned(),
    });
    let trace = TraceHandle::new(&recorder);

    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(11))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let path_assigned = DynamicRankingAssigner::new()
        .assign_with_trace(&scenario.app, &scenario.network, &caps, trace)
        .expect("feasible scenario");

    simulate_flows_traced(
        &scenario.network,
        &[SimApp {
            graph: scenario.app.graph(),
            placement: &path_assigned.placement,
            rate: 0.5 * path_assigned.rate,
        }],
        &FlowSimConfig::default(),
        trace,
    );
    recorder.finish().expect("flush trace");
}

/// Resolves `TRACE_FILE` against the test's cwd (the package dir) and,
/// failing that, the workspace root — the nightly workflow names traces
/// relative to the checkout (`target/nightly-*.jsonl`) while cargo runs
/// this binary from `crates/bench`.
fn resolve_trace_file(file: &std::path::Path) -> std::path::PathBuf {
    if file.is_relative() && !file.exists() {
        let from_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file);
        if from_root.exists() {
            return from_root;
        }
    }
    file.to_path_buf()
}

#[test]
fn every_trace_line_conforms_to_the_schema() {
    let (contents, source) = match std::env::var_os("TRACE_FILE") {
        Some(file) => (
            std::fs::read_to_string(resolve_trace_file(file.as_ref())).unwrap_or_else(|e| {
                panic!("TRACE_FILE {} unreadable: {e}", file.to_string_lossy())
            }),
            file.to_string_lossy().into_owned(),
        ),
        None => {
            let path = std::env::temp_dir()
                .join(format!("sparcle-trace-schema-{}.jsonl", std::process::id()));
            produce_trace(&path);
            let contents = std::fs::read_to_string(&path).expect("read trace back");
            let _ = std::fs::remove_file(&path);
            (contents, "in-process trace".to_owned())
        }
    };
    match validate_trace(&contents) {
        Ok(lines) => {
            assert!(
                lines >= 3,
                "{source}: suspiciously short trace ({lines} lines)"
            );
            if let Ok(kinds) = std::env::var("EXPECT_KINDS") {
                for kind in kinds.split(',').filter(|k| !k.is_empty()) {
                    assert!(
                        contents.contains(&format!("\"type\":\"{kind}\"")),
                        "{source}: no {kind} events"
                    );
                }
            } else {
                // A placement trace must carry decisions and the snapshot
                // must carry the γ-cache counters the issue promises.
                assert!(
                    contents.contains("\"type\":\"decision\""),
                    "{source}: no decision events"
                );
                assert!(
                    contents.contains("gamma_cache.hits"),
                    "{source}: snapshot lacks γ-cache counters"
                );
            }
        }
        Err((line, why)) => panic!("{source}: line {line}: {why}"),
    }
}
