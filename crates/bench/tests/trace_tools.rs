//! End-to-end trace analysis: engine-generated traces through the
//! `sparcle-trace-tools` toolkit.
//!
//! The toolkit's own tests use synthetic traces; these drive the real
//! emitters — the placement engine with a `SpanTracker` attached — and
//! assert the analysis side holds up: same-seed traces diff clean,
//! different-seed traces name the first diverging event, and `profile`
//! reconstructs the per-round span tree the engine actually opened.

#![cfg(feature = "telemetry")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{DynamicRankingAssigner, TraceHandle};
use sparcle_telemetry::{stamp_json, CollectRecorder, SpanTracker};
use sparcle_trace_tools::{diff, load_trace, profile, validate_line, validate_trace};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

/// Runs one seeded placement with telemetry (optionally spans) and
/// renders the JSONL trace exactly as `--trace-out` would write it.
fn traced_run(seed: u64, spans: bool) -> String {
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 6 },
        TopologyKind::Star,
    );
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(seed))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let recorder = CollectRecorder::new();
    let tracker = SpanTracker::new();
    let trace = if spans {
        TraceHandle::with_spans(&recorder, &tracker)
    } else {
        TraceHandle::new(&recorder)
    };
    DynamicRankingAssigner::new()
        .assign_with_trace(&scenario.app, &scenario.network, &caps, trace)
        .expect("assignable");
    let mut out = recorder.render_trace();
    let next_id = recorder.stamped_events().len() as u64 + 1;
    out.push_str(&stamp_json(recorder.snapshot().to_trace_json(), next_id, &[]).render());
    out.push('\n');
    out
}

#[test]
fn engine_traces_validate_against_the_schema() {
    let trace = traced_run(11, true);
    let count = validate_trace(&trace).expect("span-bearing engine trace validates");
    assert!(count > 4, "expected a non-trivial trace, got {count} lines");
}

#[test]
fn same_seed_traces_diff_clean_even_with_spans() {
    // Two runs, same seed: decisions are deterministic, span wall
    // clocks are not. The semantic diff must see no divergence.
    let a = load_trace(&traced_run(42, true)).unwrap();
    let b = load_trace(&traced_run(42, true)).unwrap();
    assert_eq!(a.len(), b.len(), "same-seed traces have equal event counts");
    assert_eq!(diff::diff_traces(&a, &b), None);
}

#[test]
fn different_seed_traces_name_the_first_diverging_event() {
    let a = load_trace(&traced_run(1, false)).unwrap();
    let b = load_trace(&traced_run(2, false)).unwrap();
    let divergence = diff::diff_traces(&a, &b).expect("different scenarios must diverge");
    // The report localizes the divergence: an index into the trace and
    // the kind(s) at that position.
    let report = divergence.render();
    assert!(
        report.contains(&format!("index {}", divergence.index())),
        "report must name the index: {report}"
    );
    match &divergence {
        diff::Divergence::Event { kind_a, kind_b, .. } => {
            assert!(!kind_a.is_empty() && !kind_b.is_empty());
            assert!(report.contains(kind_a.as_str()));
        }
        diff::Divergence::Length { extra_kind, .. } => {
            assert!(!extra_kind.is_empty());
            assert!(report.contains(extra_kind.as_str()));
        }
    }
}

#[test]
fn profile_reconstructs_the_engine_round_tree() {
    let text = traced_run(7, true);
    // Every span line the engine emitted is schema-valid.
    for line in text.lines().filter(|l| l.contains("\"span_")) {
        validate_line(line).expect("span event validates");
    }
    let events = load_trace(&text).unwrap();
    let forest = profile::SpanForest::build(&events);
    assert!(!forest.nodes.is_empty(), "span run must produce spans");
    assert!(
        forest.nodes.iter().all(|n| n.closed && !n.aborted),
        "successful assignment closes every span cleanly"
    );

    // The assign span is the root; ranking rounds nest under it with
    // their fill/merge children.
    let root = &forest.nodes[forest.roots[0]];
    assert_eq!(root.name, "engine.assign");
    let rounds = forest.round_spans();
    assert!(!rounds.is_empty(), "placement must open rank_round spans");
    for &round in &rounds {
        assert_eq!(forest.nodes[round].parent, Some(root.id));
        for &child in &forest.nodes[round].children {
            let name = forest.nodes[child].name.as_str();
            assert!(
                name == "engine.row_fill" || name == "engine.rank_merge",
                "unexpected child of rank_round: {name}"
            );
        }
    }

    // The self/total table covers the instrumented hot path and the
    // folded stacks nest rounds under the assign root.
    let stats = profile::aggregate(&forest);
    let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"engine.assign"));
    assert!(names.contains(&"engine.rank_round"));
    let table = profile::render_table(&stats);
    assert!(table.contains("self_ms"), "{table}");
    let folded = forest.folded_stacks();
    assert!(
        folded.contains("engine.assign;engine.rank_round"),
        "folded stacks must show the round under the root:\n{folded}"
    );
    let report = profile::render_rounds(&forest);
    assert!(
        report.contains(&format!("{} round(s)", rounds.len())),
        "{report}"
    );
}

#[test]
fn spanless_traces_stay_byte_identical() {
    // The pre-existing determinism contract: without a tracker, two
    // same-seed traces are byte-for-byte equal, spans never appear.
    let a = traced_run(5, false);
    let b = traced_run(5, false);
    assert_eq!(a, b);
    assert!(!a.contains("span_open"));
}
