//! The perf-regression gate end to end: committed baselines must exist
//! and parse, the registry must cover them, and `compare` must catch an
//! injected 2× slowdown while tolerating noise-level drift.

#![cfg(feature = "telemetry")]

use sparcle_bench::baseline::{
    baselines_dir, compare, result_path, BenchResult, BASELINE_EXPERIMENTS, DEFAULT_WALL_TOLERANCE,
    METRIC_SPECS,
};

fn load_committed(name: &str) -> BenchResult {
    let path = result_path(&baselines_dir(), name);
    let contents = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {} missing: {e}", path.display()));
    let json = sparcle_telemetry::parse_json(contents.trim())
        .unwrap_or_else(|e| panic!("{}: not JSON: {e}", path.display()));
    BenchResult::from_json(&json).unwrap_or_else(|| panic!("{}: bad shape", path.display()))
}

#[test]
fn committed_baselines_exist_for_every_registered_experiment() {
    assert!(
        BASELINE_EXPERIMENTS.len() >= 3,
        "the gate needs at least three pinned workloads"
    );
    for (name, _) in &BASELINE_EXPERIMENTS {
        let baseline = load_committed(name);
        assert_eq!(&baseline.experiment, name, "experiment tag must match file");
        assert!(
            baseline.wall_time_s > 0.0,
            "{name}: committed wall time must be positive"
        );
        assert!(
            baseline.metrics().iter().all(|m| m.is_finite()),
            "{name}: committed metrics must be finite"
        );
    }
}

#[test]
fn injected_2x_slowdown_fails_the_gate() {
    // Synthetic regression against the *committed* baseline: doubling
    // wall time must trip the gate at the default tolerance for every
    // pinned experiment.
    for (name, _) in &BASELINE_EXPERIMENTS {
        let baseline = load_committed(name);
        let mut slowed = baseline.clone();
        slowed.wall_time_s *= 2.0;
        let regressions = compare(&slowed, &baseline, DEFAULT_WALL_TOLERANCE);
        assert_eq!(
            regressions.len(),
            1,
            "{name}: a 2x slowdown must regress exactly wall_time_s"
        );
        assert_eq!(regressions[0].metric, "wall_time_s");
    }
}

#[test]
fn noise_level_drift_passes_the_gate() {
    for (name, _) in &BASELINE_EXPERIMENTS {
        let baseline = load_committed(name);
        let mut noisy = baseline.clone();
        noisy.wall_time_s *= 1.0 + DEFAULT_WALL_TOLERANCE * 0.9;
        if noisy.events_per_sec > 0.0 {
            noisy.events_per_sec /= 1.0 + DEFAULT_WALL_TOLERANCE * 0.9;
        }
        assert!(
            compare(&noisy, &baseline, DEFAULT_WALL_TOLERANCE).is_empty(),
            "{name}: within-tolerance drift must pass"
        );
    }
}

#[test]
fn deterministic_metrics_get_the_tight_band() {
    let specs: Vec<_> = METRIC_SPECS.iter().filter(|s| s.deterministic).collect();
    assert!(
        specs.iter().any(|s| s.name == "gamma_cache_hit_rate")
            && specs.iter().any(|s| s.name == "peak_queue_depth")
            && specs.iter().any(|s| s.name == "warm_inner_iters_per_solve")
            && specs.iter().any(|s| s.name == "p99_decision_ms")
            && specs.iter().any(|s| s.name == "delivered_rate_uplift"),
        "run-to-run-identical metrics must be gated deterministically"
    );
    let baseline = BenchResult {
        experiment: "t".to_owned(),
        wall_time_s: 1.0,
        gamma_cache_hit_rate: 0.5,
        events_per_sec: 1000.0,
        peak_queue_depth: 100.0,
        be_solve_ms_per_event: 0.1,
        warm_inner_iters_per_solve: 30.0,
        placements_per_sec: 250.0,
        monitor_overhead_ratio: 1.0,
        admissions_per_sec: 500.0,
        p99_decision_ms: 12.0,
        provenance_overhead_ratio: 1.0,
        delivered_rate_uplift: 1.1,
        defrag_overhead_ratio: 1.2,
    };
    let mut drifted = baseline.clone();
    drifted.peak_queue_depth = 105.0; // +5 % on a deterministic metric
    let regressions = compare(&drifted, &baseline, DEFAULT_WALL_TOLERANCE);
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].metric, "peak_queue_depth");
}
