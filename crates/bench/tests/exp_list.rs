//! Guards the experiment registry: `sparcle_bench::EXPERIMENTS` must
//! list exactly the `exp_*` binaries present in `src/bin/` (minus the
//! `exp_all` driver itself), so `exp_all` can never silently skip a
//! newly added experiment.

use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn registry_matches_binaries_on_disk() {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let on_disk: BTreeSet<String> = std::fs::read_dir(&bin_dir)
        .expect("read src/bin")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("file stem")
                .to_string_lossy()
                .into_owned()
        })
        .collect();

    let mut registered: BTreeSet<String> = sparcle_bench::EXPERIMENTS
        .iter()
        .map(|(name, _)| (*name).to_owned())
        .collect();
    assert_eq!(
        registered.len(),
        sparcle_bench::EXPERIMENTS.len(),
        "duplicate names in EXPERIMENTS"
    );
    registered.insert("exp_all".to_owned()); // the driver runs the list

    assert_eq!(
        registered, on_disk,
        "EXPERIMENTS registry out of sync with src/bin/ \
         (add new binaries to sparcle_bench::EXPERIMENTS)"
    );
}

/// The perf-baseline entry points ride the same registry: `exp_all`
/// (and anything else iterating `EXPERIMENTS`) must reach the baseline
/// runner, and every pinned baseline workload must be resolvable by
/// name so `exp_baseline run <name>` / `compare <name>` cannot drift
/// from the registered list.
#[cfg(feature = "telemetry")]
#[test]
fn registry_covers_baseline_entry_points() {
    assert!(
        sparcle_bench::EXPERIMENTS
            .iter()
            .any(|(name, _)| *name == "exp_baseline"),
        "exp_baseline must be in the experiment registry"
    );
    let baselines = &sparcle_bench::baseline::BASELINE_EXPERIMENTS;
    assert!(baselines.len() >= 3, "need at least three pinned workloads");
    let mut names: Vec<&str> = baselines.iter().map(|(name, _)| *name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        baselines.len(),
        "baseline workload names must be unique (they key BENCH_<name>.json)"
    );
}

/// Every registered binary must accept `--metrics-out` so operators
/// can point any experiment at a Prometheus scrape file. Binaries get
/// that by going through `ExpHarness` (which parses the flag); the one
/// holdout with a bespoke CLI (`exp_baseline`) must at least tolerate
/// unknown flags instead of dying on them.
#[test]
fn every_registered_binary_accepts_metrics_out() {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    for (name, _) in sparcle_bench::EXPERIMENTS {
        let source = std::fs::read_to_string(bin_dir.join(format!("{name}.rs")))
            .unwrap_or_else(|e| panic!("read {name}.rs: {e}"));
        assert!(
            source.contains("ExpHarness") || source.contains("ignoring unknown argument"),
            "{name} must parse --metrics-out via ExpHarness \
             (or explicitly tolerate unknown flags)"
        );
    }
}

#[test]
fn registry_descriptions_are_nonempty() {
    for (name, what) in sparcle_bench::EXPERIMENTS {
        assert!(
            name.starts_with("exp_"),
            "experiment binaries are exp_*: {name}"
        );
        assert!(!what.is_empty(), "{name} needs a description");
    }
}
