//! Span-instrumentation overhead bound: with a `SpanTracker` attached,
//! the traced placement path must stay within 5 % of the span-free
//! traced path on the `exp_scaling` workload.
//!
//! `#[ignore]`d because wall-clock assertions are meaningless in debug
//! builds and on loaded machines; the nightly bench-smoke job runs it
//! explicitly in release mode:
//!
//! ```sh
//! cargo test --release -p sparcle-bench --test span_overhead -- --ignored
//! ```

#![cfg(feature = "telemetry")]

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{DynamicRankingAssigner, TraceHandle};
use sparcle_telemetry::{CollectRecorder, SpanTracker};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const BATCHES: usize = 12;
const REPS_PER_BATCH: usize = 25;
const MAX_OVERHEAD: f64 = 1.05;

#[test]
#[ignore = "wall-clock bound; run in release via the nightly bench-smoke job"]
fn span_tracking_costs_at_most_five_percent() {
    // The largest exp_scaling network point: per-round ranking work
    // grows with |N| while the span count per round is constant, so
    // this is the point the ≤5 % budget is specified against.
    let cfg = {
        let mut c = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 8 },
            TopologyKind::Star,
        );
        c.ncps = 64;
        c
    };
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(1))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let assigner = DynamicRankingAssigner::new();

    let run_batch = |with_spans: bool| -> f64 {
        let recorder = CollectRecorder::new();
        let tracker = SpanTracker::new();
        let trace = if with_spans {
            TraceHandle::with_spans(&recorder, &tracker)
        } else {
            TraceHandle::new(&recorder)
        };
        let start = Instant::now();
        for _ in 0..REPS_PER_BATCH {
            assigner
                .assign_with_trace(&scenario.app, &scenario.network, &caps, trace)
                .expect("assignable");
        }
        start.elapsed().as_secs_f64()
    };

    // Warm-up, then interleave the two configurations so slow drift in
    // machine load hits both sides equally. The gate uses the *minimum*
    // per-batch ratio: true instrumentation overhead is present in every
    // batch, while scheduler noise and load spikes only inflate some of
    // them, so min(ratio) estimates the overhead floor rather than the
    // machine's worst moment.
    run_batch(false);
    run_batch(true);
    let mut ratios = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let plain = run_batch(false);
        let spanned = run_batch(true);
        ratios.push(spanned / plain);
    }

    let best = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let rendered: Vec<String> = ratios.iter().map(|r| format!("{r:.4}")).collect();
    println!(
        "span overhead per batch: [{}], min {best:.4}",
        rendered.join(", ")
    );
    assert!(
        best <= MAX_OVERHEAD,
        "span instrumentation overhead {best:.3}x (best of {BATCHES} interleaved batches of \
         {REPS_PER_BATCH} reps) exceeds the {MAX_OVERHEAD}x budget; per-batch ratios: {rendered:?}"
    );
}
