//! Shared CLI arguments and telemetry plumbing for the `exp_*` binaries.
//!
//! Every experiment binary accepts the same two flags:
//!
//! * `--trace-out <path>` — stream a JSONL telemetry trace (placement
//!   decisions, commits, sim samples, final counter snapshot) to
//!   `path`;
//! * `--trace-spans` — additionally emit hierarchical
//!   `span_open`/`span_close` events (wall-clock timed; see DESIGN.md
//!   §9 — span-bearing traces are compared semantically, not
//!   byte-for-byte);
//! * `--summary` — print the end-of-run metrics table (counters and
//!   timing histograms) to stdout;
//! * `--metrics-out <path>` — write a Prometheus-style text exposition
//!   of the final counters to `path`. Experiments that run the churn
//!   runtime's observability monitor also hand this path to
//!   [`sparcle_runtime::MonitorConfig::metrics_out`]
//!   (via [`ExpHarness::metrics_out`]), so the file is rewritten on
//!   every monitor tick during the run and finalized at `finish()`.
//!
//! Usage pattern:
//!
//! ```no_run
//! let harness = sparcle_bench::ExpHarness::new("exp_example");
//! // ... pass `harness.trace()` into assign_traced / simulate_flows_traced ...
//! harness.finish();
//! ```
//!
//! With the `telemetry` cargo feature disabled both flags are accepted
//! but inert (a note goes to stderr), so invocations keep working
//! across feature configurations.

use std::path::PathBuf;

use sparcle_core::TraceHandle;

/// The experiment flags shared by all `exp_*` binaries.
#[derive(Debug, Clone, Default)]
pub struct ExpArgs {
    /// Target of the JSONL trace (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
    /// Whether to emit hierarchical span events (`--trace-spans`).
    pub trace_spans: bool,
    /// Whether to print the end-of-run metrics table (`--summary`).
    pub summary: bool,
    /// Target of the Prometheus-style metrics exposition
    /// (`--metrics-out <path>`).
    pub metrics_out: Option<PathBuf>,
}

impl ExpArgs {
    /// Parses the process arguments. Unknown flags are reported to
    /// stderr and skipped so experiment-specific extensions stay
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` lacks its path operand.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list (testable core of
    /// [`ExpArgs::parse`]).
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` lacks its path operand.
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            if arg == "--trace-out" {
                let path = it.next().expect("--trace-out requires a path");
                out.trace_out = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--trace-out=") {
                out.trace_out = Some(PathBuf::from(path));
            } else if arg == "--trace-spans" {
                out.trace_spans = true;
            } else if arg == "--summary" {
                out.summary = true;
            } else if arg == "--metrics-out" {
                let path = it.next().expect("--metrics-out requires a path");
                out.metrics_out = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                out.metrics_out = Some(PathBuf::from(path));
            } else {
                eprintln!("note: ignoring unknown argument {arg:?}");
            }
        }
        out
    }
}

/// Declarative experiment-specific flags layered over the shared
/// [`ExpArgs`] set, so `exp_*` binaries declare what they accept instead
/// of hand-rolling an argument loop each:
///
/// ```no_run
/// use sparcle_bench::{ExpFlags, ExpHarness};
///
/// let mut flags = ExpFlags::new();
/// flags.value("ncps", "largest topology size", "5000");
/// flags.switch("fast", "skip the large sweep");
/// let parsed = flags.parse();
/// let ncps: usize = parsed.usize("ncps");
/// let harness = ExpHarness::with_args("exp_example", parsed.shared());
/// ```
///
/// Declared flags accept both `--name value` and `--name=value`
/// spellings; anything undeclared falls through to the shared
/// [`ExpArgs`] parser (which warns on true unknowns), so every
/// experiment keeps `--trace-out`/`--summary`/`--metrics-out` for free.
#[derive(Debug, Default)]
pub struct ExpFlags {
    values: Vec<(&'static str, &'static str, String)>,
    switches: Vec<(&'static str, &'static str)>,
}

impl ExpFlags {
    /// An empty declaration set (shared harness flags only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a value-carrying flag `--name <v>` with its default.
    pub fn value(&mut self, name: &'static str, help: &'static str, default: &str) -> &mut Self {
        self.values.push((name, help, default.to_owned()));
        self
    }

    /// Declares a boolean switch `--name`.
    pub fn switch(&mut self, name: &'static str, help: &'static str) -> &mut Self {
        self.switches.push((name, help));
        self
    }

    /// Parses the process arguments against the declarations.
    ///
    /// # Panics
    ///
    /// Panics when a declared value flag is given without its operand.
    pub fn parse(&self) -> ParsedFlags {
        self.parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`Self::parse`]).
    ///
    /// # Panics
    ///
    /// Panics when a declared value flag is given without its operand.
    pub fn parse_from<I, S>(&self, args: I) -> ParsedFlags
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values: std::collections::BTreeMap<&'static str, String> = self
            .values
            .iter()
            .map(|(name, _, default)| (*name, default.clone()))
            .collect();
        let mut on: std::collections::BTreeSet<&'static str> = std::collections::BTreeSet::new();
        let mut rest: Vec<String> = Vec::new();
        let mut it = args.into_iter().map(Into::into);
        'args: while let Some(arg) = it.next() {
            for (name, _, _) in &self.values {
                let flag = format!("--{name}");
                if arg == flag {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("{flag} requires a value"));
                    values.insert(name, v);
                    continue 'args;
                }
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    values.insert(name, v.to_owned());
                    continue 'args;
                }
            }
            for (name, _) in &self.switches {
                if arg == format!("--{name}") {
                    on.insert(name);
                    continue 'args;
                }
            }
            rest.push(arg);
        }
        ParsedFlags {
            values,
            on,
            shared: ExpArgs::parse_from(rest),
        }
    }
}

/// The result of [`ExpFlags::parse`]: typed access to the declared
/// flags plus the shared [`ExpArgs`] for [`ExpHarness::with_args`].
#[derive(Debug)]
pub struct ParsedFlags {
    values: std::collections::BTreeMap<&'static str, String>,
    on: std::collections::BTreeSet<&'static str>,
    shared: ExpArgs,
}

impl ParsedFlags {
    /// The raw string value of a declared flag (its default when the
    /// flag was not given).
    ///
    /// # Panics
    ///
    /// Panics when `name` was never declared — a bug in the binary.
    pub fn str(&self, name: &str) -> &str {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("flag --{name} was not declared"))
    }

    /// A declared value flag parsed as `usize`.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared flag or a non-integer value.
    pub fn usize(&self, name: &str) -> usize {
        self.str(name)
            .parse()
            .unwrap_or_else(|e| panic!("--{name} must be an integer: {e}"))
    }

    /// A declared value flag parsed as `f64`.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared flag or a non-numeric value.
    pub fn f64(&self, name: &str) -> f64 {
        self.str(name)
            .parse()
            .unwrap_or_else(|e| panic!("--{name} must be a number: {e}"))
    }

    /// Whether a declared switch was given.
    pub fn on(&self, name: &str) -> bool {
        self.on.contains(name)
    }

    /// The shared harness arguments parsed from everything the declared
    /// flags did not consume.
    pub fn shared(&self) -> ExpArgs {
        self.shared.clone()
    }
}

#[cfg(feature = "telemetry")]
enum Sink {
    /// No flag given: recording disabled, zero overhead.
    None,
    /// `--trace-out`: stream events to a JSONL file.
    Jsonl(sparcle_telemetry::JsonlRecorder),
    /// `--summary` alone: keep metrics in memory for the final table.
    Collect(sparcle_telemetry::CollectRecorder),
}

/// Per-binary harness owning the trace sink for one experiment run.
///
/// Create it first thing in `main`, thread [`ExpHarness::trace`] into
/// the instrumented entry points, and call [`ExpHarness::finish`] last.
pub struct ExpHarness {
    name: &'static str,
    summary: bool,
    metrics_out: Option<PathBuf>,
    #[cfg(feature = "telemetry")]
    sink: Sink,
    #[cfg(feature = "telemetry")]
    spans: Option<sparcle_telemetry::SpanTracker>,
}

impl std::fmt::Debug for ExpHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpHarness")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

impl ExpHarness {
    /// Builds the harness from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` names an uncreatable file.
    pub fn new(name: &'static str) -> Self {
        Self::with_args(name, ExpArgs::parse())
    }

    /// Builds the harness from pre-parsed arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` names an uncreatable file.
    pub fn with_args(name: &'static str, args: ExpArgs) -> Self {
        #[cfg(feature = "telemetry")]
        {
            use sparcle_telemetry::{CollectRecorder, Event, JsonlRecorder, Recorder};
            let sink = match &args.trace_out {
                Some(path) => Sink::Jsonl(
                    JsonlRecorder::create(path)
                        .unwrap_or_else(|e| panic!("create trace file {}: {e}", path.display())),
                ),
                None if args.summary || args.metrics_out.is_some() => {
                    Sink::Collect(CollectRecorder::new())
                }
                None => Sink::None,
            };
            let run_start = Event::RunStart {
                name: name.to_owned(),
            };
            match &sink {
                Sink::None => {}
                Sink::Jsonl(r) => r.event(&run_start),
                Sink::Collect(r) => r.event(&run_start),
            }
            let spans = (args.trace_spans && !matches!(sink, Sink::None))
                .then(sparcle_telemetry::SpanTracker::new);
            ExpHarness {
                name,
                summary: args.summary,
                metrics_out: args.metrics_out,
                sink,
                spans,
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            if args.trace_out.is_some() || args.trace_spans || args.summary {
                eprintln!(
                    "note: {name} built without the `telemetry` feature; \
                     --trace-out/--summary are inert"
                );
            }
            // --metrics-out stays live: the churn runtime's monitor
            // writes the exposition file in every build configuration.
            ExpHarness {
                name,
                summary: args.summary,
                metrics_out: args.metrics_out,
            }
        }
    }

    /// The `--metrics-out` path, when given — experiments hand this to
    /// `sparcle_runtime::MonitorConfig::metrics_out` so the file tracks
    /// the run tick by tick.
    pub fn metrics_out(&self) -> Option<&std::path::Path> {
        self.metrics_out.as_deref()
    }

    /// The handle experiment code threads into `assign_traced`,
    /// `simulate_flows_traced`, and friends.
    pub fn trace(&self) -> TraceHandle<'_> {
        #[cfg(feature = "telemetry")]
        {
            let recorder: Option<&dyn sparcle_telemetry::Recorder> = match &self.sink {
                Sink::None => None,
                Sink::Jsonl(r) => Some(r),
                Sink::Collect(r) => Some(r),
            };
            match (recorder, &self.spans) {
                (Some(r), Some(tracker)) => TraceHandle::with_spans(r, tracker),
                (Some(r), None) => TraceHandle::new(r),
                (None, _) => TraceHandle::none(),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            TraceHandle::none()
        }
    }

    /// Flushes the trace (appending the final counters-only snapshot
    /// line), prints the `--summary` table, and writes the full
    /// [`sparcle_telemetry::MetricsSnapshot`] — counters *and* timing
    /// histograms — to `target/experiments/<name>_metrics.json`.
    ///
    /// # Panics
    ///
    /// Panics when a trace or metrics write fails (experiment binaries
    /// want loud failures).
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        {
            use sparcle_telemetry::Json;
            let snapshot = match self.sink {
                Sink::None => return,
                Sink::Jsonl(r) => r.finish().expect("flush trace file"),
                Sink::Collect(r) => r.snapshot(),
            };
            if let Some(path) = &self.metrics_out {
                // Append so a monitor-written exposition (periodic
                // sparcle_* gauges) keeps its last tick; the final
                // counter series use a distinct metric name.
                use std::io::Write;
                let mut text = String::from(
                    "# HELP sparcle_counter_total Final telemetry counters of the run\n\
                     # TYPE sparcle_counter_total counter\n",
                );
                for (name, value) in &snapshot.counters {
                    text.push_str(&format!(
                        "sparcle_counter_total{{name=\"{name}\"}} {value}\n"
                    ));
                }
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(text.as_bytes()))
                    .unwrap_or_else(|e| panic!("write metrics file {}: {e}", path.display()));
                println!("wrote {}", path.display());
            }
            if self.summary {
                println!("\n=== telemetry summary: {} ===", self.name);
                println!("{}", snapshot.render_summary());
            }
            let result = Json::obj([
                ("experiment", Json::Str(self.name.to_owned())),
                ("metrics", snapshot.to_json()),
            ]);
            let dir = crate::experiments_dir();
            std::fs::create_dir_all(&dir).expect("create experiments dir");
            let path = dir.join(format!("{}_metrics.json", self.name));
            std::fs::write(&path, result.render() + "\n").expect("write metrics json");
            println!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_flags() {
        let a = ExpArgs::parse_from(["--summary", "--trace-out", "/tmp/t.jsonl"]);
        assert!(a.summary);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        let b = ExpArgs::parse_from(["--trace-out=/tmp/u.jsonl"]);
        assert!(!b.summary);
        assert_eq!(
            b.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/u.jsonl"))
        );
    }

    #[test]
    fn declared_flags_parse_with_defaults_and_both_spellings() {
        let mut flags = ExpFlags::new();
        flags.value("ncps", "size", "5000").switch("fast", "quick");
        let p = flags.parse_from(["--ncps", "128", "--fast", "--summary"]);
        assert_eq!(p.usize("ncps"), 128);
        assert!(p.on("fast"));
        assert!(p.shared().summary);
        let q = flags.parse_from(["--ncps=64"]);
        assert_eq!(q.usize("ncps"), 64);
        assert!(!q.on("fast"));
        let d = flags.parse_from(Vec::<String>::new());
        assert_eq!(d.usize("ncps"), 5000);
    }

    #[test]
    fn undeclared_flags_fall_through_to_shared_args() {
        let mut flags = ExpFlags::new();
        flags.value("budget", "displaced-seconds", "1.0");
        let p = flags.parse_from(["--budget", "0.5", "--trace-out", "/tmp/x.jsonl"]);
        assert!((p.f64("budget") - 0.5).abs() < 1e-12);
        assert_eq!(
            p.shared().trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/x.jsonl"))
        );
    }

    #[test]
    #[should_panic(expected = "--ncps requires a value")]
    fn declared_value_flag_needs_operand() {
        let mut flags = ExpFlags::new();
        flags.value("ncps", "size", "5000");
        let _ = flags.parse_from(["--ncps"]);
    }

    #[test]
    fn defaults_are_off() {
        let a = ExpArgs::parse_from(Vec::<String>::new());
        assert!(!a.summary);
        assert!(a.trace_out.is_none());
        assert!(!a.trace_spans);
    }

    #[test]
    fn parses_trace_spans() {
        let a = ExpArgs::parse_from(["--trace-spans"]);
        assert!(a.trace_spans);
    }

    #[test]
    fn parses_metrics_out_in_both_spellings() {
        let a = ExpArgs::parse_from(["--metrics-out", "/tmp/m.prom"]);
        assert_eq!(
            a.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/m.prom"))
        );
        let b = ExpArgs::parse_from(["--metrics-out=/tmp/n.prom"]);
        assert_eq!(
            b.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/n.prom"))
        );
        assert!(ExpArgs::parse_from(Vec::<String>::new())
            .metrics_out
            .is_none());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn metrics_out_writes_a_prometheus_exposition() {
        let dir = crate::experiments_dir();
        std::fs::create_dir_all(&dir).expect("create experiments dir");
        let path = dir.join("unit-test-metrics-out.prom");
        let _ = std::fs::remove_file(&path);
        let h = ExpHarness::with_args(
            "unit-test-metrics-out",
            ExpArgs {
                metrics_out: Some(path.clone()),
                ..ExpArgs::default()
            },
        );
        // --metrics-out alone must enable a collecting sink.
        assert!(h.trace().is_enabled());
        h.trace().counter("unit.widgets", 7);
        h.finish();
        let text = std::fs::read_to_string(&path).expect("exposition written");
        assert!(text.contains("# TYPE sparcle_counter_total counter"));
        assert!(text.contains("sparcle_counter_total{name=\"unit.widgets\"} 7"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("unit-test-metrics-out_metrics.json"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn trace_spans_flag_enables_span_emission() {
        let spanned = ExpHarness::with_args(
            "unit-test-spans",
            ExpArgs {
                trace_spans: true,
                summary: true,
                ..ExpArgs::default()
            },
        );
        assert!(spanned.trace().spans_enabled());
        spanned.trace().span("unit.work").finish();

        let plain = ExpHarness::with_args(
            "unit-test-nospans",
            ExpArgs {
                trace_spans: false,
                summary: true,
                ..ExpArgs::default()
            },
        );
        assert!(plain.trace().is_enabled());
        assert!(!plain.trace().spans_enabled());

        // --trace-spans without any sink stays fully disabled.
        let no_sink = ExpHarness::with_args(
            "unit-test-spans-nosink",
            ExpArgs {
                trace_spans: true,
                summary: false,
                ..ExpArgs::default()
            },
        );
        assert!(!no_sink.trace().is_enabled());
        assert!(!no_sink.trace().spans_enabled());
        // Drop harnesses without finish(): no files to clean up except
        // the two summary collectors, which finish() would write.
    }

    #[test]
    #[should_panic(expected = "requires a path")]
    fn trace_out_needs_operand() {
        let _ = ExpArgs::parse_from(["--trace-out"]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn harness_records_run_start_and_counters() {
        let args = ExpArgs {
            trace_spans: false,
            summary: true,
            ..ExpArgs::default()
        };
        let h = ExpHarness::with_args("unit-test-harness", args);
        h.trace().counter("test.counter", 3);
        assert!(h.trace().is_enabled());
        // finish() prints the summary and writes the metrics JSON.
        h.finish();
        let path = crate::experiments_dir().join("unit-test-harness_metrics.json");
        let contents = std::fs::read_to_string(&path).expect("metrics json written");
        let json = sparcle_telemetry::parse_json(contents.trim()).expect("valid json");
        assert_eq!(
            json.get("experiment").and_then(|j| j.as_str()),
            Some("unit-test-harness")
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn disabled_harness_hands_out_inert_handles() {
        let h = ExpHarness::with_args("unit-test-none", ExpArgs::default());
        assert!(!h.trace().is_enabled());
        h.finish();
    }
}
