//! Shared harness utilities for the SPARCLE experiment binaries.
//!
//! Every figure and table of the paper's evaluation section has a
//! dedicated `exp_*` binary in this crate (see `src/bin/`); each prints
//! the paper's rows/series as an ASCII table and writes a CSV under
//! `target/experiments/`. This library holds the pieces they share:
//! table rendering, order statistics, CDF extraction, and CSV output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "telemetry")]
pub mod baseline;
pub mod harness;
pub mod svg;

pub use harness::{ExpArgs, ExpFlags, ExpHarness, ParsedFlags};

/// The experiment registry: every `exp_*` binary of this crate (except
/// the `exp_all` driver itself) with a one-line description.
///
/// `exp_all` iterates this list, and `tests/exp_list.rs` asserts it
/// stays in sync with the binaries actually present in `src/bin/` — add
/// new experiments here.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "exp_fig6",
        "Tables I/II + Figure 6: face-detection testbed sweep",
    ),
    (
        "exp_fig8",
        "Figure 8: SPARCLE vs exhaustive optimum percentiles",
    ),
    ("exp_fig9", "Figure 9: energy efficiency"),
    ("exp_fig10", "Figure 10: BE/GR availability vs #paths"),
    ("exp_fig11", "Figure 11: rate CDFs across bottleneck cases"),
    ("exp_fig12", "Figure 12: multi-resource percentiles"),
    (
        "exp_fig13",
        "Figure 13: two-app proportional-fair utility CDF",
    ),
    ("exp_fig14", "Figure 14: total admitted GR rate"),
    ("exp_ablation", "Ablations: routing / ranking / prediction"),
    ("exp_fluctuation", "Extension: capacity fluctuation (§VI)"),
    ("exp_latency", "Extension: end-to-end latency analysis"),
    ("exp_diversity", "Extension: diverse multipath extraction"),
    ("exp_admission", "Extension: GR admission under churn"),
    (
        "exp_policy",
        "Extension: proportional-fair vs max-min allocation",
    ),
    (
        "exp_aimd",
        "Extension: AIMD rate control vs analytic bottleneck",
    ),
    ("exp_scaling", "Theorem 2: running-time scaling table"),
    (
        "exp_scale",
        "Scale: CSR vs legacy assignment on 5k-NCP topologies",
    ),
    (
        "exp_churn",
        "Online runtime: SLO ledger under churn, per reconcile policy",
    ),
    (
        "exp_monitor",
        "Observability plane: monitor ticks, burn rates, alert edges",
    ),
    (
        "exp_service",
        "Service plane: batched admission vs per-request under flash crowds",
    ),
    (
        "exp_defrag",
        "Defrag plane: planned-migration uplift under a budget sweep",
    ),
    (
        "exp_baseline",
        "Perf baselines: pinned workloads + regression compare gate",
    ),
];

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Simple fixed-width ASCII table renderer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "cell count mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                s.push_str(&format!(" {cell:<w$} |"));
            }
            s
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }

    /// Writes the table as CSV to `target/experiments/<name>.csv` and
    /// returns the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (experiment binaries want loud failures).
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let dir = experiments_dir();
        fs::create_dir_all(&dir).expect("create experiments dir");
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).expect("create csv");
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        )
        .expect("write header");
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            )
            .expect("write row");
        }
        path
    }
}

/// Directory experiment CSVs land in.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
}

/// The `p`-quantile (0 ≤ p ≤ 1) of `values` by linear interpolation.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean (`NaN` for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Samples the empirical CDF of `values` at `points` evenly-spaced
/// abscissae between 0 and `max`, returning `(x, F(x))` pairs.
pub fn empirical_cdf(values: &[f64], max: f64, points: usize) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    (0..=points)
        .map(|i| {
            let x = max * i as f64 / points as f64;
            let count = sorted.partition_point(|&v| v <= x);
            (x, count as f64 / sorted.len().max(1) as f64)
        })
        .collect()
}

/// Formats a ratio as a percentage-improvement string ("+38%").
pub fn improvement(ours: f64, theirs: f64) -> String {
    if theirs <= 0.0 {
        return "n/a".to_owned();
    }
    format!("{:+.0}%", 100.0 * (ours - theirs) / theirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["algo", "rate"]);
        t.row(["SPARCLE", "0.50"]);
        t.row(["T-Storm", "0.30"]);
        let s = t.render();
        assert!(s.contains("| SPARCLE | 0.50 |"), "{s}");
        assert!(s.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert_eq!(percentile(&v, 0.25), 1.75);
    }

    #[test]
    fn mean_and_empty() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let v = [0.1, 0.5, 0.9, 0.9];
        let cdf = empirical_cdf(&v, 1.0, 10);
        assert_eq!(cdf.first().unwrap().1, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn improvement_formats() {
        assert_eq!(improvement(1.5, 1.0), "+50%");
        assert_eq!(improvement(0.5, 1.0), "-50%");
        assert_eq!(improvement(1.0, 0.0), "n/a");
    }

    #[test]
    fn csv_writes() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "a,b"]);
        let path = t.write_csv("unit-test-table");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,\"a,b\"\n");
        let _ = std::fs::remove_file(path); // keep artifacts dir clean
    }
}
