//! Extension experiment: end-to-end latency of SPARCLE placements.
//!
//! The paper optimizes rate and only remarks that concentrating CTs
//! also helps latency (§V-B-2). This experiment quantifies that: for
//! the face-detection testbed placement at each field bandwidth, it
//! sweeps the offered load and reports the zero-queueing critical path,
//! the M/M/1 analytic estimate, and the simulated mean latency — for
//! SPARCLE and for the cloud-computing placement.

use sparcle_baselines::{Assigner, CloudAssigner};
use sparcle_bench::Table;
use sparcle_core::DynamicRankingAssigner;
use sparcle_model::QoeClass;
use sparcle_sim::{
    critical_path_latency, mm1_latency, simulate_flows, ArrivalProcess, FlowSimConfig, SimApp,
};
use sparcle_workloads::face_detection::{face_detection_app, testbed_network, CLOUD};

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_latency");
    let app = face_detection_app(QoeClass::best_effort(1.0)).expect("valid workload");
    let mut table = Table::new([
        "field BW (Mbps)",
        "algorithm",
        "load (× bottleneck)",
        "critical path (s)",
        "M/M/1 (s)",
        "simulated (s)",
    ]);
    println!("=== extension: end-to-end latency (face detection testbed) ===");
    for &bw in &[0.5, 22.0] {
        let network = testbed_network(bw);
        let caps = network.capacity_map();
        let algos: Vec<(&str, Box<dyn Assigner>)> = vec![
            ("SPARCLE", Box::new(DynamicRankingAssigner::new())),
            ("Cloud", Box::new(CloudAssigner::new(CLOUD))),
        ];
        for (name, algo) in &algos {
            let Ok(path) = algo.assign(&app, &network, &caps) else {
                continue;
            };
            let cp = critical_path_latency(app.graph(), &path.placement, &network);
            for &frac in &[0.3, 0.6, 0.9] {
                let rate = frac * path.rate;
                let analytic =
                    mm1_latency(app.graph(), &path.placement, &network, &path.load, rate);
                let stats = simulate_flows(
                    &network,
                    &[SimApp {
                        graph: app.graph(),
                        placement: &path.placement,
                        rate,
                    }],
                    &FlowSimConfig {
                        duration: 400.0 / rate.max(1e-3),
                        warmup: 40.0 / rate.max(1e-3),
                        arrivals: ArrivalProcess::Poisson { seed: 3 },
                    },
                );
                table.row([
                    format!("{bw}"),
                    (*name).to_owned(),
                    format!("{frac:.1}"),
                    format!("{cp:.2}"),
                    format!("{analytic:.2}"),
                    format!("{:.2}", stats[0].mean_latency),
                ]);
            }
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("extension_latency");
    println!("wrote {}", path.display());
    println!(
        "\nnote: at 0.5 Mbps the cloud placement's critical path is dominated by the\n\
         24.8 Mb raw image crossing 0.5 Mbps field links (~100 s per image!), while\n\
         SPARCLE's field-side placement keeps it in seconds — the latency side of\n\
         the paper's co-location remark."
    );
    harness.finish();
}
