//! Theorem 2 as a table: Algorithm 2 wall-clock time vs `|N|` and `|C|`.
//!
//! Criterion benches (`cargo bench`) give the rigorous numbers; this
//! binary prints a quick textual artifact with fitted growth exponents
//! so the polynomial-time claim is visible without the bench harness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_bench::{ExpHarness, Table};
use sparcle_core::{DynamicRankingAssigner, TraceHandle};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::time::Instant;

const REPS: usize = 30;

fn time_assign(cfg: &ScenarioConfig, seed: u64, trace: TraceHandle<'_>) -> f64 {
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(seed))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let assigner = DynamicRankingAssigner::new();
    // Warm up once; the warm-up run carries the trace so the decision
    // stream holds one assignment per scenario, not REPS duplicates.
    let _ = assigner.assign_with_trace(&scenario.app, &scenario.network, &caps, trace);
    let start = Instant::now();
    for _ in 0..REPS {
        let _ = assigner
            .assign(&scenario.app, &scenario.network, &caps)
            .expect("assignable");
    }
    start.elapsed().as_secs_f64() / REPS as f64
}

/// Least-squares slope of log(y) against log(x).
fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let harness = ExpHarness::new("exp_scaling");
    println!("=== Theorem 2: Algorithm 2 running time (mean of {REPS} runs) ===");

    let mut t1 = Table::new(["|N| (NCPs)", "time per assignment (µs)"]);
    let mut pts = Vec::new();
    for ncps in [4usize, 8, 16, 32, 64] {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 4 },
            TopologyKind::Star,
        );
        cfg.ncps = ncps;
        let secs = time_assign(&cfg, 1, harness.trace());
        t1.row([format!("{ncps}"), format!("{:.1}", secs * 1e6)]);
        pts.push((ncps as f64, secs));
    }
    println!("{}", t1.render());
    println!(
        "fitted exponent in |N|: {:.2} (Theorem 2 worst case: 3)",
        fitted_exponent(&pts)
    );
    t1.write_csv("thm2_vs_network_size");

    let mut t2 = Table::new(["|C| (compute CTs)", "time per assignment (µs)"]);
    let mut pts = Vec::new();
    for stages in [2usize, 4, 8, 16, 32] {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages },
            TopologyKind::Star,
        );
        let secs = time_assign(&cfg, 2, harness.trace());
        t2.row([format!("{stages}"), format!("{:.1}", secs * 1e6)]);
        pts.push((stages as f64, secs));
    }
    println!("{}", t2.render());
    println!(
        "fitted exponent in |C|: {:.2} (Theorem 2 worst case: 3)",
        fitted_exponent(&pts)
    );
    let path = t2.write_csv("thm2_vs_graph_size");
    println!("wrote {}", path.display());
    harness.finish();
}
