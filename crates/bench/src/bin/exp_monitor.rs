//! Observability-plane demo: watch one churn run through the monitor.
//!
//! Drives a calm and a stormy flash-crowd timeline over the same
//! edge/hub network with the runtime monitor enabled, then prints what
//! the observability plane saw: ticks, alert edges, the rules still
//! firing at the horizon, and the underlying SLO ledger numbers. This
//! is the smallest end-to-end exercise of DESIGN.md §12 — pair it with
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_monitor -- \
//!     --trace-out monitor.jsonl --metrics-out metrics.prom
//! cargo run --release -p sparcle-trace-tools --bin sparcle-trace -- \
//!     report monitor.jsonl
//! ```
//!
//! to get the snapshot table + alert timeline, and a Prometheus-style
//! exposition of the final gauges and counters.

use std::path::{Path, PathBuf};

use sparcle_bench::Table;
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{AlertRules, MonitorConfig, ReconcilePolicy, RuntimeConfig, SparcleRuntime};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

/// Four edge hosts and two hubs; fast links are the flaky ones.
fn demo_network(flaky: f64) -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            flaky,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            flaky / 4.0,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Every third arrival is Guaranteed-Rate; endpoints walk the edges.
fn demo_app(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1100.0, 500.0]).expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

/// Same workload-tuned detector set as `exp_churn` (the γ-cache rule
/// is off because online placements rank with fresh engines here).
fn monitor_config(metrics_out: Option<PathBuf>) -> MonitorConfig {
    MonitorConfig {
        period: 5.0,
        slots: 6,
        rules: AlertRules {
            slo_violation_budget: 0.4,
            cache_hit_floor: 0.0,
            ..AlertRules::default()
        },
        metrics_out,
    }
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_monitor");
    let horizon = 150.0;
    let trace = ArrivalTrace::FlashCrowd {
        rate: 0.8,
        burst_rate: 4.0,
        burst_start: 60.0,
        burst_end: 80.0,
    };
    let regimes = [("calm", 0.02), ("stormy", 0.10)];

    let mut table = Table::new([
        "regime",
        "ticks",
        "alert_edges",
        "firing_at_end",
        "gr_viol_s",
        "be_integral",
        "events",
    ]);
    let mut total_edges = 0u64;
    for (name, flaky) in &regimes {
        let config = RuntimeConfig {
            horizon,
            failure_seed: 0xc0de,
            hold_seed: 0x601d,
            mean_hold: 25.0,
            policy: ReconcilePolicy::GammaImpact,
            monitor: Some(monitor_config(harness.metrics_out().map(Path::to_path_buf))),
            ..RuntimeConfig::default()
        };
        let arrivals = trace.events(horizon, 0xa11);
        let mut rt = SparcleRuntime::new(demo_network(*flaky), arrivals, demo_app, config);
        let ledger = rt.run_traced(harness.trace()).clone();
        let monitor = rt.monitor().expect("monitor was configured");
        let firing = monitor.firing();
        total_edges += monitor.alerts_total();
        harness
            .trace()
            .counter("exp_monitor.alert_edges", monitor.alerts_total());
        table.row([
            (*name).to_owned(),
            monitor.ticks().to_string(),
            monitor.alerts_total().to_string(),
            if firing.is_empty() {
                "-".to_owned()
            } else {
                firing.join(",")
            },
            format!("{:.2}", ledger.total_gr_violation_seconds()),
            format!("{:.0}", ledger.be_rate_integral()),
            rt.events_processed().to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "observability plane saw {total_edges} alert edge(s) across {} regimes",
        regimes.len()
    );
    let csv = table.write_csv("exp_monitor");
    println!("wrote {}", csv.display());
    harness.finish();
}
