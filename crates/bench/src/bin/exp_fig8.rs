//! Figure 8: SPARCLE's rate as a fraction of the exhaustive optimum.
//!
//! Linear task graph with four CTs (source, two compute stages, sink —
//! the paper's "linear task graph with four CTs") on linear and
//! fully-connected networks, across the NCP-bottleneck / balanced /
//! link-bottleneck regimes. Reports the 25/50/75 percentiles of
//! `SPARCLE rate / optimal rate` over seeded random scenarios.
//!
//! Paper claim: SPARCLE "almost always finds the optimal rates" — all
//! percentiles close to 1.0.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::optimal_assignment;
use sparcle_bench::svg::BarChart;
use sparcle_bench::{percentile, Table};
use sparcle_core::DynamicRankingAssigner;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const SCENARIOS: usize = 100;
/// The branch-and-bound optimum makes 8-NCP instances cheap.
const NCPS: usize = 8;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig8");
    let sparcle = DynamicRankingAssigner::new();
    let mut table = Table::new([
        "topology",
        "case",
        "25th pct",
        "50th pct",
        "75th pct",
        "mean",
        "scenarios",
    ]);
    println!("=== Figure 8: SPARCLE rate / optimal rate ===");
    let mut chart = BarChart::new(
        "Figure 8: SPARCLE rate / optimal rate",
        "topology / case",
        "ratio",
    );
    let mut p25 = Vec::new();
    let mut p50 = Vec::new();
    let mut p75 = Vec::new();
    for topology in [TopologyKind::Linear, TopologyKind::FullyConnected] {
        for case in BottleneckCase::SINGLE_RESOURCE {
            let mut cfg = ScenarioConfig::new(case, GraphKind::Linear { stages: 2 }, topology);
            cfg.ncps = NCPS;
            let mut rng = StdRng::seed_from_u64(0x8f1u64 ^ topology as u64 ^ (case as u64) << 8);
            let mut ratios = Vec::new();
            for _ in 0..SCENARIOS {
                let scenario = cfg.sample(&mut rng).expect("valid scenario");
                let caps = scenario.network.capacity_map();
                let Ok(opt) = optimal_assignment(&scenario.app, &scenario.network, &caps) else {
                    continue;
                };
                let Ok(ours) = sparcle.assign(&scenario.app, &scenario.network, &caps) else {
                    continue;
                };
                if opt.rate > 0.0 {
                    ratios.push((ours.rate / opt.rate).min(1.0));
                }
            }
            table.row([
                topology.to_string(),
                case.to_string(),
                format!("{:.3}", percentile(&ratios, 0.25)),
                format!("{:.3}", percentile(&ratios, 0.50)),
                format!("{:.3}", percentile(&ratios, 0.75)),
                format!("{:.3}", sparcle_bench::mean(&ratios)),
                format!("{}", ratios.len()),
            ]);
            chart.category(format!("{topology}/{case}"));
            p25.push(percentile(&ratios, 0.25));
            p50.push(percentile(&ratios, 0.50));
            p75.push(percentile(&ratios, 0.75));
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("fig8_sparcle_over_optimal");
    println!("wrote {}", path.display());
    chart.series("25th pct", p25);
    chart.series("50th pct", p50);
    chart.series("75th pct", p75);
    let svg = chart.write_svg("fig8_sparcle_over_optimal");
    println!("wrote {}", svg.display());
    harness.finish();
}
