//! Scale experiment: Algorithm 2 on 5k–10k-NCP dispersed topologies.
//!
//! Sweeps two sizes of the seeded hub-and-spoke network from
//! `sparcle_workloads::scale` and times full dynamic-ranking
//! assignments under both graph representations — the legacy adjacency
//! maps and the flat CSR arrays — printing wall time per assignment,
//! placements per second, and the achieved rate. The rate bits must be
//! identical across representations (the CSR port is a pure speedup);
//! this binary asserts it on every size it touches.
//!
//! Extra flags on top of the shared harness ones:
//!
//! * `--ncps <n>` — the largest topology size (default 5000; the sweep
//!   also runs `n/2`). Nightly smoke runs pass a reduced size.
//! * `--reps <n>` — timed assignments per (size, repr) cell (default 3).

use sparcle_bench::{ExpFlags, ExpHarness, Table};
use sparcle_core::{DynamicRankingAssigner, GraphRepr};
use sparcle_workloads::ScaleSpec;
use std::time::Instant;

struct ScaleArgs {
    ncps: usize,
    reps: usize,
}

fn main() {
    let mut flags = ExpFlags::new();
    flags
        .value(
            "ncps",
            "largest topology size (the sweep also runs n/2)",
            "5000",
        )
        .value("reps", "timed assignments per (size, repr) cell", "3");
    let parsed = flags.parse();
    let args = ScaleArgs {
        ncps: parsed.usize("ncps"),
        reps: parsed.usize("reps"),
    };
    assert!(args.ncps >= 8, "--ncps must be at least 8");
    assert!(args.reps >= 1, "--reps must be at least 1");
    let harness = ExpHarness::with_args("exp_scale", parsed.shared());
    println!(
        "=== Scale: Algorithm 2 on hub-and-spoke topologies (mean of {} runs) ===",
        args.reps
    );

    let mut table = Table::new([
        "|N| (NCPs)",
        "repr",
        "time per assignment (ms)",
        "placements/s",
        "rate (Mbps)",
    ]);
    for ncps in [args.ncps / 2, args.ncps] {
        let scenario = ScaleSpec::new(ncps).build().expect("valid scale scenario");
        let caps = scenario.network.capacity_map();
        let mut rate_bits: Option<u64> = None;
        for repr in [GraphRepr::Legacy, GraphRepr::Csr] {
            let assigner = DynamicRankingAssigner::new().with_repr(repr);
            // Warm-up carries the trace so the decision stream holds one
            // assignment per (size, repr) cell, not `reps` duplicates.
            let warm = assigner
                .assign_with_trace(&scenario.app, &scenario.network, &caps, harness.trace())
                .expect("assignable");
            match rate_bits {
                None => rate_bits = Some(warm.rate.to_bits()),
                Some(bits) => assert_eq!(
                    bits,
                    warm.rate.to_bits(),
                    "graph representations must agree bit-for-bit at {ncps} NCPs"
                ),
            }
            let mut placements = 0usize;
            let start = Instant::now();
            for _ in 0..args.reps {
                let path = assigner
                    .assign(&scenario.app, &scenario.network, &caps)
                    .expect("assignable");
                placements += path.placement.ct_count();
            }
            let secs = start.elapsed().as_secs_f64();
            table.row([
                format!("{ncps}"),
                repr.to_string(),
                format!("{:.1}", secs * 1e3 / args.reps as f64),
                format!("{:.0}", placements as f64 / secs.max(1e-9)),
                format!("{:.3}", warm.rate),
            ]);
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("scale_assign_sweep");
    println!("wrote {}", path.display());
    harness.finish();
}
