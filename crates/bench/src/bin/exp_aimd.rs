//! Extension experiment: decentralized AIMD rate control converging to
//! SPARCLE's analytic rate.
//!
//! The paper's §II positions back-pressure-style decentralized rate
//! control as complementary to its centralized allocation. This
//! experiment closes the loop: SPARCLE places the face-detection
//! pipeline, then a blind AIMD source probes the placement in the
//! queueing simulator. The converged offered rate matches the analytic
//! bottleneck Algorithm 2 maximized — two entirely different routes to
//! the same number.

use sparcle_bench::svg::LineChart;
use sparcle_bench::Table;
use sparcle_core::DynamicRankingAssigner;
use sparcle_model::QoeClass;
use sparcle_sim::{run_aimd, AimdConfig};
use sparcle_workloads::face_detection::{face_detection_app, testbed_network};

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_aimd");
    let app = face_detection_app(QoeClass::best_effort(1.0)).expect("valid workload");
    let mut table = Table::new([
        "field BW (Mbps)",
        "analytic rate (img/s)",
        "AIMD converged rate",
        "ratio",
    ]);
    let mut chart = LineChart::new(
        "AIMD offered rate vs epochs (field BW 10 Mbps)",
        "control epoch",
        "offered rate (images/s)",
    );
    println!("=== extension: AIMD source control vs analytic bottleneck ===");
    for &bw in &[0.5, 10.0, 22.0] {
        let network = testbed_network(bw);
        let path = DynamicRankingAssigner::new()
            .assign(&app, &network, &network.capacity_map())
            .expect("assignable");
        let config = AimdConfig {
            initial_rate: 0.02,
            increase: 0.01,
            epoch: 600.0,
            epochs: 150,
            ..AimdConfig::default()
        };
        let trace = run_aimd(&network, app.graph(), &path.placement, &config);
        table.row([
            format!("{bw}"),
            format!("{:.4}", path.rate),
            format!("{:.4}", trace.converged_rate),
            format!("{:.2}", trace.converged_rate / path.rate),
        ]);
        if bw == 10.0 {
            chart.series(
                "offered",
                trace
                    .offered
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (i as f64, r))
                    .collect(),
            );
            chart.series(
                "analytic bottleneck",
                vec![(0.0, path.rate), (config.epochs as f64, path.rate)],
            );
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("extension_aimd");
    println!("wrote {}", path.display());
    let svg = chart.write_svg("extension_aimd");
    println!("wrote {}", svg.display());
    harness.finish();
}
