//! Figure 12: multiple computation resource types (CPU + memory).
//!
//! Diamond task graph on a star network where CTs require both CPU and
//! memory; two regimes are evaluated — NCP *memory*-bottleneck and
//! link-bottleneck — and the 25th/75th percentiles of each algorithm's
//! rate are reported.
//!
//! Paper claim: with more than one resource type, GS and VNE degrade
//! drastically (their scalar rankings cannot see the binding resource),
//! while SPARCLE's `γ` takes the min over all requirement types.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::standard_roster;
use sparcle_bench::{improvement, mean, percentile, Table};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::BTreeMap;

const SCENARIOS: usize = 150;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig12");
    let mut table = Table::new([
        "case",
        "algorithm",
        "25th pct",
        "75th pct",
        "mean",
        "SPARCLE vs this",
    ]);
    println!("=== Figure 12: multi-resource (CPU + memory) rates ===");
    for case in [
        BottleneckCase::MemoryBottleneck,
        BottleneckCase::LinkBottleneck,
    ] {
        let mut cfg = ScenarioConfig::new(case, GraphKind::Diamond, TopologyKind::Star);
        // The link-bottleneck variant also carries memory requirements
        // so that every algorithm faces two computation resource types.
        cfg.with_memory = true;
        let mut rng = StdRng::seed_from_u64(0x12u64 ^ (case as u64) << 5);
        let roster = standard_roster(0xfee1);
        let mut rates: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for _ in 0..SCENARIOS {
            let scenario = cfg.sample(&mut rng).expect("valid scenario");
            let caps = scenario.network.capacity_map();
            for algo in &roster {
                let rate = algo
                    .assign(&scenario.app, &scenario.network, &caps)
                    .map(|p| p.rate)
                    .unwrap_or(0.0);
                rates.entry(algo.name().to_owned()).or_default().push(rate);
            }
        }
        let sparcle_mean = mean(&rates["SPARCLE"]);
        for (name, values) in &rates {
            table.row([
                case.to_string(),
                name.clone(),
                format!("{:.3}", percentile(values, 0.25)),
                format!("{:.3}", percentile(values, 0.75)),
                format!("{:.3}", mean(values)),
                improvement(sparcle_mean, mean(values)),
            ]);
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("fig12_multi_resource");
    println!("wrote {}", path.display());
    harness.finish();
}
