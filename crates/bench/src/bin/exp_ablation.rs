//! Ablation study: which of SPARCLE's ingredients buys what.
//!
//! Three ablations called out in DESIGN.md:
//!
//! 1. **Routing** — Algorithm 2's dynamic ranking with Algorithm 1
//!    widest-path routing vs the same ranking committing TTs on plain
//!    hop-count shortest paths (what a network-oblivious underlay
//!    gives);
//! 2. **Dynamic ranking** — full SPARCLE vs the GS static order (this
//!    is the SPARCLE-vs-GS column of Figures 11/12, reported here per
//!    bottleneck case for completeness);
//! 3. **Capacity prediction (eq. 6)** — arrival-order sensitivity of
//!    two equal-priority BE applications when the newcomer's placement
//!    anticipates its fair share (eq. 6) versus the naive alternative
//!    of handing it the residual left after the incumbent's standalone
//!    demand (first-come-first-grab).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_alloc::{ConstraintSystem, PriorityLoads, ProportionalFairSolver};
use sparcle_baselines::{Assigner, GreedySorted};
use sparcle_bench::{improvement, mean, Table};
use sparcle_core::{
    AssignError, AssignedPath, DynamicRankingAssigner, PlacementEngine, RoutePolicy, TraceHandle,
};
use sparcle_model::{Application, CapacityMap, Network};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const SCENARIOS: usize = 120;

/// Algorithm 2's ranking loop with a configurable TT routing policy.
fn assign_with_policy(
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    policy: RoutePolicy,
    trace: TraceHandle<'_>,
) -> Result<AssignedPath, AssignError> {
    let mut engine = PlacementEngine::new_traced(app, network, capacities, trace)?;
    loop {
        let mut pick: Option<(f64, sparcle_model::CtId, sparcle_model::NcpId)> = None;
        for ct in engine.unplaced() {
            let (host, g) = engine.best_host(ct).ok_or(AssignError::NoHostForCt(ct))?;
            if pick.is_none_or(|(bg, _, _)| g < bg) {
                pick = Some((g, ct, host));
            }
        }
        let Some((_, ct, host)) = pick else {
            break;
        };
        engine.commit_with(ct, host, policy)?;
    }
    engine.finish()
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_ablation");
    routing_ablation(harness.trace());
    ranking_ablation(harness.trace());
    prediction_ablation();
    harness.finish();
}

fn routing_ablation(trace: TraceHandle<'_>) {
    println!("=== ablation 1: widest-path (Alg. 1) vs hop-count TT routing ===");
    let mut table = Table::new([
        "case",
        "widest mean rate",
        "fewest-hops mean rate",
        "Alg. 1 gain",
    ]);
    for case in BottleneckCase::SINGLE_RESOURCE {
        let cfg = ScenarioConfig::new(case, GraphKind::Diamond, TopologyKind::FullyConnected);
        let mut rng = StdRng::seed_from_u64(0xab1 ^ (case as u64) << 3);
        let mut widest = Vec::new();
        let mut hops = Vec::new();
        for _ in 0..SCENARIOS {
            let s = cfg.sample(&mut rng).expect("valid scenario");
            let caps = s.network.capacity_map();
            if let Ok(p) = assign_with_policy(&s.app, &s.network, &caps, RoutePolicy::Widest, trace)
            {
                widest.push(p.rate);
            }
            if let Ok(p) =
                assign_with_policy(&s.app, &s.network, &caps, RoutePolicy::FewestHops, trace)
            {
                hops.push(p.rate);
            }
        }
        table.row([
            case.to_string(),
            format!("{:.3}", mean(&widest)),
            format!("{:.3}", mean(&hops)),
            improvement(mean(&widest), mean(&hops)),
        ]);
    }
    println!("{}", table.render());
    table.write_csv("ablation_routing");
}

fn ranking_ablation(trace: TraceHandle<'_>) {
    println!("\n=== ablation 2: dynamic ranking vs static (GS) order ===");
    let mut table = Table::new(["case", "SPARCLE mean rate", "GS mean rate", "ranking gain"]);
    for case in BottleneckCase::SINGLE_RESOURCE {
        let cfg = ScenarioConfig::new(case, GraphKind::Diamond, TopologyKind::Star);
        let mut rng = StdRng::seed_from_u64(0xab2 ^ (case as u64) << 3);
        let sparcle = DynamicRankingAssigner::new();
        let gs = GreedySorted::new();
        let mut ours = Vec::new();
        let mut theirs = Vec::new();
        for _ in 0..SCENARIOS {
            let s = cfg.sample(&mut rng).expect("valid scenario");
            let caps = s.network.capacity_map();
            if let Ok(p) = Assigner::assign_traced(&sparcle, &s.app, &s.network, &caps, trace) {
                ours.push(p.rate);
            }
            if let Ok(p) = gs.assign(&s.app, &s.network, &caps) {
                theirs.push(p.rate);
            }
        }
        table.row([
            case.to_string(),
            format!("{:.3}", mean(&ours)),
            format!("{:.3}", mean(&theirs)),
            improvement(mean(&ours), mean(&theirs)),
        ]);
    }
    println!("{}", table.render());
    table.write_csv("ablation_ranking");
}

fn prediction_ablation() {
    println!("\n=== ablation 3: eq. (6) capacity prediction vs none ===");
    println!("metric: |rate(A first) - rate(A second)| / mean, for two equal-priority apps");
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 3 },
        TopologyKind::Star,
    );
    let sparcle = DynamicRankingAssigner::new();
    let solver = ProportionalFairSolver::new();
    let mut rng = StdRng::seed_from_u64(0xab3);
    let mut sensitivity_with = Vec::new();
    let mut sensitivity_without = Vec::new();
    for _ in 0..SCENARIOS {
        let s1 = cfg.sample(&mut rng).expect("valid scenario");
        let network = s1.network.clone();
        let app_a = s1.app;
        let app_b = cfg.sample(&mut rng).expect("valid scenario").app;

        // Helper: place `first` then `second` (optionally predicting),
        // solve (4), return the rate of app A whichever slot it is in.
        let place =
            |first: &Application, second: &Application, predict: bool| -> Option<(f64, f64)> {
                let caps = network.capacity_map();
                let p1 = Assigner::assign(&sparcle, first, &network, &caps).ok()?;
                let caps2 = if predict {
                    let mut prio = PriorityLoads::zeroed(&network);
                    prio.add_app(&p1.load, 1.0);
                    prio.predict(&caps, 1.0)
                } else {
                    // Naive residual: the incumbent grabs its standalone
                    // rate outright.
                    let mut residual = caps.clone();
                    residual.subtract_load(&p1.load, p1.rate);
                    residual
                };
                let p2 = Assigner::assign(&sparcle, second, &network, &caps2).ok()?;
                let sys = ConstraintSystem::from_loads(&network, &caps, &[&p1.load, &p2.load]);
                let alloc = solver.solve(&sys, &[1.0, 1.0]).ok()?;
                Some((alloc.rates[0], alloc.rates[1]))
            };

        for (predict, out) in [
            (true, &mut sensitivity_with),
            (false, &mut sensitivity_without),
        ] {
            if let (Some((a_first, _)), Some((_, a_second))) = (
                place(&app_a, &app_b, predict),
                place(&app_b, &app_a, predict),
            ) {
                let m = 0.5 * (a_first + a_second);
                if m > 0.0 {
                    out.push((a_first - a_second).abs() / m);
                }
            }
        }
    }
    let mut table = Table::new(["variant", "mean order sensitivity"]);
    table.row([
        "with eq. (6) prediction",
        &format!("{:.4}", mean(&sensitivity_with)),
    ]);
    table.row([
        "naive residual (no prediction)",
        &format!("{:.4}", mean(&sensitivity_without)),
    ]);
    println!("{}", table.render());
    let path = table.write_csv("ablation_prediction");
    println!("wrote {}", path.display());
}
