//! Figure 11: CDF of the processing rate of one task assignment —
//! diamond task graph, star network with eight NCPs, all algorithms,
//! for the NCP-bottleneck / link-bottleneck / balanced cases.
//!
//! Paper claims:
//! * Fig. 11(a) NCP-bottleneck: SPARCLE and GS coincide (γ depends only
//!   on NCP capacities, so dynamic ranking degenerates to
//!   requirement-sorted order);
//! * Fig. 11(b) link-bottleneck: SPARCLE beats everyone; notably ~+30 %
//!   mean rate over GS — the value of ranking by connecting TTs;
//! * Fig. 11(c) balanced: mean improvements of roughly +82 % / +69 % /
//!   +22 % / +17 % / +8 % over Random / T-Storm / GS / GRand / VNE.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::standard_roster;
use sparcle_bench::svg::LineChart;
use sparcle_bench::{empirical_cdf, improvement, mean, percentile, Table};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::BTreeMap;

const SCENARIOS: usize = 200;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig11");
    let mut summary = Table::new([
        "case",
        "algorithm",
        "mean rate",
        "median",
        "90th pct",
        "SPARCLE vs this",
    ]);
    let mut cdf_table = Table::new(["case", "algorithm", "x", "F(x)"]);

    for case in [
        BottleneckCase::NcpBottleneck,
        BottleneckCase::LinkBottleneck,
        BottleneckCase::Balanced,
    ] {
        let cfg = ScenarioConfig::new(case, GraphKind::Diamond, TopologyKind::Star);
        let mut rng = StdRng::seed_from_u64(0x11u64 ^ (case as u64) << 3);
        let roster = standard_roster(0x5eed);
        let mut rates: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for _ in 0..SCENARIOS {
            let scenario = cfg.sample(&mut rng).expect("valid scenario");
            let caps = scenario.network.capacity_map();
            for algo in &roster {
                let rate = algo
                    .assign(&scenario.app, &scenario.network, &caps)
                    .map(|p| p.rate)
                    .unwrap_or(0.0);
                rates.entry(algo.name().to_owned()).or_default().push(rate);
            }
        }
        let sparcle_mean = mean(&rates["SPARCLE"]);
        let max_rate = rates.values().flatten().fold(0.0f64, |a, &b| a.max(b));
        let mut chart = LineChart::new(
            format!("Figure 11: CDF of processing rate ({case})"),
            "rate",
            "CDF",
        );
        for (name, values) in &rates {
            chart.series(name.clone(), empirical_cdf(values, max_rate, 40));
        }
        let svg = chart.write_svg(&format!("fig11_cdf_{case}"));
        println!("wrote {}", svg.display());
        for (name, values) in &rates {
            summary.row([
                case.to_string(),
                name.clone(),
                format!("{:.3}", mean(values)),
                format!("{:.3}", percentile(values, 0.5)),
                format!("{:.3}", percentile(values, 0.9)),
                improvement(sparcle_mean, mean(values)),
            ]);
            for (x, f) in empirical_cdf(values, max_rate, 40) {
                cdf_table.row([
                    case.to_string(),
                    name.clone(),
                    format!("{x:.4}"),
                    format!("{f:.4}"),
                ]);
            }
        }

        if case == BottleneckCase::NcpBottleneck {
            let gap =
                (mean(&rates["SPARCLE"]) - mean(&rates["GS"])).abs() / mean(&rates["SPARCLE"]);
            println!(
                "NCP-bottleneck: SPARCLE vs GS mean gap {:.1}% (paper: equivalent)",
                100.0 * gap
            );
        }
        if case == BottleneckCase::LinkBottleneck {
            println!(
                "link-bottleneck: SPARCLE vs GS {} (paper: ~+30%)",
                improvement(mean(&rates["SPARCLE"]), mean(&rates["GS"]))
            );
        }
        if case == BottleneckCase::Balanced {
            for (other, paper) in [
                ("Random", "+82%"),
                ("T-Storm", "+69%"),
                ("GS", "+22%"),
                ("GRand", "+17%"),
                ("VNE", "+8%"),
            ] {
                println!(
                    "balanced: SPARCLE vs {other} {} (paper {paper})",
                    improvement(mean(&rates["SPARCLE"]), mean(&rates[other]))
                );
            }
        }
    }
    println!("\n=== Figure 11 summary (diamond graph, star network) ===");
    println!("{}", summary.render());
    summary.write_csv("fig11_summary");
    let path = cdf_table.write_csv("fig11_cdf");
    println!("wrote {}", path.display());
    harness.finish();
}
