//! Extension experiment: proportional-fair vs max-min allocation.
//!
//! The paper allocates Best-Effort rates by weighted proportional
//! fairness (problem (4)). This experiment contrasts it with weighted
//! max-min fairness on the same placements: utility (Σ P log x), the
//! minimum per-app rate (what max-min protects), and total rate, over
//! seeded multi-app scenarios.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_bench::{mean, Table};
use sparcle_core::{AllocationPolicy, SparcleSystem, SystemConfig};
use sparcle_model::QoeClass;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const ROUNDS: usize = 50;
const APPS: usize = 4;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_policy");
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 2 },
        TopologyKind::Star,
    );
    type PolicyRow = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut results: Vec<PolicyRow> = vec![
        ("proportional fair (paper)", vec![], vec![], vec![]),
        ("max-min fair", vec![], vec![], vec![]),
    ];
    let mut rng = StdRng::seed_from_u64(0x901_1c4);
    for _ in 0..ROUNDS {
        let base = cfg.sample(&mut rng).expect("valid scenario");
        let apps: Vec<_> = (0..APPS)
            .map(|k| {
                cfg.sample(&mut rng)
                    .expect("valid scenario")
                    .app
                    .with_qoe(QoeClass::best_effort(1.0 + (k % 2) as f64))
                    .expect("valid qoe")
            })
            .collect();
        for (slot, policy) in [
            (0usize, AllocationPolicy::ProportionalFair),
            (1, AllocationPolicy::MaxMin),
        ] {
            let config = SystemConfig {
                allocation_policy: policy,
                ..SystemConfig::default()
            };
            let mut system = SparcleSystem::with_config(base.network.clone(), config);
            for app in &apps {
                let _ = system.submit(app.clone());
            }
            if system.be_apps().len() < APPS {
                continue;
            }
            let rates: Vec<f64> = system.be_apps().iter().map(|a| a.allocated_rate).collect();
            results[slot].1.push(system.be_utility());
            results[slot]
                .2
                .push(rates.iter().cloned().fold(f64::INFINITY, f64::min));
            results[slot].3.push(rates.iter().sum());
        }
    }

    let mut table = Table::new([
        "policy",
        "mean utility Σ P log x",
        "mean min rate",
        "mean total rate",
    ]);
    for (name, utility, min_rate, total) in &results {
        table.row([
            (*name).to_owned(),
            format!("{:.3}", mean(utility)),
            format!("{:.3}", mean(min_rate)),
            format!("{:.3}", mean(total)),
        ]);
    }
    println!("=== extension: allocation policy comparison ({APPS} BE apps) ===");
    println!("{}", table.render());
    let path = table.write_csv("extension_policy");
    println!("wrote {}", path.display());
    println!(
        "\nexpected shape: proportional fairness wins on utility and usually on total\n\
         rate; max-min wins on the minimum per-app rate it protects."
    );
    harness.finish();
}
