//! Admission service plane under sustained flash-crowd load.
//!
//! Drives the same pinned flash-crowd request stream (submissions plus
//! snapshot probes) through [`sparcle_service::AdmissionService`] at a
//! sweep of micro-batch window sizes — from an effectively per-request
//! window up to coarse coalescing — over the `exp_monitor` edge/hub
//! network. The point of the plane shows up in two columns:
//!
//! * `solves/app` — batching amortizes the warm Best-Effort solve:
//!   per-request admission pays ~one solve per admitted application,
//!   wide windows pay one per *batch*;
//! * `p99_ms` — the price: decisions wait for their window boundary
//!   (plus backpressure deferrals), so the 99th-percentile
//!   arrival-to-decision latency grows with the window. Both are
//!   sim-time deterministic; `adm/s` is the wall-clock throughput.
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_service -- \
//!     --trace-out service.jsonl --summary
//! ```

use sparcle_bench::Table;
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_service::{AdmissionService, ServiceConfig, SolveCostModel};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::{ArrivalTrace, RequestStream};
use std::time::Instant;

/// Four edge hosts and two hubs (the `exp_monitor` network, reliable).
fn demo_network() -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            0.02,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            0.005,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Every third request is Guaranteed-Rate; endpoints walk the edges.
fn demo_app(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1100.0, 500.0]).expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

/// The pinned flash-crowd request stream every row replays.
fn request_stream(horizon: f64) -> RequestStream {
    RequestStream::new(
        ArrivalTrace::FlashCrowd {
            rate: 1.0,
            burst_rate: 12.0,
            burst_start: 30.0,
            burst_end: 70.0,
        },
        horizon,
        0x5eed,
    )
    .with_probe_every(8)
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_service");
    let horizon = 100.0;
    // (label, batch window). The first row is effectively per-request
    // admission: a window far below the minimum arrival spacing, so
    // every batch has size 1 and each admitted app pays its own solve.
    let windows = [
        ("per-req", 1e-3),
        ("0.25s", 0.25),
        ("0.5s", 0.5),
        ("1s", 1.0),
        ("2s", 2.0),
    ];

    let mut table = Table::new([
        "window",
        "batches",
        "admitted",
        "rejected",
        "shed",
        "defer",
        "solves",
        "solves/app",
        "p99_ms",
        "adm/s",
        "probes",
    ]);
    let mut per_request_solves_per_app = f64::NAN;
    let mut widest_solves_per_app = f64::NAN;
    for (label, window) in &windows {
        let config = ServiceConfig {
            batch_window: *window,
            max_batch: 64,
            queue_capacity: 128,
            max_defer_windows: 4,
            // The writer cost scales with batch size, so per-request
            // admission feels backpressure first — exactly the regime
            // the batch window exists to absorb.
            solve_cost: SolveCostModel {
                fixed: 0.004,
                per_request: 0.001,
            },
            ..ServiceConfig::default()
        };
        let mut service = AdmissionService::new(demo_network(), config, demo_app);
        let start = Instant::now();
        service.run_traced(request_stream(horizon), harness.trace());
        let wall = start.elapsed().as_secs_f64();

        let stats = *service.stats();
        let solves = service.system().state_stats().solves;
        let solves_per_app = if stats.admitted > 0 {
            solves as f64 / stats.admitted as f64
        } else {
            f64::NAN
        };
        if *label == "per-req" {
            per_request_solves_per_app = solves_per_app;
        }
        widest_solves_per_app = solves_per_app;
        let p99_ms = 1000.0 * service.decision_wait_quantile(0.99);
        table.row([
            (*label).to_owned(),
            stats.batches.to_string(),
            stats.admitted.to_string(),
            stats.rejected.to_string(),
            stats.shed.to_string(),
            service.ledger().deferrals().to_string(),
            solves.to_string(),
            format!("{solves_per_app:.3}"),
            format!("{p99_ms:.1}"),
            format!("{:.0}", stats.decisions as f64 / wall.max(1e-9)),
            stats.probes.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "batched admission at the widest window costs {widest_solves_per_app:.3} BE solves per \
         admitted app vs {per_request_solves_per_app:.3} per-request \
         ({:.1}x cheaper)",
        per_request_solves_per_app / widest_solves_per_app
    );
    assert!(
        widest_solves_per_app < per_request_solves_per_app,
        "batching must amortize solves: widest {widest_solves_per_app} vs per-request \
         {per_request_solves_per_app}"
    );
    let csv = table.write_csv("exp_service");
    println!("wrote {}", csv.display());
    harness.finish();
}
