//! Online runtime experiment: the SLO ledger under churn, per
//! reconcile policy.
//!
//! An edge/hub network with flaky hub links is driven through three
//! arrival traces (Poisson, diurnal, flash crowd) under two failure
//! regimes (calm / stormy) while the online runtime reacts with
//! admission, displacement, and policy-ordered re-placement. For every
//! `trace × regime × policy` cell the SLO ledger reports GR
//! violation-seconds, the BE delivered-work integral, reaction
//! latencies, and placement churn.
//!
//! A final determinism section replays one ≥10 000-event timeline with
//! 1 and 8 γ-evaluator worker threads and asserts the runs are
//! indistinguishable — byte-identical telemetry event logs when built
//! with the `telemetry` feature, identical ledgers otherwise.
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_churn
//! ```

use std::path::Path;

use sparcle_bench::{svg::BarChart, Table};
use sparcle_core::TraceHandle;
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{
    FluctuationConfig, MonitorConfig, ReconcilePolicy, RuntimeConfig, SloLedger, SparcleRuntime,
};
use sparcle_sim::FluctuationModel;
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

/// Four edge hosts, two compute hubs. Every edge host reaches the
/// fast hub over a flaky link and the slower hub over a more reliable
/// one, so element failures displace applications without ever
/// partitioning them.
fn churn_network(flaky: f64) -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            flaky,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            flaky / 4.0,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Deterministic per-index application mix: every third arrival is
/// Guaranteed-Rate, Best-Effort priorities cycle 1..=4, endpoints walk
/// around the edge hosts.
fn churn_app(index: u64) -> Application {
    let graph = if index.is_multiple_of(2) {
        linear_task_graph(&[60.0], &[1200.0, 600.0])
    } else {
        linear_task_graph(&[40.0, 40.0], &[1000.0, 800.0, 400.0])
    }
    .expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

/// Observability-plane configuration every cell runs under: 5 s ticks,
/// a 30 s window, detectors tuned to this workload. Even the calm
/// regime accrues ~0.09 GR violation-seconds per second, so the budget
/// is set to 0.4 viol-s/s — quiet cells stay an order of magnitude
/// below it while the flash-crowd × stormy cells (~0.9 viol-s/s) burn
/// through it. The γ-cache detector is disabled (floor 0): each online
/// placement ranks with a fresh engine, so the windowed hit rate is
/// legitimately zero here (see BENCH_churn_runtime.json).
fn cell_monitor(metrics_out: Option<std::path::PathBuf>) -> MonitorConfig {
    MonitorConfig {
        period: 5.0,
        slots: 6,
        rules: sparcle_runtime::AlertRules {
            slo_violation_budget: 0.4,
            cache_hit_floor: 0.0,
            ..sparcle_runtime::AlertRules::default()
        },
        metrics_out,
    }
}

/// Ledger, events processed, and monitor alert edges of one cell.
fn run_cell(
    trace: &ArrivalTrace,
    flaky: f64,
    policy: ReconcilePolicy,
    horizon: f64,
    metrics_out: Option<std::path::PathBuf>,
    sink: TraceHandle<'_>,
) -> (SloLedger, u64, u64) {
    let config = RuntimeConfig {
        horizon,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy,
        fluctuation: Some(FluctuationConfig {
            model: FluctuationModel {
                floor: 0.6,
                step: 0.05,
                seed: 9,
            },
            period: 5.0,
        }),
        monitor: Some(cell_monitor(metrics_out)),
        ..RuntimeConfig::default()
    };
    let arrivals = trace.events(horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(flaky), arrivals, churn_app, config);
    let ledger = rt.run_traced(sink).clone();
    let alerts = rt.monitor().map_or(0, |m| m.alerts_total());
    (ledger, rt.events_processed(), alerts)
}

/// One high-churn timeline with ≥10 000 events; returns the rendered
/// event log (telemetry builds) or the debug-formatted ledger, plus
/// the system's solver/state work counters.
fn determinism_run(threads: usize) -> (String, u64, sparcle_core::StateStats) {
    let mut config = RuntimeConfig {
        horizon: 600.0,
        failure_seed: 0xfa17,
        hold_seed: 0x401d,
        mean_hold: 20.0,
        policy: ReconcilePolicy::GammaImpact,
        fluctuation: Some(FluctuationConfig {
            model: FluctuationModel {
                floor: 0.6,
                step: 0.05,
                seed: 9,
            },
            period: 0.4,
        }),
        ..RuntimeConfig::default()
    };
    config.system.assigner_threads = threads;
    // Monitoring runs during the determinism replay too, so the
    // byte-identical assertion covers the monitor_* event stream.
    config.monitor = Some(cell_monitor(None));
    let arrivals = ArrivalTrace::Poisson { rate: 10.0 }.events(config.horizon, 0xbeef);
    let mut rt = SparcleRuntime::new(churn_network(0.08), arrivals, churn_app, config);

    #[cfg(feature = "telemetry")]
    {
        let recorder = sparcle_telemetry::CollectRecorder::new();
        rt.run_traced(sparcle_core::TraceHandle::new(&recorder));
        let log = recorder.render_trace();
        let stats = rt.system().state_stats().clone();
        (log, rt.events_processed(), stats)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let ledger = rt.run().clone();
        let stats = rt.system().state_stats().clone();
        (format!("{ledger:?}"), rt.events_processed(), stats)
    }
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_churn");
    let horizon = 150.0;
    let traces = [
        ("poisson", ArrivalTrace::Poisson { rate: 1.2 }),
        (
            "diurnal",
            ArrivalTrace::Diurnal {
                rate: 1.2,
                depth: 0.8,
                period: 50.0,
            },
        ),
        (
            "flash",
            ArrivalTrace::FlashCrowd {
                rate: 0.8,
                burst_rate: 4.0,
                burst_start: 60.0,
                burst_end: 80.0,
            },
        ),
    ];
    let regimes = [("calm", 0.02), ("stormy", 0.10)];
    let policies = [
        ReconcilePolicy::Fifo,
        ReconcilePolicy::Priority,
        ReconcilePolicy::GammaImpact,
    ];

    let mut table = Table::new([
        "trace",
        "regime",
        "policy",
        "arrivals",
        "admitted",
        "displaced",
        "restores",
        "churn",
        "gr_viol_s",
        "be_integral",
        "mean_latency_s",
        "alerts",
        "events",
    ]);
    let mut chart = BarChart::new(
        "exp_churn: GR violation-seconds by reconcile policy",
        "trace / regime",
        "GR violation-seconds",
    );
    let mut policy_viol: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];

    let mut quiet_alerts = 0u64;
    let mut storm_flash_alerts = 0u64;
    for (trace_name, trace) in &traces {
        for (regime_name, flaky) in &regimes {
            chart.category(format!("{trace_name}/{regime_name}"));
            for (p, policy) in policies.iter().enumerate() {
                let (ledger, events, alerts) = run_cell(
                    trace,
                    *flaky,
                    *policy,
                    horizon,
                    harness.metrics_out().map(Path::to_path_buf),
                    harness.trace(),
                );
                harness.trace().counter("exp_churn.cells", 1);
                harness.trace().counter("exp_churn.alert_edges", alerts);
                match (*trace_name, *regime_name) {
                    ("poisson", "calm") => quiet_alerts += alerts,
                    ("flash", "stormy") => storm_flash_alerts += alerts,
                    _ => {}
                }
                policy_viol[p].push(ledger.total_gr_violation_seconds());
                table.row([
                    (*trace_name).to_owned(),
                    (*regime_name).to_owned(),
                    policy.label().to_owned(),
                    ledger.arrivals().to_string(),
                    ledger.admitted().to_string(),
                    ledger.displacements().to_string(),
                    ledger.restores().to_string(),
                    ledger.placement_churn().to_string(),
                    format!("{:.2}", ledger.total_gr_violation_seconds()),
                    format!("{:.0}", ledger.be_rate_integral()),
                    format!("{:.3}", ledger.mean_reaction_latency()),
                    alerts.to_string(),
                    events.to_string(),
                ]);
            }
        }
    }
    for (p, policy) in policies.iter().enumerate() {
        chart.series(policy.label(), policy_viol[p].clone());
    }

    println!("{}", table.render());

    // Alerting acceptance: the detectors must stay silent on the quiet
    // Poisson × calm cells and catch the flash-crowd × stormy overload.
    assert_eq!(
        quiet_alerts, 0,
        "the quiet poisson/calm cells must not trip any detector"
    );
    assert!(
        storm_flash_alerts >= 1,
        "the flash/stormy cells must trip at least one alert"
    );
    println!("alerting: OK (poisson/calm quiet, flash/stormy fired {storm_flash_alerts} edges)");
    let csv = table.write_csv("exp_churn");
    println!("wrote {}", csv.display());
    let svg = chart.write_svg("exp_churn_gr_violation");
    println!("wrote {}", svg.display());

    // Determinism acceptance check: the same 10k-event timeline must be
    // indistinguishable whether the γ evaluator uses 1 or 8 workers.
    let (log1, events1, stats) = determinism_run(1);
    let (log8, events8, _) = determinism_run(8);
    assert!(
        events1 >= 10_000,
        "determinism timeline too small: {events1} events"
    );
    assert_eq!(events1, events8, "event counts diverged across threads");
    assert_eq!(log1, log8, "runtime event log diverged across threads");
    println!("determinism: OK ({events1} events, 1 vs 8 threads, identical logs)");
    println!(
        "solver: {} solves ({} warm / {} cold), {:.2} warm iters/solve, \
         {:.3} ms/solve, {} element updates, {} full rebuilds, \
         {} commits, {} rollbacks",
        stats.solves,
        stats.warm_solves,
        stats.cold_solves,
        stats.inner_iters_warm as f64 / (stats.warm_solves.max(1)) as f64,
        stats.solve_nanos as f64 / 1e6 / (stats.solves.max(1)) as f64,
        stats.residual_element_updates,
        stats.residual_full_recomputes,
        stats.txn_commits,
        stats.txn_rollbacks,
    );

    harness.finish();
}
