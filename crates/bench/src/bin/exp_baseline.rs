//! Perf-baseline runner and regression gate.
//!
//! ```sh
//! exp_baseline [run] [--out <dir>] [<experiment>...]
//! exp_baseline compare [--baseline-dir <dir>] [--tolerance <frac>] [<experiment>...]
//! ```
//!
//! `run` (the default) executes the pinned workloads in
//! `sparcle_bench::baseline::BASELINE_EXPERIMENTS` and writes one
//! `BENCH_<experiment>.json` per workload — to `target/experiments/` by
//! default, or to the committed `benchmarks/` directory when refreshing
//! the baseline (`--out benchmarks`).
//!
//! `compare` re-runs the workloads and checks each metric against the
//! committed baseline with direction-aware tolerances (see
//! `sparcle_bench::baseline`), exiting `1` when anything regressed —
//! the nightly CI perf gate. `--tolerance` widens or tightens the
//! wall-clock band (deterministic metrics keep their 2 % band).

fn main() {
    #[cfg(feature = "telemetry")]
    imp::main();
    #[cfg(not(feature = "telemetry"))]
    {
        // Metric extraction rides on the telemetry counters, so without
        // the feature there is nothing to measure — succeed quietly so
        // `exp_all` and CI matrix builds keep working.
        eprintln!("note: exp_baseline built without the `telemetry` feature; skipping");
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use std::path::PathBuf;

    use sparcle_bench::baseline::{
        baselines_dir, compare, result_path, BenchResult, BASELINE_EXPERIMENTS,
        DEFAULT_WALL_TOLERANCE,
    };

    struct Args {
        compare_mode: bool,
        out: PathBuf,
        baseline_dir: PathBuf,
        tolerance: f64,
        experiments: Vec<String>,
    }

    fn parse_args() -> Args {
        let mut args = Args {
            compare_mode: false,
            out: sparcle_bench::experiments_dir(),
            baseline_dir: baselines_dir(),
            tolerance: DEFAULT_WALL_TOLERANCE,
            experiments: Vec::new(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "run" => args.compare_mode = false,
                "compare" => args.compare_mode = true,
                "--out" => args.out = PathBuf::from(it.next().expect("--out requires a directory")),
                "--baseline-dir" => {
                    args.baseline_dir =
                        PathBuf::from(it.next().expect("--baseline-dir requires a directory"));
                }
                "--tolerance" => {
                    let v = it.next().expect("--tolerance requires a fraction");
                    args.tolerance = v.parse().expect("--tolerance must be a number");
                    assert!(args.tolerance >= 0.0, "--tolerance must be non-negative");
                }
                name if BASELINE_EXPERIMENTS.iter().any(|(n, _)| *n == name) => {
                    args.experiments.push(name.to_owned());
                }
                other => eprintln!("note: ignoring unknown argument {other:?}"),
            }
        }
        if args.experiments.is_empty() {
            args.experiments = BASELINE_EXPERIMENTS
                .iter()
                .map(|(n, _)| (*n).to_owned())
                .collect();
        }
        args
    }

    fn run_selected(names: &[String]) -> Vec<BenchResult> {
        names
            .iter()
            .map(|name| {
                println!("running baseline workload {name} ...");
                let result = sparcle_bench::baseline::run_experiment(name)
                    .unwrap_or_else(|| panic!("unknown baseline experiment {name}"));
                println!(
                    "  wall {:.3}s  gamma-hit {:.3}  events/s {:.0}  peak-queue {:.0}",
                    result.wall_time_s,
                    result.gamma_cache_hit_rate,
                    result.events_per_sec,
                    result.peak_queue_depth,
                );
                result
            })
            .collect()
    }

    pub fn main() {
        let args = parse_args();
        let results = run_selected(&args.experiments);

        if !args.compare_mode {
            std::fs::create_dir_all(&args.out).expect("create output dir");
            for result in &results {
                let path = result_path(&args.out, &result.experiment);
                std::fs::write(&path, result.to_json().render() + "\n")
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                println!("wrote {}", path.display());
            }
            return;
        }

        let mut failed = false;
        for result in &results {
            let path = result_path(&args.baseline_dir, &result.experiment);
            let contents = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
            let baseline = sparcle_telemetry::parse_json(contents.trim())
                .ok()
                .as_ref()
                .and_then(BenchResult::from_json)
                .unwrap_or_else(|| panic!("malformed baseline {}", path.display()));
            let regressions = compare(result, &baseline, args.tolerance);
            if regressions.is_empty() {
                println!(
                    "{}: OK (within tolerance of committed baseline)",
                    result.experiment
                );
            } else {
                failed = true;
                println!("{}: REGRESSED", result.experiment);
                for regression in &regressions {
                    println!("  {regression}");
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
