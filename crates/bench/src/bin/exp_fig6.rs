//! Figure 6 + Tables I/II: face-detection processing rate vs field
//! bandwidth on the emulated testbed.
//!
//! Reproduces the paper's experimental comparison: SPARCLE, HEFT,
//! T-Storm, VNE, and cloud computing on the Figure 4 network with field
//! bandwidth ∈ {0.5, 10, 22} Mbps, with the exhaustive optimum as the
//! reference. Rates are both analytic (bottleneck formula) and measured
//! on the emulated testbed (queueing simulation driven to its stability
//! frontier).
//!
//! Paper claims this experiment checks:
//! * ~9× over cloud at 0.5 Mbps field bandwidth;
//! * SPARCLE matches the optimal assignment at every tested bandwidth;
//! * at 10 Mbps SPARCLE uses the cloud (cloud is optimal);
//! * ~23 % over cloud even at 22 Mbps;
//! * large improvements over HEFT (~300 %), T-Storm (~63 %), and VNE
//!   (~1350 %) across the sweep.

use sparcle_baselines::{
    optimal_assignment, Assigner, CloudAssigner, HeftAssigner, TStormAssigner, VneAssigner,
};
use sparcle_bench::svg::LineChart;
use sparcle_bench::{improvement, ExpHarness, Table};
use sparcle_core::DynamicRankingAssigner;
use sparcle_model::QoeClass;
use sparcle_sim::{measure_saturated_rate, EmulatorConfig};
use sparcle_workloads::face_detection::{
    face_detection_app, testbed_network, CLOUD, CLOUD_BW_MBPS, CLOUD_CPU_MHZ, DENOISE_MC, EDGE_MC,
    FACE_MC, FIELD_CPU_MHZ, RESIZE_MC,
};

fn main() {
    let harness = ExpHarness::new("exp_fig6");
    print_tables_i_and_ii();

    let app = face_detection_app(QoeClass::best_effort(1.0)).expect("valid workload");
    let emulator = EmulatorConfig::default();

    let mut table = Table::new([
        "field BW (Mbps)",
        "algorithm",
        "analytic rate (img/s)",
        "measured rate (img/s)",
        "vs cloud",
        "vs optimal",
    ]);
    let mut chart_series: std::collections::BTreeMap<String, Vec<(f64, f64)>> = Default::default();

    println!("\n=== Figure 6: application processing rate vs field bandwidth ===");
    for &bw in &[0.5, 10.0, 22.0] {
        let network = testbed_network(bw);
        let caps = network.capacity_map();

        let algos: Vec<Box<dyn Assigner>> = vec![
            Box::new(DynamicRankingAssigner::new()),
            Box::new(HeftAssigner::new()),
            Box::new(TStormAssigner::new()),
            Box::new(VneAssigner::new()),
            Box::new(CloudAssigner::new(CLOUD)),
        ];
        let optimal = optimal_assignment(&app, &network, &caps).expect("search fits the limit");
        let cloud_rate = CloudAssigner::new(CLOUD)
            .assign(&app, &network, &caps)
            .expect("cloud placement")
            .rate;

        for algo in &algos {
            let (analytic, measured) =
                match algo.assign_traced(&app, &network, &caps, harness.trace()) {
                    Ok(path) => {
                        let report = measure_saturated_rate(
                            &network,
                            app.graph(),
                            &path.placement,
                            &emulator,
                        );
                        (path.rate, report.measured_rate)
                    }
                    Err(_) => (0.0, 0.0),
                };
            table.row([
                format!("{bw}"),
                algo.name().to_owned(),
                format!("{analytic:.4}"),
                format!("{measured:.4}"),
                improvement(analytic, cloud_rate),
                format!("{:.0}%", 100.0 * analytic / optimal.rate),
            ]);
            chart_series
                .entry(algo.name().to_owned())
                .or_default()
                .push((bw, analytic));
        }
        table.row([
            format!("{bw}"),
            "optimal".to_owned(),
            format!("{:.4}", optimal.rate),
            "-".to_owned(),
            improvement(optimal.rate, cloud_rate),
            "100%".to_owned(),
        ]);
    }
    println!("{}", table.render());
    let path = table.write_csv("fig6_face_detection");
    println!("wrote {}", path.display());
    let mut chart = LineChart::new(
        "Figure 6: face-detection rate vs field bandwidth",
        "field bandwidth (Mbps)",
        "processing rate (images/s)",
    );
    for (name, points) in chart_series {
        chart.series(name, points);
    }
    let svg = chart.write_svg("fig6_face_detection");
    println!("wrote {}", svg.display());

    headline_claims(&app, &emulator);
    harness.finish();
}

fn print_tables_i_and_ii() {
    println!("=== Table I: dispersed computing network parameters ===");
    let mut t1 = Table::new(["network element", "capacity"]);
    t1.row(["Cloud CPU", &format!("{CLOUD_CPU_MHZ} (MHz) = 4*3.8 GHz")]);
    t1.row(["Field CPU", &format!("{FIELD_CPU_MHZ} (MHz)")]);
    t1.row(["Cloud BW", &format!("{CLOUD_BW_MBPS} (Mbps)")]);
    println!("{}", t1.render());
    t1.write_csv("table1_network_parameters");

    println!("\n=== Table II: face detection application parameters ===");
    let mut t2 = Table::new(["task", "resource requirement"]);
    t2.row(["resize", &format!("{RESIZE_MC} (MC/image)")]);
    t2.row(["denoise", &format!("{DENOISE_MC} (MC/image)")]);
    t2.row(["edge detection", &format!("{EDGE_MC} (MC/image)")]);
    t2.row(["face detection", &format!("{FACE_MC} (MC/image)")]);
    t2.row(["raw image transport", "3.1 (MB/image)"]);
    t2.row(["resized image transport", "182 (kB/image)"]);
    t2.row(["denoised image transport", "145 (kB/image)"]);
    t2.row(["edge map transport", "188 (kB/image)"]);
    t2.row(["detected faces transport", "11 (kB/image)"]);
    println!("{}", t2.render());
    t2.write_csv("table2_face_detection_parameters");
}

fn headline_claims(app: &sparcle_model::Application, _emulator: &EmulatorConfig) {
    println!("\n=== headline claims ===");
    let sparcle = DynamicRankingAssigner::new();

    // 9× over cloud at 0.5 Mbps.
    let net = testbed_network(0.5);
    let caps = net.capacity_map();
    let s = sparcle.assign(app, &net, &caps).expect("sparcle placement");
    let c = CloudAssigner::new(CLOUD)
        .assign(app, &net, &caps)
        .expect("cloud placement");
    println!(
        "dispersed/cloud speedup at 0.5 Mbps: {:.1}x (paper: ~9x)",
        s.rate / c.rate
    );

    // At 10 Mbps, cloud is (near-)optimal and SPARCLE matches it.
    let net = testbed_network(10.0);
    let caps = net.capacity_map();
    let s10 = sparcle.assign(app, &net, &caps).expect("sparcle");
    let opt10 = optimal_assignment(app, &net, &caps).expect("optimal");
    println!(
        "at 10 Mbps: SPARCLE {:.4}, optimal {:.4} (paper: SPARCLE follows the optimum)",
        s10.rate, opt10.rate
    );

    // 23 % over cloud at 22 Mbps.
    let net = testbed_network(22.0);
    let caps = net.capacity_map();
    let s22 = sparcle.assign(app, &net, &caps).expect("sparcle");
    let c22 = CloudAssigner::new(CLOUD)
        .assign(app, &net, &caps)
        .expect("cloud");
    println!(
        "dispersed vs cloud at 22 Mbps: {} (paper: +23%)",
        improvement(s22.rate, c22.rate)
    );

    // Best-case improvements over HEFT / T-Storm / VNE across the sweep.
    let mut best = [(0.0f64, "HEFT"), (0.0f64, "T-Storm"), (0.0f64, "VNE")];
    for &bw in &[0.5, 10.0, 22.0] {
        let net = testbed_network(bw);
        let caps = net.capacity_map();
        let s = sparcle.assign(app, &net, &caps).expect("sparcle").rate;
        let others: [(Box<dyn Assigner>, usize); 3] = [
            (Box::new(HeftAssigner::new()), 0),
            (Box::new(TStormAssigner::new()), 1),
            (Box::new(VneAssigner::new()), 2),
        ];
        for (algo, slot) in others {
            if let Ok(p) = algo.assign(app, &net, &caps) {
                if p.rate > 0.0 {
                    let imp = 100.0 * (s - p.rate) / p.rate;
                    if imp > best[slot].0 {
                        best[slot].0 = imp;
                    }
                }
            }
        }
    }
    println!(
        "max improvement over HEFT {:.0}% (paper ~300%), T-Storm {:.0}% (paper ~63%), VNE {:.0}% (paper ~1350%)",
        best[0].0, best[1].0, best[2].0
    );
}
