//! Extension experiment: admission behavior under arrival/departure
//! churn — an Erlang-style load curve for the SPARCLE system.
//!
//! GR applications arrive as a Poisson-like stream (deterministic
//! inter-arrival for reproducibility), hold the network for a fixed
//! number of slots, then depart. Sweeping the offered load shows how
//! the admission ratio degrades and how much guaranteed rate the
//! network sustains at each load — the capacity-planning curve an
//! operator of a SPARCLE deployment would consult.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_bench::Table;
use sparcle_core::SparcleSystem;
use sparcle_model::QoeClass;
use sparcle_workloads::{ArrivalTrace, BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::VecDeque;

const SLOTS: usize = 400;
const HOLD: usize = 20;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_admission");
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 2 },
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(0xadb1);
    let base = cfg.sample(&mut rng).expect("valid scenario");

    let mut table = Table::new([
        "arrivals per slot",
        "offered GR rate (mean)",
        "admission ratio",
        "carried GR rate (mean)",
    ]);
    println!("=== extension: GR admission under churn (hold {HOLD} slots) ===");
    for &arrivals_per_slot in &[0.1, 0.3, 0.6, 1.0, 2.0] {
        let mut system = SparcleSystem::new(base.network.clone());
        let mut departures: VecDeque<(usize, sparcle_model::AppId)> = VecDeque::new();
        let mut offered = 0usize;
        let mut admitted = 0usize;
        let mut offered_rate_sum = 0.0;
        let mut carried_sum = 0.0;
        let mut pending = 0.0f64;
        for slot in 0..SLOTS {
            while let Some(&(when, id)) = departures.front() {
                if when > slot {
                    break;
                }
                departures.pop_front();
                system.remove(id);
            }
            pending += arrivals_per_slot;
            while pending >= 1.0 {
                pending -= 1.0;
                let app = cfg.sample(&mut rng).expect("valid scenario").app;
                let min_rate = rng.gen_range(0.3..1.2);
                let app = app
                    .with_qoe(QoeClass::guaranteed_rate(min_rate, 0.99))
                    .expect("valid qoe");
                offered += 1;
                offered_rate_sum += min_rate;
                if let Some(id) = system.submit(app).expect("well-formed").id() {
                    admitted += 1;
                    departures.push_back((slot + HOLD, id));
                }
            }
            carried_sum += system.total_gr_rate();
        }
        table.row([
            format!("{arrivals_per_slot}"),
            format!("{:.3}", offered_rate_sum / SLOTS as f64 * HOLD as f64),
            format!("{:.3}", admitted as f64 / offered.max(1) as f64),
            format!("{:.3}", carried_sum / SLOTS as f64),
        ]);
    }
    println!("{}", table.render());
    let path = table.write_csv("extension_admission_churn");
    println!("wrote {}", path.display());
    println!(
        "\nshape: the admission ratio falls as offered load grows while the carried\n\
         rate saturates at the network's GR capacity — the classic loss-system knee."
    );

    flash_crowd(&cfg, &mut rng);
    harness.finish();
}

/// A flash crowd: admission holds at baseline, dips during the burst,
/// and recovers once burst tenants drain.
fn flash_crowd(cfg: &ScenarioConfig, rng: &mut StdRng) {
    let base = cfg.sample(rng).expect("valid scenario");
    let trace = ArrivalTrace::FlashCrowd {
        rate: 0.2,
        burst_rate: 3.0,
        burst_start: 150.0,
        burst_end: 200.0,
    };
    let arrivals = trace.sample(SLOTS as f64, 0xf1a5);
    let mut system = SparcleSystem::new(base.network.clone());
    let mut departures: VecDeque<(usize, sparcle_model::AppId)> = VecDeque::new();
    // Per-phase (pre / burst / post) offered and admitted counts.
    let mut phase_counts = [(0usize, 0usize); 3];
    let mut next_arrival = 0usize;
    for slot in 0..SLOTS {
        while let Some(&(when, id)) = departures.front() {
            if when > slot {
                break;
            }
            departures.pop_front();
            system.remove(id);
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival] < (slot + 1) as f64 {
            next_arrival += 1;
            let phase = if (slot as f64) < 150.0 {
                0
            } else if (slot as f64) < 200.0 {
                1
            } else {
                2
            };
            let app = cfg.sample(rng).expect("valid scenario").app;
            let min_rate = rng.gen_range(0.3..1.2);
            let app = app
                .with_qoe(QoeClass::guaranteed_rate(min_rate, 0.99))
                .expect("valid qoe");
            phase_counts[phase].0 += 1;
            if let Some(id) = system.submit(app).expect("well-formed").id() {
                phase_counts[phase].1 += 1;
                departures.push_back((slot + HOLD, id));
            }
        }
    }
    let mut table = Table::new(["phase", "offered", "admitted", "admission ratio"]);
    for (name, (offered, admitted)) in ["pre-burst", "burst", "post-burst"]
        .iter()
        .zip(phase_counts)
    {
        table.row([
            (*name).to_owned(),
            format!("{offered}"),
            format!("{admitted}"),
            format!("{:.3}", admitted as f64 / offered.max(1) as f64),
        ]);
    }
    println!("\n=== flash crowd (burst 15x baseline during slots 150..200) ===");
    println!("{}", table.render());
    table.write_csv("extension_admission_flash_crowd");
}
