//! Figure 10: availability of BE and min-rate availability of GR
//! applications versus the number of task assignment paths.
//!
//! A linear task graph on a star network whose links fail independently
//! with probability 2 % (the paper's setup). SPARCLE extracts task
//! assignment paths one at a time (residual capacities); the analytic
//! availability (inclusion–exclusion over overlapping paths, eq. (7)
//! for GR) is reported next to epoch-based failure-injection
//! measurements.
//!
//! Paper claims:
//! * Fig. 10(a): one path gives ~0.85 availability, short of the 0.9
//!   target; the second path crosses it (~0.94);
//! * Fig. 10(b): a GR application needs three paths before its min-rate
//!   availability clears the 0.85 target.

use sparcle_alloc::PathAvailability;
use sparcle_bench::svg::LineChart;
use sparcle_bench::Table;
use sparcle_core::{assign_multipath, DynamicRankingAssigner};
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_sim::{FailurePath, FailureSim};
use sparcle_workloads::graphs::linear_task_graph;

/// Star network with failure-prone links sized so successive extracted
/// paths have sharply declining rates (the paper's 2.67 / 1.2 / 0.42
/// cascade).
fn star_with_failures() -> Network {
    let mut b = NetworkBuilder::new();
    let hub = b.add_ncp("hub", ResourceVec::cpu(20.0));
    let leaf_cpu = [70.0, 32.0, 12.0, 8.0, 60.0, 55.0];
    for (i, &cpu) in leaf_cpu.iter().enumerate() {
        let leaf = b.add_ncp(format!("leaf{i}"), ResourceVec::cpu(cpu));
        b.add_link_full(
            format!("l{i}"),
            hub,
            leaf,
            220.0,
            LinkDirection::Undirected,
            0.02,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

fn app() -> Application {
    let graph = linear_task_graph(&[12.0, 14.0], &[10.0, 8.0, 6.0]).expect("valid graph");
    let src = graph.sources()[0];
    let sink = graph.sinks()[0];
    // Camera on leaf 5, operator on leaf 6 — every path crosses links.
    Application::new(
        graph,
        QoeClass::best_effort(1.0),
        [(src, NcpId::new(5)), (sink, NcpId::new(6))],
    )
    .expect("valid app")
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig10");
    let network = star_with_failures();
    let app = app();
    let (paths, _) = assign_multipath(
        &DynamicRankingAssigner::new(),
        &app,
        &network,
        &network.capacity_map(),
        4,
        1e-6,
    );
    assert!(
        paths.len() >= 3,
        "expected at least 3 paths, got {}",
        paths.len()
    );
    println!(
        "extracted path rates: {:?}",
        paths
            .iter()
            .map(|p| (p.rate * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // --- Figure 10(a): BE availability and aggregate rate vs #paths ---
    println!("\n=== Figure 10(a): BE application (availability target 0.9) ===");
    let be_target = 0.9;
    let mut t_be = Table::new([
        "paths",
        "aggregate rate",
        "availability (analytic)",
        "availability (injected)",
        "meets 0.9 target",
    ]);
    let mut be_points = Vec::new();
    for k in 1..=paths.len().min(3) {
        let mut analyzer = PathAvailability::new();
        let mut injected: Vec<FailurePath> = Vec::new();
        let mut aggregate = 0.0;
        for path in &paths[..k] {
            let elements = path.placement.elements_used(&network);
            analyzer
                .add_path(&network, elements.iter().copied(), path.rate)
                .expect("small path set");
            injected.push(FailurePath {
                elements,
                rate: path.rate,
            });
            aggregate += path.rate;
        }
        let analytic = analyzer.any_working().expect("small path set");
        let measured = FailureSim::new(200_000, 42)
            .run_traced(&network, &injected, None, harness.trace())
            .availability;
        t_be.row([
            format!("{k}"),
            format!("{aggregate:.2}"),
            format!("{analytic:.4}"),
            format!("{measured:.4}"),
            if analytic >= be_target { "yes" } else { "no" }.to_owned(),
        ]);
        be_points.push((k as f64, analytic));
    }
    println!("{}", t_be.render());
    t_be.write_csv("fig10a_be_availability");

    // --- Figure 10(b): GR min-rate availability vs #paths ---
    // The requested rate sits just above the first path's rate, so one
    // path can never satisfy it — the paper's setup.
    let min_rate = paths[0].rate * 1.01;
    let gr_target = 0.85;
    println!("\n=== Figure 10(b): GR application (min rate {min_rate:.2}, target {gr_target}) ===");
    let mut t_gr = Table::new([
        "paths",
        "min-rate availability (analytic)",
        "min-rate availability (injected)",
        "meets 0.85 target",
    ]);
    let mut gr_points = Vec::new();
    for k in 1..=paths.len().min(4) {
        let mut analyzer = PathAvailability::new();
        let mut injected: Vec<FailurePath> = Vec::new();
        for path in &paths[..k] {
            let elements = path.placement.elements_used(&network);
            analyzer
                .add_path(&network, elements.iter().copied(), path.rate)
                .expect("small path set");
            injected.push(FailurePath {
                elements,
                rate: path.rate,
            });
        }
        let analytic = analyzer.min_rate(min_rate).expect("small path set");
        let measured = FailureSim::new(200_000, 43)
            .run_traced(&network, &injected, Some(min_rate), harness.trace())
            .min_rate_availability;
        t_gr.row([
            format!("{k}"),
            format!("{analytic:.4}"),
            format!("{measured:.4}"),
            if analytic >= gr_target { "yes" } else { "no" }.to_owned(),
        ]);
        gr_points.push((k as f64, analytic));
    }
    println!("{}", t_gr.render());
    let path = t_gr.write_csv("fig10b_gr_min_rate_availability");
    println!("wrote {}", path.display());
    let mut chart = LineChart::new(
        "Figure 10: availability vs number of paths",
        "task assignment paths",
        "availability",
    );
    chart.series("BE availability (target 0.9)", be_points);
    chart.series(
        format!("GR min-rate {min_rate:.2} (target 0.85)"),
        gr_points,
    );
    let svg = chart.write_svg("fig10_availability");
    println!("wrote {}", svg.display());
    harness.finish();
}
