//! Extension experiment: element-diverse multipath extraction.
//!
//! The paper iterates Algorithm 2 on residual capacities to obtain
//! additional task assignment paths (§IV-D); nothing steers later paths
//! away from the elements earlier paths already depend on, yet a backup
//! sharing the primary's flaky elements buys almost no availability.
//! `assign_multipath_diverse` adds a search-only capacity discount on
//! used elements; this experiment quantifies what that buys: for a fixed
//! number of paths, the availability achieved (and the availability per
//! unit of reserved capacity) with and without the diversity bias.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_alloc::PathAvailability;
use sparcle_bench::improvement;
use sparcle_bench::{mean, Table};
use sparcle_core::{assign_multipath_diverse, AssignedPath, DynamicRankingAssigner};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const SCENARIOS: usize = 80;
const PATHS: usize = 3;

fn availability(network: &sparcle_model::Network, paths: &[AssignedPath]) -> f64 {
    let mut analyzer = PathAvailability::new();
    for p in paths {
        analyzer
            .add_path(network, p.placement.elements_used(network), p.rate)
            .expect("small path sets");
    }
    analyzer.any_working().expect("small path sets")
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_diversity");
    let mut cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 2 },
        TopologyKind::FullyConnected,
    );
    cfg.link_failure = 0.05;
    cfg.ncp_failure = 0.02;
    let assigner = DynamicRankingAssigner::new();
    let mut rng = StdRng::seed_from_u64(0xd1f);

    let mut plain_avail = Vec::new();
    let mut diverse_avail = Vec::new();
    let mut plain_rate = Vec::new();
    let mut diverse_rate = Vec::new();
    for _ in 0..SCENARIOS {
        let s = cfg.sample(&mut rng).expect("valid scenario");
        let caps = s.network.capacity_map();
        let (plain, _) =
            assign_multipath_diverse(&assigner, &s.app, &s.network, &caps, PATHS, 1e-9, 1.0);
        let (diverse, _) =
            assign_multipath_diverse(&assigner, &s.app, &s.network, &caps, PATHS, 1e-9, 0.2);
        if plain.is_empty() || diverse.is_empty() {
            continue;
        }
        plain_avail.push(availability(&s.network, &plain));
        diverse_avail.push(availability(&s.network, &diverse));
        plain_rate.push(plain.iter().map(|p| p.rate).sum::<f64>());
        diverse_rate.push(diverse.iter().map(|p| p.rate).sum::<f64>());
    }

    let mut table = Table::new([
        "variant",
        "mean availability",
        "mean unavailability",
        "mean aggregate rate",
    ]);
    table.row([
        "plain residual (paper §IV-D)".to_owned(),
        format!("{:.4}", mean(&plain_avail)),
        format!("{:.4}", 1.0 - mean(&plain_avail)),
        format!("{:.3}", mean(&plain_rate)),
    ]);
    table.row([
        "diversity-biased (discount 0.2)".to_owned(),
        format!("{:.4}", mean(&diverse_avail)),
        format!("{:.4}", 1.0 - mean(&diverse_avail)),
        format!("{:.3}", mean(&diverse_rate)),
    ]);
    println!("=== extension: diverse multipath extraction ({PATHS} paths, flaky mesh) ===");
    println!("{}", table.render());
    println!(
        "unavailability reduction: {}",
        improvement(1.0 - mean(&plain_avail), 1.0 - mean(&diverse_avail))
    );
    let path = table.write_csv("extension_diversity");
    println!("wrote {}", path.display());
    harness.finish();
}
