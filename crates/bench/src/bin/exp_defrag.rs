//! Background-defragmentation experiment: what planned migration buys
//! on a long churn run (DESIGN.md §15).
//!
//! An edge/hub network with flaky hub links runs a long Poisson arrival
//! timeline twice per cell — defrag off, then defrag on with a swept
//! displaced-seconds-per-epoch budget. Churn strands applications on
//! whatever paths were best at their last reconcile; the defragmenter's
//! rollback-only probes find the net-positive planned moves and commit
//! them through the transactional core under the budget. The table
//! reports, per budget: committed migrations, probe volume, the BE
//! delivered-work integral and its uplift over the defrag-off run, and
//! the admission rate.
//!
//! Two invariants are asserted on every defrag-on cell:
//!
//! * the ledger's planned displaced-seconds never exceed
//!   `passes × budget` (the budget is a hard cap, not a hint);
//! * at the default budget the delivered-work integral strictly beats
//!   the defrag-off run (the plane pays for its churn).
//!
//! Extra flags on top of the shared harness ones:
//!
//! * `--horizon <s>` — simulated seconds per run (default 300).
//! * `--budgets <list>` — comma-separated displaced-seconds-per-epoch
//!   budgets to sweep (default `0.25,1,4`; the defrag-off run is always
//!   included as the `off` row).
//!
//! Pair with the provenance plane to follow one migrated subject:
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_defrag -- \
//!     --trace-out defrag.jsonl
//! cargo run --release -p sparcle-trace-tools --bin sparcle-trace -- \
//!     explain defrag.jsonl --pick migrated
//! ```

use sparcle_bench::{ExpFlags, ExpHarness, Table};
use sparcle_core::TraceHandle;
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{DefragConfig, ReconcilePolicy, RuntimeConfig, SparcleRuntime};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

/// Four edge hosts, two compute hubs; the fast hub's links are the
/// flaky ones, so failures strand applications on the slow hub — the
/// fragmentation the defragmenter exists to repair.
fn churn_network(flaky: f64) -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            flaky,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            flaky / 4.0,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Deterministic per-index mix: every third arrival Guaranteed-Rate,
/// Best-Effort priorities cycling 1..=4, endpoints walking the edges.
fn churn_app(index: u64) -> Application {
    let graph = if index.is_multiple_of(2) {
        linear_task_graph(&[60.0], &[1200.0, 600.0])
    } else {
        linear_task_graph(&[40.0, 40.0], &[1000.0, 800.0, 400.0])
    }
    .expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

struct CellResult {
    migrations: u64,
    passes: u64,
    probes: u64,
    delivered: f64,
    admitted: u64,
    arrivals: u64,
    displaced_seconds: f64,
}

fn run_cell(horizon: f64, defrag: Option<DefragConfig>, trace: TraceHandle<'_>) -> CellResult {
    let config = RuntimeConfig {
        horizon,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy: ReconcilePolicy::Fifo,
        defrag,
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 1.2 }.events(config.horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(0.08), arrivals, churn_app, config);
    let ledger = rt.run_traced(trace).clone();
    let (passes, probes) = rt.defrag().map_or((0, 0), |d| (d.passes(), d.probes()));
    CellResult {
        migrations: ledger.migrations(),
        passes,
        probes,
        delivered: ledger.be_rate_integral(),
        admitted: ledger.admitted(),
        arrivals: ledger.arrivals(),
        displaced_seconds: ledger.migration_displaced_seconds(),
    }
}

fn main() {
    let mut flags = ExpFlags::new();
    flags
        .value("horizon", "simulated seconds per run", "300")
        .value(
            "budgets",
            "comma-separated displaced-seconds-per-epoch budgets",
            "0.25,1,4",
        );
    let parsed = flags.parse();
    let horizon = parsed.f64("horizon");
    assert!(horizon > 0.0, "--horizon must be positive");
    let budgets: Vec<f64> = parsed
        .str("budgets")
        .split(',')
        .map(|b| b.trim().parse().expect("--budgets must be numbers"))
        .collect();
    let harness = ExpHarness::with_args("exp_defrag", parsed.shared());
    let default_budget = DefragConfig::default().budget_per_epoch;

    println!("=== Defragmentation: planned migration on a long churn run ===");
    let mut table = Table::new([
        "budget (disp-s/epoch)",
        "migrations",
        "passes",
        "probes",
        "BE delivered",
        "uplift vs off",
        "admission rate",
    ]);

    let off = run_cell(horizon, None, TraceHandle::none());
    table.row([
        "off".to_owned(),
        off.migrations.to_string(),
        "-".to_owned(),
        "-".to_owned(),
        format!("{:.0}", off.delivered),
        "-".to_owned(),
        format!("{:.3}", off.admitted as f64 / off.arrivals.max(1) as f64),
    ]);

    let mut default_uplift: Option<f64> = None;
    for &budget in &budgets {
        let cfg = DefragConfig {
            budget_per_epoch: budget,
            ..DefragConfig::default()
        };
        // Only the default-budget cell carries the trace, so the event
        // log holds one defrag timeline for `sparcle-trace explain`,
        // not one per swept budget.
        let traced = (budget - default_budget).abs() < 1e-12;
        let trace = if traced {
            harness.trace()
        } else {
            TraceHandle::none()
        };
        let on = run_cell(horizon, Some(cfg), trace);
        // The budget is a hard cap: planned displaced-seconds can never
        // exceed what the epochs granted.
        assert!(
            on.displaced_seconds <= on.passes as f64 * budget + 1e-9,
            "budget exceeded: {} displaced-seconds over {} passes at budget {budget}",
            on.displaced_seconds,
            on.passes,
        );
        let uplift = on.delivered / off.delivered.max(1e-12);
        if traced {
            default_uplift = Some(uplift);
            harness
                .trace()
                .counter("exp_defrag.migrations", on.migrations);
        }
        table.row([
            format!("{budget}"),
            on.migrations.to_string(),
            on.passes.to_string(),
            on.probes.to_string(),
            format!("{:.0}", on.delivered),
            format!("{:+.2}%", 100.0 * (uplift - 1.0)),
            format!("{:.3}", on.admitted as f64 / on.arrivals.max(1) as f64),
        ]);
    }

    println!("{}", table.render());
    if let Some(uplift) = default_uplift {
        assert!(
            uplift > 1.0,
            "defrag at the default budget must beat defrag-off: uplift {uplift:.4}"
        );
        println!(
            "defrag at the default budget ({default_budget} disp-s/epoch) delivered \
             {:+.2}% BE work over defrag-off",
            100.0 * (uplift - 1.0)
        );
    }
    let csv = table.write_csv("exp_defrag");
    println!("wrote {}", csv.display());
    harness.finish();
}
