//! Extension experiment: resource fluctuation over time (the paper's
//! §VI future work).
//!
//! One GR and two BE applications are admitted on a star network whose
//! element capacities follow a bounded random walk. Each epoch the
//! system re-solves the BE allocation against the fluctuated capacities
//! (placements never migrate). Compared against a *static* strategy
//! that keeps the day-one rates forever:
//!
//! * adaptive re-allocation keeps the realized rates feasible every
//!   epoch (no element oversubscribed);
//! * the static strategy oversubscribes whenever capacity dips below
//!   its day-one assumptions;
//! * GR guarantees are flagged in the epochs where reservations no
//!   longer fit.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_bench::{mean, Table};
use sparcle_core::SparcleSystem;
use sparcle_model::{LoadMap, QoeClass};
use sparcle_sim::FluctuationModel;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

const EPOCHS: usize = 300;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fluctuation");
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 3 },
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(0xf1c);
    let scenario = cfg.sample(&mut rng).expect("valid scenario");
    let network = scenario.network.clone();

    let mut system = SparcleSystem::new(network.clone());
    let gr = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::guaranteed_rate(0.4, 0.9))
        .unwrap();
    let be1 = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::best_effort(2.0))
        .unwrap();
    let be2 = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::best_effort(1.0))
        .unwrap();
    let gr_id = system.submit(gr).unwrap().id().expect("gr admitted");
    system.submit(be1).unwrap();
    system.submit(be2).unwrap();
    let static_rates: Vec<f64> = system.be_apps().iter().map(|a| a.allocated_rate).collect();
    let static_loads: Vec<LoadMap> = system
        .be_apps()
        .iter()
        .map(|a| a.combined_load.clone())
        .collect();

    let model = FluctuationModel {
        floor: 0.4,
        step: 0.15,
        seed: 77,
    };
    let mut series = model.series(&network);
    let mut adaptive_rates = Vec::new();
    let mut gr_violation_epochs = 0usize;
    let mut static_infeasible_epochs = 0usize;
    for _ in 0..EPOCHS {
        let caps = series.step();
        // Static strategy feasibility: day-one rates against today's
        // capacities (GR reservation + static BE loads).
        let mut demand = LoadMap::zeroed(&network);
        for gr in system.gr_apps() {
            for (path, rate) in &gr.paths {
                demand.merge_scaled(&path.load, *rate);
            }
        }
        for (load, rate) in static_loads.iter().zip(&static_rates) {
            demand.merge_scaled(load, *rate);
        }
        // Feasible iff a unit of the combined demand fits.
        if caps.bottleneck_rate(&demand) < 1.0 {
            static_infeasible_epochs += 1;
        }

        let violated = system.apply_capacity_fluctuation(caps);
        if violated.contains(&gr_id) {
            gr_violation_epochs += 1;
        }
        adaptive_rates.push(
            system
                .be_apps()
                .iter()
                .map(|a| a.allocated_rate)
                .sum::<f64>(),
        );
    }

    let mut table = Table::new(["metric", "value"]);
    table.row([
        "initial BE rate total".to_owned(),
        format!("{:.3}", static_rates.iter().sum::<f64>()),
    ]);
    table.row([
        "adaptive BE rate total (mean over epochs)".to_owned(),
        format!("{:.3}", mean(&adaptive_rates)),
    ]);
    table.row([
        "adaptive: epochs with oversubscription".to_owned(),
        "0 (re-solved each epoch)".to_owned(),
    ]);
    table.row([
        "static: epochs with oversubscription".to_owned(),
        format!("{static_infeasible_epochs} / {EPOCHS}"),
    ]);
    table.row([
        "GR reservation violated (epochs)".to_owned(),
        format!("{gr_violation_epochs} / {EPOCHS}"),
    ]);
    println!("=== extension: capacity fluctuation (§VI future work) ===");
    println!("{}", table.render());
    let path = table.write_csv("extension_fluctuation");
    println!("wrote {}", path.display());
    harness.finish();
}
