//! Figure 13: CDF of the proportional-fair utility (problem (4)) with
//! two Best-Effort applications, `P1 = 2 P2`.
//!
//! Two diamond-graph BE applications arrive on a balanced star network
//! of eight NCPs. For each task-assignment algorithm, both applications
//! are placed sequentially (the second against the eq.-(6) predicted
//! capacities, exactly as SPARCLE's pipeline prescribes — prediction is
//! allocation-side and shared by all algorithms) and the exact rates
//! come from solving (4). The CDF of the achieved utility
//! `Σ P_i log x_i` is compared across algorithms.
//!
//! Paper claim: SPARCLE attains the best utility distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_alloc::{ConstraintSystem, PriorityLoads, ProportionalFairSolver};
use sparcle_baselines::standard_roster;
use sparcle_bench::{empirical_cdf, mean, Table};
use sparcle_model::QoeClass;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::BTreeMap;

const SCENARIOS: usize = 150;
const P1: f64 = 2.0;
const P2: f64 = 1.0;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig13");
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let solver = ProportionalFairSolver::new();
    let roster = standard_roster(0x13);
    let mut utilities: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x13_13);
    for _ in 0..SCENARIOS {
        // Two independent app draws on one shared network draw.
        let s1 = cfg.sample(&mut rng).expect("valid scenario");
        let network = s1.network.clone();
        let app1 = s1
            .app
            .clone()
            .with_qoe(QoeClass::best_effort(P1))
            .expect("valid qoe");
        let app2 = cfg
            .sample(&mut rng)
            .expect("valid scenario")
            .app
            .with_qoe(QoeClass::best_effort(P2))
            .expect("valid qoe");

        for algo in &roster {
            let caps = network.capacity_map();
            let Ok(path1) = algo.assign(&app1, &network, &caps) else {
                continue;
            };
            // Predict app2's share (eq. 6) before placing it.
            let mut prio = PriorityLoads::zeroed(&network);
            prio.add_app(&path1.load, P1);
            let predicted = prio.predict(&caps, P2);
            let Ok(path2) = algo.assign(&app2, &network, &predicted) else {
                continue;
            };
            // Exact rates from (4) on the *true* capacities.
            let system = ConstraintSystem::from_loads(&network, &caps, &[&path1.load, &path2.load]);
            if let Ok(alloc) = solver.solve(&system, &[P1, P2]) {
                utilities
                    .entry(algo.name().to_owned())
                    .or_default()
                    .push(alloc.utility);
            }
        }
    }

    let mut summary = Table::new(["algorithm", "mean utility", "scenarios"]);
    let mut cdf_table = Table::new(["algorithm", "utility", "F"]);
    let lo = utilities
        .values()
        .flatten()
        .fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = utilities
        .values()
        .flatten()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    for (name, values) in &utilities {
        summary.row([
            name.clone(),
            format!("{:.3}", mean(values)),
            format!("{}", values.len()),
        ]);
        // Shift to positive axis for the generic CDF sampler.
        let shifted: Vec<f64> = values.iter().map(|u| u - lo).collect();
        for (x, f) in empirical_cdf(&shifted, hi - lo, 40) {
            cdf_table.row([name.clone(), format!("{:.4}", x + lo), format!("{f:.4}")]);
        }
    }
    println!("=== Figure 13: utility of (4), two BE apps, P1 = 2 P2 ===");
    println!("{}", summary.render());
    summary.write_csv("fig13_summary");
    let path = cdf_table.write_csv("fig13_cdf");
    println!("wrote {}", path.display());

    let sparcle = mean(&utilities["SPARCLE"]);
    let best_other = utilities
        .iter()
        .filter(|(n, _)| n.as_str() != "SPARCLE")
        .map(|(_, v)| mean(v))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "SPARCLE mean utility {sparcle:.3} vs best baseline {best_other:.3} (paper: SPARCLE outperforms all)"
    );
    harness.finish();
}
