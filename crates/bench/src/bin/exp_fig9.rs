//! Figure 9: energy efficiency comparison.
//!
//! Linear task graph on a linear network across the three bottleneck
//! regimes; for every scenario each algorithm's placement is evaluated
//! with the utilization-proportional CPU + rate-proportional radio
//! energy model, and efficiency (data units per joule) is averaged.
//!
//! Paper claims: in the balanced case SPARCLE improves efficiency by
//! ~126 % / ~190 % / ~59 % over Random / T-Storm / VNE, and by > 53 %
//! over GS/GRand in the link-bottleneck case (concentrating CTs on
//! fewer NCPs saves transmission energy).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::standard_roster;
use sparcle_bench::svg::BarChart;
use sparcle_bench::{improvement, mean, ExpHarness, Table};
use sparcle_sim::EnergyModel;
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::BTreeMap;

const SCENARIOS: usize = 120;

fn main() {
    let harness = ExpHarness::new("exp_fig9");
    let model = EnergyModel::default();
    let mut table = Table::new([
        "case",
        "algorithm",
        "mean efficiency (units/J)",
        "vs SPARCLE",
    ]);
    println!("=== Figure 9: energy efficiency (linear graph, linear network) ===");
    let mut balanced_means: BTreeMap<String, f64> = BTreeMap::new();
    let mut link_means: BTreeMap<String, f64> = BTreeMap::new();
    let mut chart_values: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut chart_cases: Vec<String> = Vec::new();
    for case in BottleneckCase::SINGLE_RESOURCE {
        let mut cfg =
            ScenarioConfig::new(case, GraphKind::Linear { stages: 4 }, TopologyKind::Linear);
        cfg.ncps = 8;
        let mut rng = StdRng::seed_from_u64(0x99u64 ^ (case as u64) << 4);
        let roster = standard_roster(0x1234);
        let mut efficiencies: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for _ in 0..SCENARIOS {
            let scenario = cfg.sample(&mut rng).expect("valid scenario");
            let caps = scenario.network.capacity_map();
            for algo in &roster {
                let eff = match algo.assign_traced(
                    &scenario.app,
                    &scenario.network,
                    &caps,
                    harness.trace(),
                ) {
                    Ok(path) => {
                        model
                            .evaluate(&scenario.network, &caps, &path.load, path.rate)
                            .units_per_joule
                    }
                    Err(_) => 0.0,
                };
                efficiencies
                    .entry(algo.name().to_owned())
                    .or_default()
                    .push(eff);
            }
        }
        let sparcle_mean = mean(&efficiencies["SPARCLE"]);
        chart_cases.push(case.to_string());
        for (name, values) in &efficiencies {
            chart_values
                .entry(name.clone())
                .or_default()
                .push(mean(values));
            let m = mean(values);
            table.row([
                case.to_string(),
                name.clone(),
                format!("{m:.4}"),
                improvement(sparcle_mean, m),
            ]);
            if case == BottleneckCase::Balanced {
                balanced_means.insert(name.clone(), m);
            }
            if case == BottleneckCase::LinkBottleneck {
                link_means.insert(name.clone(), m);
            }
        }
    }
    println!("{}", table.render());
    let path = table.write_csv("fig9_energy_efficiency");
    println!("wrote {}", path.display());
    let mut chart = BarChart::new(
        "Figure 9: energy efficiency",
        "bottleneck case",
        "data units per joule",
    );
    for case in &chart_cases {
        chart.category(case.clone());
    }
    for (name, values) in chart_values {
        chart.series(name, values);
    }
    let svg = chart.write_svg("fig9_energy_efficiency");
    println!("wrote {}", svg.display());

    println!("\n=== headline claims (balanced case) ===");
    let s = balanced_means["SPARCLE"];
    for (name, paper) in [("Random", "+126%"), ("T-Storm", "+190%"), ("VNE", "+59%")] {
        println!(
            "SPARCLE vs {name}: {} (paper {paper})",
            improvement(s, balanced_means[name])
        );
    }
    println!("=== headline claims (link-bottleneck case) ===");
    let s = link_means["SPARCLE"];
    for name in ["GS", "GRand"] {
        println!(
            "SPARCLE vs {name}: {} (paper: >+53%)",
            improvement(s, link_means[name])
        );
    }
    harness.finish();
}
