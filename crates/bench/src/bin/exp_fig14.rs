//! Figure 14: total processing rate of admitted Guaranteed-Rate
//! applications.
//!
//! A stream of GR applications (mixed diamond and linear task graphs,
//! random requested rates) arrives at a star network. Each algorithm
//! runs the same admission loop (§IV-D): extract task assignment paths
//! on residual capacities, reserve rate up to the request, admit when
//! the request is covered, reject (restoring capacity) otherwise. The
//! metric is the total reserved rate of admitted applications.
//!
//! Paper claim: SPARCLE admits considerably more aggregate GR rate than
//! every baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_baselines::{standard_roster, Assigner};
use sparcle_bench::{improvement, mean, Table};
use sparcle_model::{Application, CapacityMap, Network, QoeClass};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};
use std::collections::BTreeMap;

const ROUNDS: usize = 40;
const APPS_PER_ROUND: usize = 6;
const MAX_PATHS: usize = 6;

/// Runs the GR admission loop for one application with an arbitrary
/// assigner: returns the reserved rate if admitted (mutating the
/// residual capacities), or `None` (restoring them).
fn admit_gr(
    assigner: &dyn Assigner,
    app: &Application,
    network: &Network,
    residual: &mut CapacityMap,
    min_rate: f64,
) -> Option<f64> {
    let snapshot = residual.clone();
    let mut covered = 0.0;
    for _ in 0..MAX_PATHS {
        let Ok(path) = assigner.assign(app, network, residual) else {
            break;
        };
        if !(path.rate.is_finite() && path.rate > 1e-9) {
            break;
        }
        let reserve = path.rate.min(min_rate - covered);
        residual.subtract_load(&path.load, reserve);
        covered += reserve;
        if covered + 1e-9 >= min_rate {
            return Some(min_rate);
        }
    }
    *residual = snapshot;
    None
}

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_fig14");
    let mut totals: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut admitted_counts: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let diamond_cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let linear_cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 4 },
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(0x14_14);
    for _ in 0..ROUNDS {
        // One network per round, shared by all algorithms; a mixed GR
        // app arrival sequence with random requested rates.
        let base = diamond_cfg.sample(&mut rng).expect("valid scenario");
        let network = base.network.clone();
        let mut apps: Vec<(Application, f64)> = Vec::new();
        for k in 0..APPS_PER_ROUND {
            let graph_cfg = if k % 2 == 0 {
                &diamond_cfg
            } else {
                &linear_cfg
            };
            let app = graph_cfg.sample(&mut rng).expect("valid scenario").app;
            let min_rate = rng.gen_range(0.3..1.5);
            let app = app
                .with_qoe(QoeClass::guaranteed_rate(min_rate, 0.99))
                .expect("valid qoe");
            apps.push((app, min_rate));
        }
        for algo in standard_roster(0x14) {
            let mut residual = network.capacity_map();
            let mut total = 0.0;
            let mut count = 0.0;
            for (app, min_rate) in &apps {
                if let Some(rate) = admit_gr(algo.as_ref(), app, &network, &mut residual, *min_rate)
                {
                    total += rate;
                    count += 1.0;
                }
            }
            totals
                .entry(algo.name().to_owned())
                .or_default()
                .push(total);
            admitted_counts
                .entry(algo.name().to_owned())
                .or_default()
                .push(count);
        }
    }

    let sparcle_mean = mean(&totals["SPARCLE"]);
    let mut table = Table::new([
        "algorithm",
        "total admitted GR rate (mean)",
        "apps admitted (mean)",
        "SPARCLE vs this",
    ]);
    println!("=== Figure 14: total admitted GR rate (diamond+linear graphs, star network) ===");
    for (name, values) in &totals {
        table.row([
            name.clone(),
            format!("{:.3}", mean(values)),
            format!("{:.2}", mean(&admitted_counts[name])),
            improvement(sparcle_mean, mean(values)),
        ]);
    }
    println!("{}", table.render());
    let path = table.write_csv("fig14_gr_admission");
    println!("wrote {}", path.display());
    harness.finish();
}
