//! Runs every `exp_*` experiment binary in sequence — regenerating all
//! tables and figures of the paper's evaluation section in one go.
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_all
//! ```

use std::process::Command;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "exp_fig6",
        "Tables I/II + Figure 6: face-detection testbed sweep",
    ),
    (
        "exp_fig8",
        "Figure 8: SPARCLE vs exhaustive optimum percentiles",
    ),
    ("exp_fig9", "Figure 9: energy efficiency"),
    ("exp_fig10", "Figure 10: BE/GR availability vs #paths"),
    ("exp_fig11", "Figure 11: rate CDFs across bottleneck cases"),
    ("exp_fig12", "Figure 12: multi-resource percentiles"),
    (
        "exp_fig13",
        "Figure 13: two-app proportional-fair utility CDF",
    ),
    ("exp_fig14", "Figure 14: total admitted GR rate"),
    ("exp_ablation", "Ablations: routing / ranking / prediction"),
    ("exp_fluctuation", "Extension: capacity fluctuation (§VI)"),
    ("exp_latency", "Extension: end-to-end latency analysis"),
    ("exp_diversity", "Extension: diverse multipath extraction"),
    ("exp_admission", "Extension: GR admission under churn"),
    (
        "exp_policy",
        "Extension: proportional-fair vs max-min allocation",
    ),
    (
        "exp_aimd",
        "Extension: AIMD rate control vs analytic bottleneck",
    ),
    ("exp_scaling", "Theorem 2: running-time scaling table"),
];

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_all");
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe directory");
    let mut failures = Vec::new();
    for (bin, what) in EXPERIMENTS {
        println!("\n================================================================");
        println!("== {bin}: {what}");
        println!("================================================================");
        let status = Command::new(bin_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; CSVs in target/experiments/",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
    harness.finish();
}
