//! Runs every `exp_*` experiment binary in sequence — regenerating all
//! tables and figures of the paper's evaluation section in one go.
//!
//! ```sh
//! cargo run --release -p sparcle-bench --bin exp_all
//! ```

use std::process::Command;

use sparcle_bench::EXPERIMENTS;

fn main() {
    let harness = sparcle_bench::ExpHarness::new("exp_all");
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe directory");
    let mut failures = Vec::new();
    for (bin, what) in EXPERIMENTS {
        println!("\n================================================================");
        println!("== {bin}: {what}");
        println!("================================================================");
        let status = Command::new(bin_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; CSVs in target/experiments/",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
    harness.finish();
}
