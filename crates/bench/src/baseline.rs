//! Perf-regression baseline harness.
//!
//! Eight pinned, deterministic workloads (compact cuts of `exp_fig6`,
//! `exp_scaling`, `exp_scale`, `exp_churn`, and `exp_service`, plus
//! the incremental-state solver timeline and the monitor- and
//! provenance-overhead ratios) each produce a [`BenchResult`] — wall
//! time, γ-cache hit rate, DES events/sec, peak event-queue depth,
//! per-event BE solve cost, warm-start Newton steps, placements/sec,
//! admission throughput and decision latency, and the observability
//! and provenance planes' on/off wall-time ratios — serialized to
//! `BENCH_<experiment>.json`. The committed copies
//! under `benchmarks/` are the baseline; `exp_baseline compare` re-runs
//! the workloads and exits nonzero when a metric regresses past its
//! tolerance, which is how the nightly CI gate catches performance
//! drift before it lands.
//!
//! Tolerances are direction-aware and per-metric: deterministic metrics
//! (cache hit rate, queue depth — identical on every run by the
//! determinism contract) use a tight 2 % band, while wall-clock metrics
//! default to a loose 50 % band that `--tolerance` can override, since
//! CI machines are noisy. A metric whose baseline value is zero or
//! missing is skipped rather than gated.

use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_baselines::{Assigner, CloudAssigner, HeftAssigner, TStormAssigner, VneAssigner};
use sparcle_core::{DynamicRankingAssigner, PlacementEngine, TraceHandle};
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{ReconcilePolicy, RuntimeConfig, SparcleRuntime};
use sparcle_sim::{simulate_flows_traced, ArrivalProcess, FlowSimConfig, SimApp};
use sparcle_telemetry::{CollectRecorder, Event, Json};
use sparcle_workloads::face_detection::{face_detection_app, testbed_network, CLOUD};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::{
    ArrivalTrace, BottleneckCase, GraphKind, ScaleSpec, ScenarioConfig, TopologyKind,
};

/// One metric of a [`BenchResult`] and how to judge a change in it.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Key in the serialized `metrics` object.
    pub name: &'static str,
    /// `true` when larger values are improvements (throughput-like);
    /// `false` when smaller values are (time-, depth-like).
    pub higher_is_better: bool,
    /// Deterministic metrics are identical run-to-run, so they get the
    /// tight [`DETERMINISTIC_TOLERANCE`] instead of the wall tolerance.
    pub deterministic: bool,
    /// An absolute relative band that overrides both the deterministic
    /// and wall tolerances — for metrics that are already ratios of two
    /// same-machine wall clocks, where machine noise cancels and the
    /// band IS the acceptance criterion (the monitor's ≤ 5 % overhead
    /// budget).
    pub fixed_tolerance: Option<f64>,
}

/// The thirteen gated metrics, in serialization order.
pub const METRIC_SPECS: [MetricSpec; 13] = [
    MetricSpec {
        name: "wall_time_s",
        higher_is_better: false,
        deterministic: false,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "gamma_cache_hit_rate",
        higher_is_better: true,
        deterministic: true,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "events_per_sec",
        higher_is_better: true,
        deterministic: false,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "peak_queue_depth",
        higher_is_better: false,
        deterministic: true,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "be_solve_ms_per_event",
        higher_is_better: false,
        deterministic: false,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "warm_inner_iters_per_solve",
        higher_is_better: false,
        deterministic: true,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "placements_per_sec",
        higher_is_better: true,
        deterministic: false,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "monitor_overhead_ratio",
        higher_is_better: false,
        deterministic: false,
        fixed_tolerance: Some(0.05),
    },
    MetricSpec {
        name: "admissions_per_sec",
        higher_is_better: true,
        deterministic: false,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "p99_decision_ms",
        higher_is_better: false,
        deterministic: true,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "provenance_overhead_ratio",
        higher_is_better: false,
        deterministic: false,
        fixed_tolerance: Some(0.05),
    },
    MetricSpec {
        name: "delivered_rate_uplift",
        higher_is_better: true,
        deterministic: true,
        fixed_tolerance: None,
    },
    MetricSpec {
        name: "defrag_overhead_ratio",
        higher_is_better: false,
        deterministic: false,
        fixed_tolerance: None,
    },
];

/// Relative band for deterministic metrics (float formatting slack
/// only — the values themselves must not move).
pub const DETERMINISTIC_TOLERANCE: f64 = 0.02;

/// Default relative band for wall-clock metrics on shared hardware.
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.5;

/// The measured outcome of one pinned experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Experiment name (`BENCH_<experiment>.json`).
    pub experiment: String,
    /// End-to-end wall time of the workload, seconds.
    pub wall_time_s: f64,
    /// γ-cache hits / (hits + misses) over all placements (0 when the
    /// workload performed none).
    pub gamma_cache_hit_rate: f64,
    /// Discrete-event throughput: events processed / wall time (0 when
    /// the workload runs no event loop).
    pub events_per_sec: f64,
    /// Peak future-event-list depth of the DES (0 when not simulated).
    pub peak_queue_depth: f64,
    /// Wall-clock milliseconds spent in BE allocation solves per DES
    /// event (0 when the workload runs no online system).
    pub be_solve_ms_per_event: f64,
    /// Newton steps per warm-started BE solve — deterministic, so it
    /// gates the warm-start schedule itself rather than the machine.
    pub warm_inner_iters_per_solve: f64,
    /// CT placements committed per second of wall time (0 when the
    /// workload performs no placements).
    pub placements_per_sec: f64,
    /// Monitor-on wall time over monitor-off wall time of the same
    /// workload on the same machine (0 when the workload does not
    /// measure the observability plane). Machine noise cancels in the
    /// ratio, so it gets a fixed 5 % band — the monitor's overhead
    /// budget.
    pub monitor_overhead_ratio: f64,
    /// Admission decisions served per second of wall time by the
    /// service plane (0 when the workload runs no admission service).
    pub admissions_per_sec: f64,
    /// 99th-percentile arrival-to-decision latency of the admission
    /// service in simulated milliseconds — sim-time, hence
    /// deterministic: it gates the batching/backpressure policy itself,
    /// not the machine (0 when no admission service runs).
    pub p99_decision_ms: f64,
    /// Provenance-on wall time over provenance-off wall time of the
    /// same traced workload on the same machine (0 when the workload
    /// does not measure the provenance plane). Like the monitor ratio,
    /// machine noise cancels, so it rides a fixed 5 % band — the
    /// decision-provenance plane's overhead budget (DESIGN.md §14).
    pub provenance_overhead_ratio: f64,
    /// Defrag-on BE delivered-work integral over defrag-off on the same
    /// churn timeline at the default migration budget (0 when the
    /// workload does not exercise the defrag plane). Pure sim-time,
    /// hence deterministic: the gate pins the re-optimizer's value, not
    /// the machine — a drop means defrag stopped finding (or started
    /// mis-scoring) net-positive moves.
    pub delivered_rate_uplift: f64,
    /// Defrag-on wall time over defrag-off wall time of the same churn
    /// workload on the same machine (0 when not measured). The probe
    /// pass does real assignment work, so this rides the wall band
    /// rather than a fixed few-percent budget; it catches the probe
    /// loop regressing into rebuild-everything behaviour.
    pub defrag_overhead_ratio: f64,
}

impl BenchResult {
    /// Metric values in [`METRIC_SPECS`] order.
    pub fn metrics(&self) -> [f64; 13] {
        [
            self.wall_time_s,
            self.gamma_cache_hit_rate,
            self.events_per_sec,
            self.peak_queue_depth,
            self.be_solve_ms_per_event,
            self.warm_inner_iters_per_solve,
            self.placements_per_sec,
            self.monitor_overhead_ratio,
            self.admissions_per_sec,
            self.p99_decision_ms,
            self.provenance_overhead_ratio,
            self.delivered_rate_uplift,
            self.defrag_overhead_ratio,
        ]
    }

    /// Serializes to the committed `BENCH_*.json` shape.
    pub fn to_json(&self) -> Json {
        let metrics = METRIC_SPECS
            .iter()
            .zip(self.metrics())
            .map(|(spec, value)| (spec.name, Json::num(value)))
            .collect::<Vec<_>>();
        Json::obj([
            ("experiment", Json::Str(self.experiment.clone())),
            ("metrics", Json::obj(metrics)),
        ])
    }

    /// Parses a serialized result; `None` when the shape is wrong.
    /// Unknown metrics are ignored and missing ones read as 0 (skipped
    /// by [`compare`]), so the format can grow without breaking old
    /// baselines.
    pub fn from_json(json: &Json) -> Option<BenchResult> {
        let experiment = json.get("experiment")?.as_str()?.to_owned();
        let metrics = json.get("metrics")?;
        let value = |name: &str| metrics.get(name).and_then(Json::as_num).unwrap_or(0.0);
        Some(BenchResult {
            experiment,
            wall_time_s: value("wall_time_s"),
            gamma_cache_hit_rate: value("gamma_cache_hit_rate"),
            events_per_sec: value("events_per_sec"),
            peak_queue_depth: value("peak_queue_depth"),
            be_solve_ms_per_event: value("be_solve_ms_per_event"),
            warm_inner_iters_per_solve: value("warm_inner_iters_per_solve"),
            placements_per_sec: value("placements_per_sec"),
            monitor_overhead_ratio: value("monitor_overhead_ratio"),
            admissions_per_sec: value("admissions_per_sec"),
            p99_decision_ms: value("p99_decision_ms"),
            provenance_overhead_ratio: value("provenance_overhead_ratio"),
            delivered_rate_uplift: value("delivered_rate_uplift"),
            defrag_overhead_ratio: value("defrag_overhead_ratio"),
        })
    }
}

/// One metric that moved past its tolerance in the wrong direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub metric: &'static str,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Relative band that was exceeded.
    pub tolerance: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} -> {:.4} ({:+.1}%, tolerance ±{:.0}%)",
            self.metric,
            self.baseline,
            self.current,
            100.0 * (self.current - self.baseline) / self.baseline,
            100.0 * self.tolerance,
        )
    }
}

/// Direction-aware comparison of a fresh result against the committed
/// baseline. Metrics with a zero or non-finite baseline are skipped
/// (the workload did not produce them when the baseline was recorded).
pub fn compare(
    current: &BenchResult,
    baseline: &BenchResult,
    wall_tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (spec, (cur, base)) in METRIC_SPECS
        .iter()
        .zip(current.metrics().into_iter().zip(baseline.metrics()))
    {
        if !base.is_finite() || base == 0.0 {
            continue;
        }
        let tolerance = spec.fixed_tolerance.unwrap_or(if spec.deterministic {
            DETERMINISTIC_TOLERANCE
        } else {
            wall_tolerance
        });
        let regressed = if spec.higher_is_better {
            cur < base * (1.0 - tolerance)
        } else {
            cur > base * (1.0 + tolerance)
        };
        if regressed {
            regressions.push(Regression {
                metric: spec.name,
                baseline: base,
                current: cur,
                tolerance,
            });
        }
    }
    regressions
}

/// The committed-baseline directory (`<repo>/benchmarks`).
pub fn baselines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

/// `<dir>/BENCH_<experiment>.json`.
pub fn result_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("BENCH_{experiment}.json"))
}

/// A named baseline workload: `(name, runner)`.
pub type BaselineExperiment = (&'static str, fn() -> BenchResult);

/// The pinned baseline workloads, each a deterministic compact cut of
/// the experiment it is named after.
pub const BASELINE_EXPERIMENTS: [BaselineExperiment; 9] = [
    ("fig6_placement", run_fig6_placement),
    ("scaling_assign", run_scaling_assign),
    ("scale_assign", run_scale_assign),
    ("churn_runtime", run_churn_runtime),
    ("churn_solver", run_churn_solver),
    ("churn_monitor", run_churn_monitor),
    ("churn_provenance", run_churn_provenance),
    ("service_admission", run_service_admission),
    ("churn_defrag", run_churn_defrag),
];

/// Runs one registered baseline experiment by name.
pub fn run_experiment(name: &str) -> Option<BenchResult> {
    BASELINE_EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, run)| run())
}

fn hit_rate(snapshot: &sparcle_telemetry::MetricsSnapshot) -> f64 {
    let hits = snapshot.counter("gamma_cache.hits") as f64;
    let misses = snapshot.counter("gamma_cache.misses") as f64;
    if hits + misses == 0.0 {
        0.0
    } else {
        hits / (hits + misses)
    }
}

fn peak_depth(events: &[Event]) -> f64 {
    events
        .iter()
        .filter_map(|e| match e {
            Event::SimQueueDepth { depth, .. } => Some(*depth),
            _ => None,
        })
        .max()
        .unwrap_or(0) as f64
}

/// Figure-6 cut: the 5-assigner × 3-bandwidth placement sweep
/// (repeated so the wall clock rises above timer noise) plus one long
/// saturating flow simulation of the 0.5 Mbps SPARCLE placement.
fn run_fig6_placement() -> BenchResult {
    const SWEEP_REPS: usize = 30;
    let recorder = CollectRecorder::new();
    let trace = TraceHandle::new(&recorder);
    let app = face_detection_app(QoeClass::best_effort(1.0)).expect("valid workload");

    let start = Instant::now();
    let mut sim_placement = None;
    for rep in 0..SWEEP_REPS {
        for &bw in &[0.5, 10.0, 22.0] {
            let network = testbed_network(bw);
            let caps = network.capacity_map();
            let algos: Vec<Box<dyn Assigner>> = vec![
                Box::new(DynamicRankingAssigner::new()),
                Box::new(HeftAssigner::new()),
                Box::new(TStormAssigner::new()),
                Box::new(VneAssigner::new()),
                Box::new(CloudAssigner::new(CLOUD)),
            ];
            for algo in &algos {
                let path = algo.assign_traced(&app, &network, &caps, trace);
                if rep == 0 && bw == 0.5 && algo.name() == "SPARCLE" {
                    sim_placement = Some(path.expect("sparcle places at 0.5 Mbps"));
                }
            }
        }
    }
    let placed = sim_placement.expect("sweep includes SPARCLE at 0.5 Mbps");
    let network = testbed_network(0.5);
    let rate = 0.9 * placed.rate;
    simulate_flows_traced(
        &network,
        &[SimApp {
            graph: app.graph(),
            placement: &placed.placement,
            rate,
        }],
        &FlowSimConfig {
            duration: 12_000.0 / rate.max(1e-3),
            warmup: 600.0 / rate.max(1e-3),
            arrivals: ArrivalProcess::Poisson { seed: 7 },
        },
        trace,
    );
    let wall = start.elapsed().as_secs_f64();

    let snapshot = recorder.snapshot();
    let processed = snapshot.counter("sim.events.processed") as f64;
    BenchResult {
        experiment: "fig6_placement".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: hit_rate(&snapshot),
        events_per_sec: if wall > 0.0 { processed / wall } else { 0.0 },
        peak_queue_depth: peak_depth(&recorder.events()),
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// Drives one full Algorithm-2 assignment the way
/// [`DynamicRankingAssigner`] does (serial cached mode), but seeded
/// with `rows` exported from a previous engine over the same scenario —
/// the cross-engine γ-row adoption path that online re-placement leans
/// on. Returns the number of CT commits performed.
fn assign_with_adopted_rows(
    app: &Application,
    network: &Network,
    caps: &sparcle_model::CapacityMap,
    rows: &sparcle_core::GammaRows,
    trace: TraceHandle<'_>,
) -> usize {
    let span = trace.span("engine.assign");
    let mut engine = PlacementEngine::new_traced(app, network, caps, trace).expect("assignable");
    engine.adopt_rows(rows);
    let mut commits = 0;
    while let Some((ct, host, _)) = engine.rank_round(1).expect("rankable") {
        engine.commit(ct, host).expect("committable");
        commits += 1;
    }
    engine.finish().expect("assignable");
    span.finish();
    commits
}

/// Pre-computes the round-1 γ rows for a scenario with a throwaway
/// engine, for every benchmark rep to adopt.
fn seed_rows(
    app: &Application,
    network: &Network,
    caps: &sparcle_model::CapacityMap,
) -> sparcle_core::GammaRows {
    let mut seeder =
        PlacementEngine::new_traced(app, network, caps, TraceHandle::none()).expect("assignable");
    seeder.rank_round(1).expect("rankable");
    seeder.export_rows().expect("no unpinned commits yet")
}

/// Theorem-2 cut: repeated assignment on the largest `exp_scaling`
/// network point (32 NCPs, 8-stage linear graph), every rep adopting
/// the γ rows of a one-time seeder engine. No DES, so the event-loop
/// metrics stay 0 and the gate watches wall time, placements/sec, and
/// the γ-cache (adoption makes round 1 all hits, lifting the hit rate
/// well above the cold-start ~3 %).
fn run_scaling_assign() -> BenchResult {
    const REPS: usize = 200;
    let cfg = {
        let mut c = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 8 },
            TopologyKind::Star,
        );
        c.ncps = 32;
        c
    };
    let scenario = cfg
        .sample(&mut StdRng::seed_from_u64(1))
        .expect("valid scenario");
    let caps = scenario.network.capacity_map();
    let rows = seed_rows(&scenario.app, &scenario.network, &caps);

    let recorder = CollectRecorder::new();
    let mut placements = 0usize;
    let start = Instant::now();
    for _ in 0..REPS {
        placements += assign_with_adopted_rows(
            &scenario.app,
            &scenario.network,
            &caps,
            &rows,
            TraceHandle::new(&recorder),
        );
    }
    let wall = start.elapsed().as_secs_f64();
    BenchResult {
        experiment: "scaling_assign".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: hit_rate(&recorder.snapshot()),
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: if wall > 0.0 {
            placements as f64 / wall
        } else {
            0.0
        },
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// `exp_scale` cut: repeated assignment of the backbone-crossing
/// pipeline on a 5000-NCP hub-and-spoke topology (the CSR
/// representation's home turf — the legacy adjacency walk dominates at
/// this size). Same adoption pattern as [`run_scaling_assign`], fewer
/// reps since each assignment sweeps a 5k-node graph.
fn run_scale_assign() -> BenchResult {
    const REPS: usize = 20;
    const NCPS: usize = 5_000;
    let scenario = ScaleSpec::new(NCPS).build().expect("valid scale scenario");
    let caps = scenario.network.capacity_map();
    let rows = seed_rows(&scenario.app, &scenario.network, &caps);

    let recorder = CollectRecorder::new();
    let mut placements = 0usize;
    let start = Instant::now();
    for _ in 0..REPS {
        placements += assign_with_adopted_rows(
            &scenario.app,
            &scenario.network,
            &caps,
            &rows,
            TraceHandle::new(&recorder),
        );
    }
    let wall = start.elapsed().as_secs_f64();
    BenchResult {
        experiment: "scale_assign".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: hit_rate(&recorder.snapshot()),
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: if wall > 0.0 {
            placements as f64 / wall
        } else {
            0.0
        },
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// Compact `exp_churn` network: four edge hosts, a fast flaky hub and a
/// slower reliable one.
fn churn_network(flaky: f64) -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            flaky,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            flaky / 4.0,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

fn churn_app(index: u64) -> Application {
    let graph = if index.is_multiple_of(2) {
        linear_task_graph(&[60.0], &[1200.0, 600.0])
    } else {
        linear_task_graph(&[40.0, 40.0], &[1000.0, 800.0, 400.0])
    }
    .expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

/// Online-runtime cut: one Poisson arrival timeline through the churn
/// control plane under the FIFO reconcile policy.
fn run_churn_runtime() -> BenchResult {
    let config = RuntimeConfig {
        horizon: 150.0,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy: ReconcilePolicy::Fifo,
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 1.2 }.events(config.horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(0.05), arrivals, churn_app, config);

    let recorder = CollectRecorder::new();
    let start = Instant::now();
    rt.run_traced(TraceHandle::new(&recorder));
    let wall = start.elapsed().as_secs_f64();

    let events = rt.events_processed() as f64;
    BenchResult {
        experiment: "churn_runtime".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: hit_rate(&recorder.snapshot()),
        events_per_sec: if wall > 0.0 { events / wall } else { 0.0 },
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// One rep of the churn-runtime workload, with or without the
/// observability plane, returning its wall seconds. The horizon is
/// stretched to 600 sim-s (≈0.5 s of wall per rep) so the rep rises
/// well above timer noise — at the 150 s cut a single scheduler
/// hiccup moves the ratio by several percent.
fn churn_monitor_rep(monitor: bool) -> f64 {
    let config = RuntimeConfig {
        horizon: 600.0,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy: ReconcilePolicy::Fifo,
        monitor: monitor.then(|| sparcle_runtime::MonitorConfig {
            period: 5.0,
            slots: 6,
            ..sparcle_runtime::MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 1.2 }.events(config.horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(0.05), arrivals, churn_app, config);
    let start = Instant::now();
    rt.run_traced(TraceHandle::none());
    start.elapsed().as_secs_f64()
}

/// Observability-plane overhead cut: the churn-runtime workload with
/// the monitor on vs off. Same statistic as the span-overhead test:
/// after a warm-up pair, run interleaved off/on pairs and gate the
/// *minimum* per-pair ratio — true monitor overhead is present in
/// every pair, while scheduler noise only inflates some of them, so
/// min(ratio) estimates the overhead floor rather than the machine's
/// worst moment. The metric rides a fixed 5 % band: the monitor's
/// overhead budget, not a drift tolerance.
fn run_churn_monitor() -> BenchResult {
    const REPS: usize = 5;
    let start = Instant::now();
    churn_monitor_rep(false);
    churn_monitor_rep(true);
    let mut best_ratio = f64::INFINITY;
    for _ in 0..REPS {
        let off = churn_monitor_rep(false);
        let on = churn_monitor_rep(true);
        if off > 0.0 {
            best_ratio = best_ratio.min(on / off);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    BenchResult {
        experiment: "churn_monitor".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: 0.0,
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: 0.0,
        monitor_overhead_ratio: if best_ratio.is_finite() {
            best_ratio
        } else {
            0.0
        },
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// One rep of the churn-runtime workload traced into a throwaway
/// [`CollectRecorder`], with the provenance plane (lifecycle events,
/// cause-id bookkeeping, line stamping) on or off, returning its wall
/// seconds. Same stretched 600 sim-s horizon as [`churn_monitor_rep`]
/// for the same noise-floor reason.
fn churn_provenance_rep(provenance: bool) -> f64 {
    let config = RuntimeConfig {
        horizon: 600.0,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy: ReconcilePolicy::Fifo,
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 1.2 }.events(config.horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(0.05), arrivals, churn_app, config);
    let recorder = CollectRecorder::new();
    let trace = if provenance {
        TraceHandle::new(&recorder)
    } else {
        TraceHandle::new(&recorder).without_provenance()
    };
    let start = Instant::now();
    rt.run_traced(trace);
    start.elapsed().as_secs_f64()
}

/// Decision-provenance overhead cut: the traced churn-runtime workload
/// with provenance on vs off — both reps record the same base
/// telemetry, so the ratio isolates exactly what the provenance plane
/// adds (lifecycle events, cause-id tracking, id stamping). Same
/// min-of-interleaved-pairs statistic as [`run_churn_monitor`], and the
/// same fixed 5 % band: the provenance plane's overhead budget
/// (DESIGN.md §14), not a drift tolerance.
fn run_churn_provenance() -> BenchResult {
    const REPS: usize = 5;
    let start = Instant::now();
    churn_provenance_rep(false);
    churn_provenance_rep(true);
    let mut best_ratio = f64::INFINITY;
    for _ in 0..REPS {
        let off = churn_provenance_rep(false);
        let on = churn_provenance_rep(true);
        if off > 0.0 {
            best_ratio = best_ratio.min(on / off);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    BenchResult {
        experiment: "churn_provenance".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: 0.0,
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: if best_ratio.is_finite() {
            best_ratio
        } else {
            0.0
        },
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// One rep of the defrag workload — the `exp_defrag` churn timeline at
/// the stormier 0.08 flake rate — returning the ledger's BE
/// delivered-work integral and the rep's wall seconds.
fn churn_defrag_rep(defrag: bool) -> (f64, f64) {
    let config = RuntimeConfig {
        horizon: 300.0,
        failure_seed: 0xc0de,
        hold_seed: 0x601d,
        mean_hold: 25.0,
        policy: ReconcilePolicy::Fifo,
        defrag: defrag.then(sparcle_runtime::DefragConfig::default),
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 1.2 }.events(config.horizon, 0xa11);
    let mut rt = SparcleRuntime::new(churn_network(0.08), arrivals, churn_app, config);
    let start = Instant::now();
    let delivered = rt.run_traced(TraceHandle::none()).be_rate_integral();
    (delivered, start.elapsed().as_secs_f64())
}

/// Defrag-plane cut: the churn workload with the background
/// re-optimizer on vs off at the default migration budget.
/// `delivered_rate_uplift` is the sim-time on/off delivered-work ratio
/// — deterministic, so the gate pins the re-optimizer's value itself;
/// `defrag_overhead_ratio` is the min-of-interleaved-pairs wall ratio
/// (same statistic as [`run_churn_monitor`]) and catches the probe
/// pass regressing into rebuild-everything behaviour.
fn run_churn_defrag() -> BenchResult {
    const REPS: usize = 3;
    let start = Instant::now();
    let (off_delivered, _) = churn_defrag_rep(false);
    let (on_delivered, _) = churn_defrag_rep(true);
    let mut best_ratio = f64::INFINITY;
    for _ in 0..REPS {
        let (_, off_wall) = churn_defrag_rep(false);
        let (_, on_wall) = churn_defrag_rep(true);
        if off_wall > 0.0 {
            best_ratio = best_ratio.min(on_wall / off_wall);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    BenchResult {
        experiment: "churn_defrag".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: 0.0,
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: 0.0,
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: if off_delivered > 0.0 {
            on_delivered / off_delivered
        } else {
            0.0
        },
        defrag_overhead_ratio: if best_ratio.is_finite() {
            best_ratio
        } else {
            0.0
        },
    }
}

/// Incremental-state solver cut: the `exp_churn` determinism timeline
/// (high-rate Poisson arrivals, flaky links, fast capacity
/// fluctuation) with the per-event solve cost and the warm-start
/// schedule's Newton-step budget pulled from the system's state
/// counters. `warm_inner_iters_per_solve` is deterministic, so the
/// gate pins the warm-start schedule itself; `be_solve_ms_per_event`
/// rides the wall-clock band and catches solver slowdowns.
fn run_churn_solver() -> BenchResult {
    let config = RuntimeConfig {
        horizon: 600.0,
        failure_seed: 0xfa17,
        hold_seed: 0x401d,
        mean_hold: 20.0,
        policy: ReconcilePolicy::GammaImpact,
        fluctuation: Some(sparcle_runtime::FluctuationConfig {
            model: sparcle_sim::FluctuationModel {
                floor: 0.6,
                step: 0.05,
                seed: 9,
            },
            period: 0.4,
        }),
        ..RuntimeConfig::default()
    };
    let arrivals = ArrivalTrace::Poisson { rate: 10.0 }.events(config.horizon, 0xbeef);
    let mut rt = SparcleRuntime::new(churn_network(0.08), arrivals, churn_app, config);

    let recorder = CollectRecorder::new();
    let start = Instant::now();
    rt.run_traced(TraceHandle::new(&recorder));
    let wall = start.elapsed().as_secs_f64();

    let events = rt.events_processed() as f64;
    let stats = rt.system().state_stats();
    BenchResult {
        experiment: "churn_solver".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: hit_rate(&recorder.snapshot()),
        events_per_sec: if wall > 0.0 { events / wall } else { 0.0 },
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: if events > 0.0 {
            stats.solve_nanos as f64 / 1e6 / events
        } else {
            0.0
        },
        warm_inner_iters_per_solve: if stats.warm_solves > 0 {
            stats.inner_iters_warm as f64 / stats.warm_solves as f64
        } else {
            0.0
        },
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: 0.0,
        p99_decision_ms: 0.0,
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

/// Admission-service cut: a pinned flash-crowd request stream (with
/// every 8th request a snapshot probe) through the micro-batched
/// service plane over the churn network. `admissions_per_sec` rides
/// the wall-clock band; `p99_decision_ms` is measured in *sim* time —
/// deterministic, so the gate pins the batching/backpressure policy
/// itself (a window-size or shedding change moves it immediately).
fn run_service_admission() -> BenchResult {
    let config = sparcle_service::ServiceConfig {
        batch_window: 0.5,
        max_batch: 64,
        queue_capacity: 128,
        max_defer_windows: 4,
        ..sparcle_service::ServiceConfig::default()
    };
    let requests = sparcle_workloads::RequestStream::new(
        ArrivalTrace::FlashCrowd {
            rate: 2.0,
            burst_rate: 40.0,
            burst_start: 60.0,
            burst_end: 120.0,
        },
        180.0,
        0x5eed,
    )
    .with_probe_every(8);
    let mut service =
        sparcle_service::AdmissionService::new(churn_network(0.05), config, churn_app);

    let start = Instant::now();
    service.run(requests);
    let wall = start.elapsed().as_secs_f64();

    let stats = *service.stats();
    let system_stats = service.system().state_stats();
    let lookups = (system_stats.gamma_cache_hits + system_stats.gamma_cache_misses) as f64;
    BenchResult {
        experiment: "service_admission".to_owned(),
        wall_time_s: wall,
        gamma_cache_hit_rate: if lookups > 0.0 {
            system_stats.gamma_cache_hits as f64 / lookups
        } else {
            0.0
        },
        events_per_sec: 0.0,
        peak_queue_depth: 0.0,
        be_solve_ms_per_event: 0.0,
        warm_inner_iters_per_solve: if system_stats.warm_solves > 0 {
            system_stats.inner_iters_warm as f64 / system_stats.warm_solves as f64
        } else {
            0.0
        },
        placements_per_sec: 0.0,
        monitor_overhead_ratio: 0.0,
        admissions_per_sec: if wall > 0.0 {
            stats.decisions as f64 / wall
        } else {
            0.0
        },
        p99_decision_ms: 1000.0 * service.decision_wait_quantile(0.99),
        provenance_overhead_ratio: 0.0,
        delivered_rate_uplift: 0.0,
        defrag_overhead_ratio: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(wall: f64, hit: f64, eps: f64, depth: f64) -> BenchResult {
        BenchResult {
            experiment: "t".to_owned(),
            wall_time_s: wall,
            gamma_cache_hit_rate: hit,
            events_per_sec: eps,
            peak_queue_depth: depth,
            be_solve_ms_per_event: 0.0,
            warm_inner_iters_per_solve: 0.0,
            placements_per_sec: 0.0,
            monitor_overhead_ratio: 0.0,
            admissions_per_sec: 0.0,
            p99_decision_ms: 0.0,
            provenance_overhead_ratio: 0.0,
            delivered_rate_uplift: 0.0,
            defrag_overhead_ratio: 0.0,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = result(1.25, 0.875, 10_000.0, 42.0);
        let parsed = BenchResult::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
        // And through the serialized text, as the compare gate reads it.
        let text = r.to_json().render();
        let reparsed =
            BenchResult::from_json(&sparcle_telemetry::parse_json(&text).unwrap()).unwrap();
        assert_eq!(reparsed, r);
    }

    #[test]
    fn compare_flags_a_2x_slowdown() {
        let baseline = result(1.0, 0.9, 10_000.0, 40.0);
        let slow = result(2.0, 0.9, 10_000.0, 40.0);
        let regressions = compare(&slow, &baseline, DEFAULT_WALL_TOLERANCE);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "wall_time_s");
        assert!(regressions[0].to_string().contains("wall_time_s"));
    }

    #[test]
    fn compare_is_direction_aware() {
        let baseline = result(1.0, 0.9, 10_000.0, 40.0);
        // Faster, hotter cache, more throughput, shallower queue: all
        // improvements, none flagged.
        let better = result(0.4, 0.95, 20_000.0, 30.0);
        assert!(compare(&better, &baseline, DEFAULT_WALL_TOLERANCE).is_empty());
        // Cache hit rate is deterministic: a 10 % drop trips the tight
        // band even though the wall tolerance would allow it.
        let colder = result(1.0, 0.8, 10_000.0, 40.0);
        let regressions = compare(&colder, &baseline, DEFAULT_WALL_TOLERANCE);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "gamma_cache_hit_rate");
    }

    #[test]
    fn compare_skips_zero_baselines() {
        let baseline = result(1.0, 0.0, 0.0, 0.0);
        let current = result(1.0, 0.5, 123.0, 99.0);
        assert!(compare(&current, &baseline, DEFAULT_WALL_TOLERANCE).is_empty());
    }

    #[test]
    fn compare_tolerance_bounds_the_gate() {
        let baseline = result(1.0, 0.9, 10_000.0, 40.0);
        let slightly_slow = result(1.4, 0.9, 10_000.0, 40.0);
        assert!(compare(&slightly_slow, &baseline, 0.5).is_empty());
        assert_eq!(compare(&slightly_slow, &baseline, 0.2).len(), 1);
    }

    #[test]
    fn monitor_overhead_rides_the_fixed_band() {
        let mut baseline = result(1.0, 0.9, 10_000.0, 40.0);
        baseline.monitor_overhead_ratio = 1.0;
        // 4 % overhead sits inside the fixed 5 % budget even when the
        // wall tolerance is tightened to nothing...
        let mut ok = baseline.clone();
        ok.monitor_overhead_ratio = 1.04;
        assert!(compare(&ok, &baseline, 0.0).is_empty());
        // ...and 8 % busts it even under the loosest wall tolerance.
        let mut busted = baseline.clone();
        busted.monitor_overhead_ratio = 1.08;
        let regressions = compare(&busted, &baseline, 10.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "monitor_overhead_ratio");
        assert_eq!(regressions[0].tolerance, 0.05);
    }

    #[test]
    fn provenance_overhead_rides_the_fixed_band() {
        let mut baseline = result(1.0, 0.9, 10_000.0, 40.0);
        baseline.provenance_overhead_ratio = 1.0;
        // Same shape as the monitor gate: a fixed 5 % budget, decoupled
        // from the wall-clock tolerance in both directions.
        let mut ok = baseline.clone();
        ok.provenance_overhead_ratio = 1.04;
        assert!(compare(&ok, &baseline, 0.0).is_empty());
        let mut busted = baseline.clone();
        busted.provenance_overhead_ratio = 1.08;
        let regressions = compare(&busted, &baseline, 10.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "provenance_overhead_ratio");
        assert_eq!(regressions[0].tolerance, 0.05);
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = BASELINE_EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BASELINE_EXPERIMENTS.len());
        assert!(run_experiment("no-such-experiment").is_none());
    }
}
