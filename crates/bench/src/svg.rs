//! Dependency-free SVG chart rendering for the experiment binaries.
//!
//! The paper presents its results as line charts, CDFs, and grouped bar
//! charts. [`LineChart`] and [`BarChart`] render the same shapes as
//! standalone SVG files next to the CSVs, so `target/experiments/`
//! contains viewable figures, not just tables.
//!
//! The renderer is deliberately small: fixed canvas, linear scales,
//! automatic "nice" ticks, a categorical palette, and text labels —
//! enough for evaluation figures, not a plotting library.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Canvas and margin geometry shared by both chart kinds.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 60.0;

/// Categorical palette (colorblind-friendly).
const PALETTE: [&str; 8] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#f0e442", "#56b4e9", "#e69f00", "#000000",
];

fn plot_width() -> f64 {
    WIDTH - MARGIN_LEFT - MARGIN_RIGHT
}

fn plot_height() -> f64 {
    HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
}

/// Rounds the range `[0, hi]` up to a "nice" tick step.
fn nice_ticks(hi: f64, target: usize) -> Vec<f64> {
    if !(hi.is_finite()) || hi <= 0.0 {
        return vec![0.0, 1.0];
    }
    let raw_step = hi / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let mut ticks = Vec::new();
    let mut t = 0.0;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    if *ticks.last().expect("at least the origin") < hi {
        ticks.push(t);
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round())
    } else {
        format!("{v:.2}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn svg_header(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(
        s,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = writeln!(
        s,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_LEFT + plot_width() / 2.0,
        escape(title)
    );
    s
}

fn axes_and_y_ticks(s: &mut String, y_ticks: &[f64], y_max: f64, x_label: &str, y_label: &str) {
    let x0 = MARGIN_LEFT;
    let y0 = MARGIN_TOP + plot_height();
    // Axis lines.
    let _ = writeln!(
        s,
        r#"<line x1="{x0}" y1="{MARGIN_TOP}" x2="{x0}" y2="{y0}" stroke="black"/>"#
    );
    let _ = writeln!(
        s,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        x0 + plot_width()
    );
    for &t in y_ticks {
        let y = y0 - t / y_max * plot_height();
        let _ = writeln!(
            s,
            r##"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            x0,
            x0 + plot_width()
        );
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            x0 - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        x0 + plot_width() / 2.0,
        HEIGHT - 14.0,
        escape(x_label)
    );
    let _ = writeln!(
        s,
        r#"<text x="18" y="{}" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
        MARGIN_TOP + plot_height() / 2.0,
        MARGIN_TOP + plot_height() / 2.0,
        escape(y_label)
    );
}

fn legend(s: &mut String, names: &[String]) {
    let lx = MARGIN_LEFT + plot_width() + 14.0;
    for (i, name) in names.iter().enumerate() {
        let y = MARGIN_TOP + 12.0 + i as f64 * 18.0;
        let color = PALETTE[i % PALETTE.len()];
        let _ = writeln!(
            s,
            r#"<rect x="{lx}" y="{}" width="12" height="12" fill="{color}"/>"#,
            y - 10.0
        );
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{y}">{}</text>"#,
            lx + 16.0,
            escape(name)
        );
    }
}

/// A multi-series line chart (linear x and y, y starting at zero).
///
/// # Examples
///
/// ```
/// # use sparcle_bench::svg::LineChart;
/// let mut chart = LineChart::new("rates", "field BW (Mbps)", "rate");
/// chart.series("SPARCLE", vec![(0.5, 0.30), (10.0, 0.40), (22.0, 0.54)]);
/// chart.series("Cloud", vec![(0.5, 0.02), (10.0, 0.40), (22.0, 0.46)]);
/// let svg = chart.render();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("SPARCLE"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points (sorted by x recommended).
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        let (mut x_min, mut x_max, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() {
            x_min = 0.0;
            x_max = 1.0;
        }
        if x_max <= x_min {
            x_max = x_min + 1.0;
        }
        let y_ticks = nice_ticks(y_max, 5);
        let y_top = *y_ticks.last().expect("ticks are never empty");

        let mut s = svg_header(&self.title);
        axes_and_y_ticks(&mut s, &y_ticks, y_top, &self.x_label, &self.y_label);

        // X ticks at each distinct x across series (capped at 10).
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let stride = xs.len().div_ceil(10).max(1);
        let sx = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_width();
        let sy = |y: f64| MARGIN_TOP + plot_height() - y / y_top * plot_height();
        for x in xs.iter().step_by(stride) {
            let px = sx(*x);
            let y0 = MARGIN_TOP + plot_height();
            let _ = writeln!(
                s,
                r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/>"#,
                y0 + 4.0
            );
            let _ = writeln!(
                s,
                r#"<text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
                y0 + 18.0,
                fmt_tick(*x)
            );
        }

        for (i, (_, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = pts
                .iter()
                .enumerate()
                .map(|(k, &(x, y))| {
                    format!(
                        "{}{:.2},{:.2}",
                        if k == 0 { "M" } else { "L" },
                        sx(x),
                        sy(y)
                    )
                })
                .collect();
            let _ = writeln!(
                s,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
            for &(x, y) in pts {
                let _ = writeln!(
                    s,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
        }
        legend(
            &mut s,
            &self
                .series
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
        );
        s.push_str("</svg>\n");
        s
    }

    /// Writes the SVG to `target/experiments/<name>.svg`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure.
    pub fn write_svg(&self, name: &str) -> PathBuf {
        write_svg_file(name, &self.render())
    }
}

/// A grouped bar chart: one group per category, one bar per series.
///
/// # Examples
///
/// ```
/// # use sparcle_bench::svg::BarChart;
/// let mut chart = BarChart::new("efficiency", "case", "units/J");
/// chart.category("balanced");
/// chart.category("link-bottleneck");
/// chart.series("SPARCLE", vec![0.2, 0.25]);
/// chart.series("VNE", vec![0.12, 0.03]);
/// let svg = chart.render();
/// assert!(svg.contains("balanced"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    x_label: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        BarChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Appends a category (x-axis group).
    pub fn category(&mut self, name: impl Into<String>) -> &mut Self {
        self.categories.push(name.into());
        self
    }

    /// Adds a named series with one value per category.
    ///
    /// # Panics
    ///
    /// Panics (at render time) if lengths mismatch.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), values));
        self
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        for (name, values) in &self.series {
            assert_eq!(
                values.len(),
                self.categories.len(),
                "series `{name}` must have one value per category"
            );
        }
        let y_max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max);
        let y_ticks = nice_ticks(y_max, 5);
        let y_top = *y_ticks.last().expect("ticks are never empty");

        let mut s = svg_header(&self.title);
        axes_and_y_ticks(&mut s, &y_ticks, y_top, &self.x_label, &self.y_label);

        let groups = self.categories.len().max(1) as f64;
        let group_w = plot_width() / groups;
        let bar_w = (group_w * 0.8) / self.series.len().max(1) as f64;
        let y0 = MARGIN_TOP + plot_height();
        for (g, cat) in self.categories.iter().enumerate() {
            let gx = MARGIN_LEFT + g as f64 * group_w + group_w * 0.1;
            for (i, (_, values)) in self.series.iter().enumerate() {
                let v = values[g].max(0.0);
                let h = v / y_top * plot_height();
                let color = PALETTE[i % PALETTE.len()];
                let _ = writeln!(
                    s,
                    r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{color}"/>"#,
                    gx + i as f64 * bar_w,
                    y0 - h,
                    bar_w * 0.92,
                    h
                );
            }
            let _ = writeln!(
                s,
                r#"<text x="{:.2}" y="{}" text-anchor="middle">{}</text>"#,
                gx + group_w * 0.4,
                y0 + 18.0,
                escape(cat)
            );
        }
        legend(
            &mut s,
            &self
                .series
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
        );
        s.push_str("</svg>\n");
        s
    }

    /// Writes the SVG to `target/experiments/<name>.svg`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure.
    pub fn write_svg(&self, name: &str) -> PathBuf {
        write_svg_file(name, &self.render())
    }
}

fn write_svg_file(name: &str, content: &str) -> PathBuf {
    let dir = crate::experiments_dir();
    fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, content).expect("write svg");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_structure() {
        let mut c = LineChart::new("t", "x", "y");
        c.series("a", vec![(0.0, 0.0), (1.0, 2.0)]);
        c.series("b", vec![(0.0, 1.0), (1.0, 1.5)]);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains(">a<") && svg.contains(">b<"));
    }

    #[test]
    fn bar_chart_structure() {
        let mut c = BarChart::new("t", "x", "y");
        c.category("c1").category("c2");
        c.series("s1", vec![1.0, 2.0]);
        c.series("s2", vec![0.5, 0.0]);
        let svg = c.render();
        // 4 bars + 2 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains("c1") && svg.contains("c2"));
    }

    #[test]
    #[should_panic(expected = "one value per category")]
    fn bar_chart_checks_arity() {
        let mut c = BarChart::new("t", "x", "y");
        c.category("only");
        c.series("bad", vec![1.0, 2.0]);
        c.render();
    }

    #[test]
    fn nice_ticks_are_monotone_and_cover() {
        for hi in [0.003, 0.7, 1.0, 9.3, 57.0, 120.0, 9800.0] {
            let ticks = nice_ticks(hi, 5);
            assert!(ticks.len() >= 2, "hi={hi}");
            assert_eq!(ticks[0], 0.0);
            assert!(*ticks.last().unwrap() >= hi, "hi={hi} ticks={ticks:?}");
            for w in ticks.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.render();
        assert!(svg.contains("</svg>"));
        let ticks = nice_ticks(0.0, 5);
        assert_eq!(ticks, vec![0.0, 1.0]);
        let ticks = nice_ticks(f64::NAN, 5);
        assert_eq!(ticks, vec![0.0, 1.0]);
    }

    #[test]
    fn labels_are_escaped() {
        let mut c = LineChart::new("a<b", "x&y", "z");
        c.series("s<>", vec![(0.0, 1.0)]);
        let svg = c.render();
        assert!(svg.contains("a&lt;b"));
        assert!(svg.contains("x&amp;y"));
        assert!(!svg.contains("s<>"));
    }
}
