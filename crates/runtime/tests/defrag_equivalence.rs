//! The defrag plane's differential contract (DESIGN.md §15):
//!
//! * **defrag off is free**: a run with `defrag: None` — and even one
//!   with a defragmenter that never ticks — produces the byte-identical
//!   telemetry log and ledger a pre-defrag build produced, across 1, 2,
//!   and 8 γ-evaluator threads;
//! * **probes are invisible**: a defrag pass that commits nothing (the
//!   gain threshold set unreachably high) leaves the system state and
//!   the SLO ledger bit-equal to the defrag-off run — rollback-only
//!   what-if migrations may not perturb anything they touched;
//! * **committed moves are deterministic**: the defrag-on log is itself
//!   byte-identical across thread counts, and every `runtime_migrate`
//!   line passes the trace schema;
//! * a **property test** drives random churny systems through
//!   `SystemTxn::migrate` + rollback and asserts the state snapshot
//!   never moves — the transactional core's bitwise-rollback guarantee
//!   extended to the migration primitive.

use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{DefragConfig, ReconcilePolicy, RuntimeConfig, SparcleRuntime};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

/// The determinism suite's two-route fixture: a flaky hub route and a
/// reliable alternative, so displacements strand apps off their best
/// path — the fragmentation defrag exists to repair.
fn two_route_network() -> Network {
    let mut b = NetworkBuilder::new();
    let src = b.add_ncp("src-host", ResourceVec::cpu(10.0));
    let hub = b.add_ncp("hub", ResourceVec::cpu(1000.0));
    let sink = b.add_ncp("sink-host", ResourceVec::cpu(10.0));
    let alt = b.add_ncp("alt", ResourceVec::cpu(800.0));
    b.add_link_full("l0", src, hub, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link_full("l1", hub, sink, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link("l2", src, alt, 1e4).unwrap();
    b.add_link("l3", alt, sink, 1e4).unwrap();
    b.build().unwrap()
}

fn app_source(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1000.0, 500.0]).unwrap();
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(2.0, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    Application::new(graph, qoe, [(src, NcpId::new(0)), (sink, NcpId::new(2))]).unwrap()
}

fn config(threads: usize, defrag: Option<DefragConfig>) -> RuntimeConfig {
    let mut config = RuntimeConfig {
        horizon: 60.0,
        failure_seed: 11,
        hold_seed: 7,
        mean_hold: 12.0,
        policy: ReconcilePolicy::GammaImpact,
        defrag,
        ..RuntimeConfig::default()
    };
    config.system.assigner_threads = threads;
    config
}

fn run(threads: usize, defrag: Option<DefragConfig>) -> SparcleRuntime<fn(u64) -> Application> {
    let cfg = config(threads, defrag);
    let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(cfg.horizon, 42);
    let mut rt = SparcleRuntime::new(
        two_route_network(),
        arrivals,
        app_source as fn(u64) -> Application,
        cfg,
    );
    rt.run();
    rt
}

/// End-of-run fingerprint of everything the defrag plane could have
/// perturbed: the full ledger, the live index set, and the logical
/// state snapshot (rates, reservations, residuals, placements).
///
/// The snapshot — not the raw state — because [`StateStats`] carries
/// wall-clock solve timings and monotone work counters (probe passes
/// legitimately bump `solves`/`txn_rollbacks`), neither of which is
/// part of the determinism contract.
fn fingerprint(rt: &SparcleRuntime<fn(u64) -> Application>) -> String {
    format!(
        "{:?}\n{:?}\n{:?}",
        rt.ledger(),
        rt.live_indices(),
        rt.system().snapshot(),
    )
}

#[test]
fn defrag_off_ledger_is_identical_across_threads() {
    let base = fingerprint(&run(1, None));
    assert_eq!(base, fingerprint(&run(2, None)), "2 threads diverged");
    assert_eq!(base, fingerprint(&run(8, None)), "8 threads diverged");
}

#[test]
fn probe_only_passes_are_invisible() {
    // An unreachable gain bar: every probe rolls back, nothing commits.
    let probe_only = DefragConfig {
        min_gain: f64::INFINITY,
        ..DefragConfig::default()
    };
    let off = run(1, None);
    let probed = run(1, Some(probe_only));
    let d = probed.defrag().expect("defrag was configured");
    assert!(d.passes() > 0, "the pass gate must have opened");
    assert!(d.probes() > 0, "probes must have run to prove invisibility");
    assert_eq!(d.moves(), 0, "nothing may commit past an infinite bar");
    assert_eq!(
        fingerprint(&off),
        fingerprint(&probed),
        "rollback-only probes perturbed the run"
    );
}

#[test]
fn committed_moves_are_identical_across_threads() {
    let on = |threads| run(threads, Some(DefragConfig::default()));
    let base = on(1);
    assert!(
        base.ledger().migrations() > 0,
        "the fixture must actually migrate for this test to bite"
    );
    let base_fp = fingerprint(&base);
    assert_eq!(base_fp, fingerprint(&on(2)), "2 threads diverged");
    assert_eq!(base_fp, fingerprint(&on(8)), "8 threads diverged");
}

#[cfg(feature = "telemetry")]
mod telemetry {
    use super::*;
    use sparcle_core::telemetry::schema::validate_line;
    use sparcle_core::telemetry::CollectRecorder;
    use sparcle_core::TraceHandle;

    fn rendered_log(threads: usize, defrag: Option<DefragConfig>) -> String {
        let cfg = config(threads, defrag);
        let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(cfg.horizon, 42);
        let mut rt = SparcleRuntime::new(two_route_network(), arrivals, app_source, cfg);
        let recorder = CollectRecorder::new();
        rt.run_traced(TraceHandle::new(&recorder));
        recorder.render_trace()
    }

    #[test]
    fn defrag_off_log_is_bitwise_clean_across_threads() {
        let base = rendered_log(1, None);
        assert!(
            !base.contains("runtime_migrate") && !base.contains("defrag"),
            "defrag-off must leave zero trace of the plane"
        );
        assert_eq!(base, rendered_log(1, None), "repeat run diverged");
        assert_eq!(base, rendered_log(2, None), "2 threads changed the log");
        assert_eq!(base, rendered_log(8, None), "8 threads changed the log");
    }

    #[test]
    fn never_ticking_defrag_is_bitwise_invisible() {
        // Period beyond the horizon: the defragmenter exists but its
        // tick is never scheduled — the log must match defrag-off
        // byte for byte.
        let dormant = DefragConfig {
            period: 1e6,
            ..DefragConfig::default()
        };
        assert_eq!(rendered_log(1, None), rendered_log(1, Some(dormant)));
    }

    #[test]
    fn defrag_on_log_is_bitwise_identical_and_schema_valid() {
        let on = |threads| rendered_log(threads, Some(DefragConfig::default()));
        let base = on(1);
        let migrated: Vec<&str> = base
            .lines()
            .filter(|l| l.contains("\"type\":\"runtime_migrate\""))
            .collect();
        assert!(!migrated.is_empty(), "the fixture must migrate");
        for line in &migrated {
            assert_eq!(
                validate_line(line).expect("schema-valid migrate event"),
                "runtime_migrate"
            );
            assert!(
                line.contains("\"cause\":\"defrag_net_gain\""),
                "migrations carry their cause: {line}"
            );
        }
        assert_eq!(base, on(2), "2 threads changed the log");
        assert_eq!(base, on(8), "8 threads changed the log");
    }
}

mod rollback_invisibility {
    use proptest::prelude::*;
    use sparcle_core::SparcleSystem;
    use sparcle_model::{Application, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec};
    use sparcle_workloads::graphs::linear_task_graph;

    /// A hub-and-alt network with proptest-chosen capacities, so
    /// migration probes see genuinely different γ landscapes per case.
    fn network(hub_cpu: f64, alt_cpu: f64, bw: f64) -> Network {
        let mut b = NetworkBuilder::new();
        let src = b.add_ncp("src", ResourceVec::cpu(10.0));
        let hub = b.add_ncp("hub", ResourceVec::cpu(hub_cpu));
        let sink = b.add_ncp("sink", ResourceVec::cpu(10.0));
        let alt = b.add_ncp("alt", ResourceVec::cpu(alt_cpu));
        b.add_link("l0", src, hub, bw).unwrap();
        b.add_link("l1", hub, sink, bw).unwrap();
        b.add_link("l2", src, alt, bw * 0.8).unwrap();
        b.add_link("l3", alt, sink, bw * 0.8).unwrap();
        b.build().unwrap()
    }

    fn app(index: u64, work: f64) -> Application {
        let graph = linear_task_graph(&[50.0], &[work, work * 0.5]).unwrap();
        let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
        let qoe = if index.is_multiple_of(3) {
            QoeClass::guaranteed_rate(1.0, 0.5)
        } else {
            QoeClass::best_effort(1.0 + (index % 4) as f64)
        };
        Application::new(graph, qoe, [(src, NcpId::new(0)), (sink, NcpId::new(2))]).unwrap()
    }

    proptest! {
        /// A migration transaction that rolls back is invisible: the
        /// state snapshot (rates, reservations, residual, placements)
        /// is bit-equal to before the probe — for every placed app,
        /// whether the what-if move was admitted or not. Work counters
        /// (`solves`, `txn_rollbacks`) advance, by design; they are
        /// stats, not state.
        #[test]
        fn rolled_back_migrations_leave_no_trace(
            hub_cpu in 200.0f64..2000.0,
            alt_cpu in 200.0f64..2000.0,
            bw in 100.0f64..5000.0,
            work in 100.0f64..900.0,
            n_apps in 1usize..6,
        ) {
            let mut sys = SparcleSystem::new(network(hub_cpu, alt_cpu, bw));
            for i in 0..n_apps {
                let _ = sys.submit(app(i as u64, work));
            }
            let ids: Vec<_> = sys
                .be_apps()
                .iter()
                .map(|a| a.id)
                .chain(sys.gr_apps().iter().map(|a| a.id))
                .collect();
            let before_snapshot = sys.snapshot();
            for id in ids {
                let mut txn = sys.begin();
                let outcome = txn.migrate(id);
                prop_assert!(outcome.is_some(), "placed apps are probeable");
                txn.rollback();
                prop_assert_eq!(&sys.snapshot(), &before_snapshot);
            }
        }
    }
}
