//! The runtime determinism contract: the same seeds produce a
//! byte-identical `runtime_*` telemetry event log — across repeated
//! runs and across γ-evaluator thread counts — and every emitted event
//! passes the trace schema validator.

#![cfg(feature = "telemetry")]

use sparcle_core::telemetry::schema::validate_line;
use sparcle_core::telemetry::CollectRecorder;
use sparcle_core::TraceHandle;
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{
    AlertRules, FluctuationConfig, MonitorConfig, ReconcilePolicy, RuntimeConfig, SparcleRuntime,
};
use sparcle_sim::FluctuationModel;
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

fn two_route_network() -> Network {
    let mut b = NetworkBuilder::new();
    let src = b.add_ncp("src-host", ResourceVec::cpu(10.0));
    let hub = b.add_ncp("hub", ResourceVec::cpu(1000.0));
    let sink = b.add_ncp("sink-host", ResourceVec::cpu(10.0));
    let alt = b.add_ncp("alt", ResourceVec::cpu(800.0));
    b.add_link_full("l0", src, hub, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link_full("l1", hub, sink, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link("l2", src, alt, 1e4).unwrap();
    b.add_link("l3", alt, sink, 1e4).unwrap();
    b.build().unwrap()
}

fn app_source(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1000.0, 500.0]).unwrap();
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(2.0, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    Application::new(graph, qoe, [(src, NcpId::new(0)), (sink, NcpId::new(2))]).unwrap()
}

/// Runs a busy churn timeline and serializes every telemetry event,
/// one JSON line per event.
fn rendered_log(threads: usize) -> String {
    rendered_log_with(threads, None)
}

/// Same timeline with the observability monitor enabled; only the
/// `monitor_*` lines are kept.
fn monitor_log(threads: usize) -> String {
    let monitor = MonitorConfig {
        period: 5.0,
        slots: 4,
        // A tight SLO budget so the flaky-link violations push the burn
        // rate over threshold — the alert path must be exercised too.
        rules: AlertRules {
            slo_violation_budget: 0.005,
            ..AlertRules::default()
        },
        metrics_out: None,
    };
    rendered_log_with(threads, Some(monitor))
        .lines()
        .filter(|l| l.contains("\"type\":\"monitor_"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn rendered_log_with(threads: usize, monitor: Option<MonitorConfig>) -> String {
    let mut config = RuntimeConfig {
        horizon: 60.0,
        failure_seed: 11,
        hold_seed: 7,
        mean_hold: 12.0,
        policy: ReconcilePolicy::GammaImpact,
        fluctuation: Some(FluctuationConfig {
            model: FluctuationModel {
                floor: 0.5,
                step: 0.1,
                seed: 5,
            },
            period: 4.0,
        }),
        ..RuntimeConfig::default()
    };
    config.system.assigner_threads = threads;
    config.monitor = monitor;
    let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(config.horizon, 42);
    let mut rt = SparcleRuntime::new(two_route_network(), arrivals, app_source, config);
    let recorder = CollectRecorder::new();
    rt.run_traced(TraceHandle::new(&recorder));
    recorder.render_trace()
}

#[test]
fn event_log_is_byte_identical_across_thread_counts() {
    let single = rendered_log(1);
    assert!(
        single.contains("runtime_arrival") && single.contains("runtime_element_state"),
        "the timeline should exercise arrivals and element churn"
    );
    assert_eq!(single, rendered_log(1), "repeat run diverged");
    assert_eq!(single, rendered_log(8), "thread count changed the log");
}

#[test]
fn monitor_stream_is_byte_identical_across_thread_counts() {
    let single = monitor_log(1);
    assert!(
        single.contains("\"type\":\"monitor_snapshot\""),
        "snapshots must be emitted:\n{single}"
    );
    assert!(
        single.contains("\"type\":\"monitor_alert\""),
        "the tight SLO budget must trip the burn-rate alert:\n{single}"
    );
    assert_eq!(single, monitor_log(1), "repeat run diverged");
    assert_eq!(single, monitor_log(2), "2 threads changed the stream");
    assert_eq!(single, monitor_log(8), "8 threads changed the stream");
}

#[test]
fn every_monitor_event_passes_the_schema() {
    let log = monitor_log(2);
    let mut kinds = std::collections::BTreeSet::new();
    for line in log.lines() {
        kinds.insert(validate_line(line).expect("schema-valid event"));
    }
    assert!(kinds.contains("monitor_snapshot"));
    assert!(kinds.contains("monitor_alert"));
}

#[test]
fn every_runtime_event_passes_the_schema() {
    let log = rendered_log(2);
    let mut kinds = std::collections::BTreeSet::new();
    for line in log.lines() {
        let kind = validate_line(line).expect("schema-valid event");
        kinds.insert(kind);
    }
    assert!(kinds.contains("runtime_arrival"));
    assert!(kinds.contains("runtime_departure"));
    assert!(kinds.contains("runtime_element_state"));
    assert!(kinds.contains("runtime_fluctuation"));
    assert!(kinds.contains("runtime_reconcile"));
}
