//! The online observability monitor: windowed health signals and
//! deterministic burn-rate alerting inside the DES timeline.
//!
//! A [`Monitor`] is driven by a periodic `MonitorTick` event on the
//! runtime's deterministic event queue. Each tick folds the run's
//! cumulative signals — the SLO ledger, the state core's
//! [`StateStats`](sparcle_core::StateStats) work counters, γ-cache
//! hits/misses, and instantaneous queue/backlog depths — into the
//! sim-time sliding windows of [`sparcle_telemetry::window`], then
//! evaluates a small rule set of degradation detectors over those
//! windows:
//!
//! * **`gr_burn_rate`** — the windowed GR violation-seconds divided by
//!   the window's SLO budget (`slo_violation_budget` violation-seconds
//!   per simulated second). A burn of 1.0 means the run is consuming
//!   exactly its error budget; above [`AlertRules::gr_burn_threshold`]
//!   the rule fires.
//! * **`cache_hit_collapse`** — the windowed γ-cache hit rate dropped
//!   below [`AlertRules::cache_hit_floor`] (evaluated only once the
//!   window holds [`AlertRules::min_cache_lookups`] lookups).
//! * **`solver_iteration_blowup`** — warm-start Newton iterations per
//!   BE solve exceeded [`AlertRules::warm_iters_ceiling`] (evaluated
//!   only once the window holds [`AlertRules::min_solves`] solves).
//! * **`backlog_growth`** — the displaced-application backlog grew on
//!   [`AlertRules::backlog_growth_ticks`] consecutive ticks.
//!
//! Alerts are **edge-triggered**: one `monitor_alert` event when a rule
//! starts firing, one when it clears. Every input is a deterministic
//! function of the timeline and every window is keyed on simulated
//! time, so the full `monitor_*` event stream is byte-identical across
//! evaluator thread counts — the same contract the `runtime_*` events
//! obey.
//!
//! The monitor itself is pure state-in/state-out (no I/O, no clock):
//! the runtime feeds it [`TickInput`]s and turns the returned
//! [`MonitorSample`]s into telemetry events and the optional
//! Prometheus-style text exposition ([`Monitor::render_prometheus`]).

use std::path::PathBuf;

use sparcle_telemetry::window::{RateEstimator, WindowedCounter, WindowedHistogram};

/// Labels of the four alert rules, in evaluation order.
pub const ALERT_RULES: [&str; 4] = [
    "gr_burn_rate",
    "cache_hit_collapse",
    "solver_iteration_blowup",
    "backlog_growth",
];

/// Thresholds of the degradation detectors (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertRules {
    /// SLO budget: tolerated GR violation-seconds per simulated second
    /// (0.05 = each second of the run may carry 0.05 violation-seconds
    /// across all GR applications).
    pub slo_violation_budget: f64,
    /// `gr_burn_rate` fires when windowed burn exceeds this multiple of
    /// the budget.
    pub gr_burn_threshold: f64,
    /// `cache_hit_collapse` fires when the windowed γ-cache hit rate
    /// drops below this floor…
    pub cache_hit_floor: f64,
    /// …provided the window saw at least this many lookups (quiet
    /// windows don't alert).
    pub min_cache_lookups: u64,
    /// `solver_iteration_blowup` fires when windowed warm Newton
    /// iterations per solve exceed this ceiling…
    pub warm_iters_ceiling: f64,
    /// …provided the window saw at least this many solves.
    pub min_solves: u64,
    /// `backlog_growth` fires after this many consecutive ticks of
    /// strictly growing displaced-application backlog.
    pub backlog_growth_ticks: u64,
}

impl Default for AlertRules {
    fn default() -> Self {
        AlertRules {
            slo_violation_budget: 0.05,
            gr_burn_threshold: 1.0,
            cache_hit_floor: 0.10,
            min_cache_lookups: 50,
            warm_iters_ceiling: 250.0,
            min_solves: 5,
            backlog_growth_ticks: 3,
        }
    }
}

/// Configuration of the runtime's observability monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Simulated seconds between monitor ticks (also the window slot
    /// width, so every tick lands in its own slot).
    pub period: f64,
    /// Ring slots per window; the window spans `period × slots`
    /// simulated seconds.
    pub slots: usize,
    /// Alert thresholds.
    pub rules: AlertRules,
    /// When set, the runtime rewrites this file with a Prometheus-style
    /// text exposition of the latest sample on every tick.
    pub metrics_out: Option<PathBuf>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            period: 5.0,
            slots: 6,
            rules: AlertRules::default(),
            metrics_out: None,
        }
    }
}

/// Cumulative (and instantaneous) signals the runtime hands the monitor
/// at each tick. Cumulative fields are run totals; the monitor
/// differences them against the previous tick internally.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickInput {
    /// Total GR violation-seconds accrued by the SLO ledger.
    pub gr_violation_seconds: f64,
    /// Total arrivals processed.
    pub arrivals: u64,
    /// Total arrivals admitted.
    pub admitted: u64,
    /// Total γ-cache row hits (`StateStats::gamma_cache_hits`).
    pub cache_hits: u64,
    /// Total γ-cache row misses (`StateStats::gamma_cache_misses`).
    pub cache_misses: u64,
    /// Total BE solves (`StateStats::solves`).
    pub solves: u64,
    /// Total warm-solve Newton iterations
    /// (`StateStats::inner_iters_warm`).
    pub warm_inner_iters: u64,
    /// Instantaneous aggregate BE allocated rate.
    pub be_rate: f64,
    /// Instantaneous DES future-event-list depth.
    pub queue_depth: u64,
    /// Instantaneous displaced-application backlog.
    pub backlog: u64,
    /// Instantaneous live (placed) application count.
    pub live: u64,
    /// Total planned migrations committed by the defragmenter
    /// ([`crate::SloLedger::migrations`]); 0 with defrag off.
    pub migrations: u64,
}

/// One alert rule crossing its threshold (either direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertTransition {
    /// Rule label (one of [`ALERT_RULES`]).
    pub rule: &'static str,
    /// `true` on the rising edge (rule started firing), `false` on the
    /// falling edge (rule cleared).
    pub firing: bool,
    /// The observed value at the transition.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

/// The monitor's output for one tick: every windowed aggregate plus the
/// alert transitions this tick produced.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSample {
    /// Simulated time of the tick.
    pub time: f64,
    /// Window span in simulated seconds.
    pub window: f64,
    /// GR violation-seconds burn rate vs. the SLO budget.
    pub gr_burn: f64,
    /// Windowed GR violation-seconds.
    pub gr_violation_s: f64,
    /// Instantaneous aggregate BE rate.
    pub be_rate: f64,
    /// Windowed arrivals per simulated second.
    pub arrival_rate: f64,
    /// Windowed admissions per simulated second.
    pub admit_rate: f64,
    /// Windowed γ-cache hit rate (1.0 when the window saw no lookups).
    pub cache_hit_rate: f64,
    /// γ-cache lookups in the window.
    pub cache_lookups: u64,
    /// Windowed warm Newton iterations per solve (0 without solves).
    pub warm_iters_per_solve: f64,
    /// BE solves in the window.
    pub solves: u64,
    /// Instantaneous DES queue depth.
    pub queue_depth: u64,
    /// p95 of the windowed queue-depth samples.
    pub queue_p95: u64,
    /// Instantaneous displaced backlog.
    pub backlog: u64,
    /// Instantaneous live application count.
    pub live: u64,
    /// Planned migrations in the window (the defrag-churn gauge; 0 with
    /// defrag off).
    pub defrag_churn: u64,
    /// Rules in the firing state after this tick.
    pub alerts_firing: u64,
    /// Edge transitions produced by this tick, in rule order.
    pub transitions: Vec<AlertTransition>,
}

/// Sliding-window health aggregation + edge-triggered alerting for one
/// churn run. Construct via [`Monitor::new`], drive via
/// [`Monitor::tick`].
#[derive(Debug, Clone)]
pub struct Monitor {
    config: MonitorConfig,
    viol_s: RateEstimator,
    arrivals: RateEstimator,
    admits: RateEstimator,
    cache_hits: WindowedCounter,
    cache_misses: WindowedCounter,
    solves: WindowedCounter,
    warm_iters: WindowedCounter,
    migrations: WindowedCounter,
    queue_depths: WindowedHistogram,
    last: TickInput,
    /// Firing state per rule, indexed like [`ALERT_RULES`].
    firing: [bool; 4],
    backlog_streak: u64,
    last_backlog: Option<u64>,
    ticks: u64,
    alerts_total: u64,
}

impl Monitor {
    /// Builds a monitor with empty windows.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite period, zero slots, or a
    /// non-positive SLO violation budget.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(
            config.period.is_finite() && config.period > 0.0,
            "monitor period must be positive"
        );
        assert!(config.slots > 0, "monitor window needs at least one slot");
        assert!(
            config.rules.slo_violation_budget > 0.0,
            "SLO violation budget must be positive"
        );
        let (w, n) = (config.period, config.slots);
        Monitor {
            viol_s: RateEstimator::new(w, n),
            arrivals: RateEstimator::new(w, n),
            admits: RateEstimator::new(w, n),
            cache_hits: WindowedCounter::new(w, n),
            cache_misses: WindowedCounter::new(w, n),
            solves: WindowedCounter::new(w, n),
            warm_iters: WindowedCounter::new(w, n),
            migrations: WindowedCounter::new(w, n),
            queue_depths: WindowedHistogram::new(w, n),
            config,
            last: TickInput::default(),
            firing: [false; 4],
            backlog_streak: 0,
            last_backlog: None,
            ticks: 0,
            alerts_total: 0,
        }
    }

    /// The configuration this monitor runs under.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Alert transitions emitted so far (rising and falling edges).
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total
    }

    /// Rules currently in the firing state, in [`ALERT_RULES`] order.
    pub fn firing(&self) -> Vec<&'static str> {
        ALERT_RULES
            .iter()
            .zip(self.firing)
            .filter_map(|(&r, f)| f.then_some(r))
            .collect()
    }

    /// Folds one tick's signals into the windows and evaluates the
    /// alert rules. `input`'s cumulative fields must be monotone across
    /// ticks (they are differenced against the previous tick).
    pub fn tick(&mut self, t: f64, input: &TickInput) -> MonitorSample {
        // Window deltas since the previous tick.
        let d_viol = (input.gr_violation_seconds - self.last.gr_violation_seconds).max(0.0);
        self.viol_s.record(t, d_viol);
        self.arrivals
            .record(t, input.arrivals.saturating_sub(self.last.arrivals) as f64);
        self.admits
            .record(t, input.admitted.saturating_sub(self.last.admitted) as f64);
        self.cache_hits
            .record(t, input.cache_hits.saturating_sub(self.last.cache_hits));
        self.cache_misses
            .record(t, input.cache_misses.saturating_sub(self.last.cache_misses));
        self.solves
            .record(t, input.solves.saturating_sub(self.last.solves));
        self.warm_iters.record(
            t,
            input
                .warm_inner_iters
                .saturating_sub(self.last.warm_inner_iters),
        );
        self.migrations
            .record(t, input.migrations.saturating_sub(self.last.migrations));
        self.queue_depths.record(t, input.queue_depth);
        self.last = *input;

        // Windowed aggregates.
        let gr_violation_s = self.viol_s.sum();
        let budget = self.viol_s.covered_seconds() * self.config.rules.slo_violation_budget;
        let gr_burn = if budget > 0.0 {
            gr_violation_s / budget
        } else {
            0.0
        };
        let cache_lookups = self.cache_hits.sum() + self.cache_misses.sum();
        let cache_hit_rate = if cache_lookups == 0 {
            1.0
        } else {
            self.cache_hits.sum() as f64 / cache_lookups as f64
        };
        let solves = self.solves.sum();
        let warm_iters_per_solve = if solves == 0 {
            0.0
        } else {
            self.warm_iters.sum() as f64 / solves as f64
        };
        if input.backlog > self.last_backlog.unwrap_or(u64::MAX) {
            self.backlog_streak += 1;
        } else {
            self.backlog_streak = 0;
        }
        self.last_backlog = Some(input.backlog);

        // Rule evaluation, in ALERT_RULES order.
        let rules = &self.config.rules;
        let verdicts: [(bool, f64, f64); 4] = [
            (
                gr_burn > rules.gr_burn_threshold,
                gr_burn,
                rules.gr_burn_threshold,
            ),
            (
                cache_lookups >= rules.min_cache_lookups && cache_hit_rate < rules.cache_hit_floor,
                cache_hit_rate,
                rules.cache_hit_floor,
            ),
            (
                solves >= rules.min_solves && warm_iters_per_solve > rules.warm_iters_ceiling,
                warm_iters_per_solve,
                rules.warm_iters_ceiling,
            ),
            (
                self.backlog_streak >= rules.backlog_growth_ticks,
                self.backlog_streak as f64,
                rules.backlog_growth_ticks as f64,
            ),
        ];
        let mut transitions = Vec::new();
        for (i, &(active, value, threshold)) in verdicts.iter().enumerate() {
            if active != self.firing[i] {
                self.firing[i] = active;
                self.alerts_total += 1;
                transitions.push(AlertTransition {
                    rule: ALERT_RULES[i],
                    firing: active,
                    value,
                    threshold,
                });
            }
        }
        self.ticks += 1;

        MonitorSample {
            time: t,
            window: self.viol_s.window_seconds(),
            gr_burn,
            gr_violation_s,
            be_rate: input.be_rate,
            arrival_rate: self.arrivals.rate(),
            admit_rate: self.admits.rate(),
            cache_hit_rate,
            cache_lookups,
            warm_iters_per_solve,
            solves,
            queue_depth: input.queue_depth,
            queue_p95: self.queue_depths.quantile(0.95).unwrap_or(0),
            backlog: input.backlog,
            live: input.live,
            defrag_churn: self.migrations.sum(),
            alerts_firing: self.firing.iter().filter(|&&f| f).count() as u64,
            transitions,
        }
    }

    /// Renders `sample` (typically the latest) as a Prometheus-style
    /// text exposition: `# TYPE` headers plus one `sparcle_*` series
    /// per signal. Deterministic — pure function of the sample and the
    /// monitor's cumulative counters.
    pub fn render_prometheus(&self, sample: &MonitorSample) -> String {
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: String| {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        };
        gauge(
            "sparcle_sim_time_seconds",
            "Simulated time of the latest monitor tick",
            format!("{}", sample.time),
        );
        gauge(
            "sparcle_monitor_window_seconds",
            "Window span in simulated seconds",
            format!("{}", sample.window),
        );
        gauge(
            "sparcle_gr_burn_ratio",
            "Windowed GR violation-seconds over the window SLO budget",
            format!("{}", sample.gr_burn),
        );
        gauge(
            "sparcle_gr_violation_seconds_window",
            "GR violation-seconds in the window",
            format!("{}", sample.gr_violation_s),
        );
        gauge(
            "sparcle_be_rate",
            "Instantaneous aggregate BE allocated rate",
            format!("{}", sample.be_rate),
        );
        gauge(
            "sparcle_arrival_rate",
            "Windowed arrivals per simulated second",
            format!("{}", sample.arrival_rate),
        );
        gauge(
            "sparcle_admit_rate",
            "Windowed admissions per simulated second",
            format!("{}", sample.admit_rate),
        );
        gauge(
            "sparcle_gamma_cache_hit_rate",
            "Windowed gamma-cache hit rate",
            format!("{}", sample.cache_hit_rate),
        );
        gauge(
            "sparcle_warm_iters_per_solve",
            "Windowed warm Newton iterations per BE solve",
            format!("{}", sample.warm_iters_per_solve),
        );
        gauge(
            "sparcle_queue_depth",
            "DES future-event-list depth at the tick",
            format!("{}", sample.queue_depth),
        );
        gauge(
            "sparcle_queue_depth_p95",
            "p95 of windowed queue-depth samples",
            format!("{}", sample.queue_p95),
        );
        gauge(
            "sparcle_backlog",
            "Displaced applications awaiting re-placement",
            format!("{}", sample.backlog),
        );
        gauge(
            "sparcle_live_apps",
            "Applications currently placed",
            format!("{}", sample.live),
        );
        gauge(
            "sparcle_defrag_churn",
            "Planned migrations committed in the window",
            format!("{}", sample.defrag_churn),
        );
        gauge(
            "sparcle_alerts_firing",
            "Alert rules currently firing",
            format!("{}", sample.alerts_firing),
        );
        for (i, rule) in ALERT_RULES.iter().enumerate() {
            out.push_str(&format!(
                "sparcle_alert_firing{{rule=\"{rule}\"}} {}\n",
                u64::from(self.firing[i])
            ));
        }
        out.push_str("# HELP sparcle_monitor_ticks_total Monitor ticks processed\n");
        out.push_str("# TYPE sparcle_monitor_ticks_total counter\n");
        out.push_str(&format!("sparcle_monitor_ticks_total {}\n", self.ticks));
        out.push_str("# HELP sparcle_alert_transitions_total Alert edges emitted\n");
        out.push_str("# TYPE sparcle_alert_transitions_total counter\n");
        out.push_str(&format!(
            "sparcle_alert_transitions_total {}\n",
            self.alerts_total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_input() -> TickInput {
        TickInput {
            be_rate: 2.0,
            queue_depth: 10,
            live: 3,
            ..TickInput::default()
        }
    }

    #[test]
    fn quiet_run_never_alerts() {
        let mut m = Monitor::new(MonitorConfig::default());
        for k in 1..=20 {
            let s = m.tick(5.0 * k as f64, &quiet_input());
            assert!(s.transitions.is_empty(), "tick {k}: {:?}", s.transitions);
            assert_eq!(s.alerts_firing, 0);
            assert_eq!(s.gr_burn, 0.0);
            // No lookups -> hit rate reads healthy.
            assert_eq!(s.cache_hit_rate, 1.0);
        }
        assert_eq!(m.alerts_total(), 0);
        assert_eq!(m.ticks(), 20);
    }

    #[test]
    fn burn_rate_fires_and_clears_edge_triggered() {
        let cfg = MonitorConfig::default(); // budget 0.05/s, 30 s window
        let mut m = Monitor::new(cfg);
        let mut input = quiet_input();
        // Tick 1: 3 violation-seconds in a 5-second-covered window vs a
        // 0.25 s budget -> burn 12, fires.
        input.gr_violation_seconds = 3.0;
        let s = m.tick(5.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert_eq!(s.transitions[0].rule, "gr_burn_rate");
        assert!(s.transitions[0].firing);
        assert!(s.gr_burn > 1.0, "burn = {}", s.gr_burn);
        // Tick 2, no new damage: still inside the window, stays firing
        // with NO new transition (edge-triggered).
        let s = m.tick(10.0, &input);
        assert!(s.transitions.is_empty());
        assert_eq!(s.alerts_firing, 1);
        // Scroll the window far past the damage: clears with one
        // falling edge.
        let mut cleared = false;
        for k in 3..=12 {
            let s = m.tick(5.0 * k as f64, &input);
            for tr in &s.transitions {
                assert_eq!(tr.rule, "gr_burn_rate");
                assert!(!tr.firing);
                cleared = true;
            }
        }
        assert!(cleared, "the burn alert must clear once the window rolls");
        assert_eq!(m.firing(), Vec::<&str>::new());
        assert_eq!(m.alerts_total(), 2);
    }

    #[test]
    fn cache_collapse_needs_volume() {
        let mut m = Monitor::new(MonitorConfig::default());
        let mut input = quiet_input();
        // 10 lookups, all misses: under min_cache_lookups -> no alert.
        input.cache_misses = 10;
        let s = m.tick(5.0, &input);
        assert!(s.transitions.is_empty());
        assert_eq!(s.cache_hit_rate, 0.0);
        // 100 more misses: volume reached, floor crossed -> fires.
        input.cache_misses = 110;
        let s = m.tick(10.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert_eq!(s.transitions[0].rule, "cache_hit_collapse");
        // Healthy traffic pushes the windowed rate back up -> clears.
        input.cache_hits = 2000;
        let s = m.tick(15.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert!(!s.transitions[0].firing);
    }

    #[test]
    fn solver_blowup_detected() {
        let mut m = Monitor::new(MonitorConfig::default());
        let mut input = quiet_input();
        input.solves = 10;
        input.warm_inner_iters = 500; // 50 iters/solve: healthy
        let s = m.tick(5.0, &input);
        assert!(s.transitions.is_empty());
        input.solves = 20;
        // 600-iters/solve burst: the window now averages
        // (500 + 6000) / 20 = 325 iters/solve, past the 250 ceiling.
        input.warm_inner_iters = 500 + 10 * 600;
        let s = m.tick(10.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert_eq!(s.transitions[0].rule, "solver_iteration_blowup");
        assert!(s.warm_iters_per_solve > 300.0);
    }

    #[test]
    fn backlog_growth_needs_consecutive_ticks() {
        let mut m = Monitor::new(MonitorConfig::default());
        let mut input = quiet_input();
        // Growth, dip, growth, growth: streak never reaches 3.
        for (k, backlog) in [1u64, 2, 1, 2, 3].into_iter().enumerate() {
            input.backlog = backlog;
            let s = m.tick(5.0 * (k + 1) as f64, &input);
            assert!(s.transitions.is_empty(), "backlog {backlog}");
        }
        // Third consecutive growth fires.
        input.backlog = 4;
        let s = m.tick(30.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert_eq!(s.transitions[0].rule, "backlog_growth");
        assert!(s.transitions[0].firing);
        // Any non-growth tick clears.
        let s = m.tick(35.0, &input);
        assert_eq!(s.transitions.len(), 1);
        assert!(!s.transitions[0].firing);
    }

    #[test]
    fn prometheus_exposition_is_complete_and_deterministic() {
        let mut m = Monitor::new(MonitorConfig::default());
        let s = m.tick(5.0, &quiet_input());
        let text = m.render_prometheus(&s);
        for series in [
            "sparcle_sim_time_seconds 5",
            "sparcle_gr_burn_ratio 0",
            "sparcle_gamma_cache_hit_rate 1",
            "sparcle_queue_depth 10",
            "sparcle_live_apps 3",
            "sparcle_monitor_ticks_total 1",
            "sparcle_alert_firing{rule=\"gr_burn_rate\"} 0",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
        let again = m.render_prometheus(&s);
        assert_eq!(text, again);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_is_rejected() {
        let mut cfg = MonitorConfig::default();
        cfg.rules.slo_violation_budget = 0.0;
        let _ = Monitor::new(cfg);
    }
}
