//! The event loop: [`SparcleRuntime`] owns a [`SparcleSystem`] and a
//! deterministic timeline of churn events.
//!
//! All randomness is consumed at construction (arrival times, element
//! transitions, fluctuation steps are pre-scheduled) or from dedicated
//! seeded streams in event order (hold times), and every data structure
//! iterated during event handling is ordered (`BTreeMap`/`BTreeSet`),
//! so a run is a pure function of `(network, arrivals, source, config)`
//! — including across γ-evaluator thread counts.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "telemetry")]
use sparcle_core::telemetry::Event;
#[cfg(feature = "telemetry")]
use sparcle_core::DisplaceCause;
#[cfg(feature = "telemetry")]
use sparcle_core::MigrationCause;
use sparcle_core::{Admission, DisplacedApp, SparcleSystem, SystemConfig, TraceHandle};
use sparcle_model::{
    AppId, Application, CapacityMap, Network, NetworkElement, Placement, QoeClass,
};
use sparcle_sim::des::EventQueue;
use sparcle_sim::{ElementStateStream, FluctuationModel};
use sparcle_workloads::ArrivalEvent;

use crate::defrag::{DefragConfig, Defragmenter};
use crate::ledger::SloLedger;
use crate::monitor::{Monitor, MonitorConfig, TickInput};
use crate::policy::ReconcilePolicy;

/// Stable trace label of a network element (`"ncp:3"`, `"link:7"`) —
/// same format the failure simulator emits.
#[cfg(feature = "telemetry")]
fn element_label(e: NetworkElement) -> String {
    match e {
        NetworkElement::Ncp(id) => format!("ncp:{}", id.index()),
        NetworkElement::Link(id) => format!("link:{}", id.index()),
    }
}

/// One timeline event the control plane reacts to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// The `index`-th application of the arrival trace arrives.
    Arrival {
        /// Arrival sequence number (feeds the application source).
        index: u64,
    },
    /// The application admitted for arrival `index` departs.
    Departure {
        /// Arrival sequence number of the departing application.
        index: u64,
    },
    /// A network element fails (`up == false`) or recovers.
    Element {
        /// The element changing state.
        element: NetworkElement,
        /// New state.
        up: bool,
    },
    /// Background capacities move to the pre-sampled step `step`.
    Fluctuation {
        /// Index into the pre-sampled fluctuation series.
        step: usize,
    },
    /// The control plane re-places displaced applications.
    Reconcile {
        /// Time of the disruption that scheduled this pass.
        cause: f64,
    },
    /// The observability monitor samples the run (periodic, consumes no
    /// randomness — enabling it never perturbs the timeline).
    MonitorTick,
    /// The background defragmenter considers planned migrations
    /// (periodic, consumes no randomness; with `defrag: None` the event
    /// is never scheduled and the timeline is bitwise pre-defrag).
    DefragTick,
}

/// Capacity-fluctuation configuration of the runtime timeline.
#[derive(Debug, Clone, Copy)]
pub struct FluctuationConfig {
    /// The random-walk model (floor, step, seed).
    pub model: FluctuationModel,
    /// Simulated seconds between capacity steps.
    pub period: f64,
}

/// Tunables of one churn run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// End of simulated time; events at or before the horizon are
    /// processed, later ones are dropped.
    pub horizon: f64,
    /// Duration of one element-failure epoch (the failure model samples
    /// per-epoch, exactly as the Figure-10 batch study does).
    pub epoch_length: f64,
    /// Seed of the element up/down stream.
    pub failure_seed: u64,
    /// Seed of the exponential hold-time stream.
    pub hold_seed: u64,
    /// Mean application lifetime (exponential holds).
    pub mean_hold: f64,
    /// Optional background capacity fluctuation.
    pub fluctuation: Option<FluctuationConfig>,
    /// Fixed control-plane delay between a disruption and its reconcile
    /// pass.
    pub reconcile_base_delay: f64,
    /// Additional reconcile delay per application in the displaced
    /// queue (modelling per-app re-placement work).
    pub reconcile_per_app_delay: f64,
    /// The order displaced applications are re-placed in.
    pub policy: ReconcilePolicy,
    /// Optional observability monitor (windowed health signals and
    /// burn-rate alerting on a periodic tick).
    pub monitor: Option<MonitorConfig>,
    /// Optional background defragmentation pass (periodic, budgeted
    /// planned migrations through [`sparcle_core::SystemTxn::migrate`]).
    pub defrag: Option<DefragConfig>,
    /// Configuration of the owned [`SparcleSystem`] (notably
    /// `assigner_threads`, which must not change results).
    pub system: SystemConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            horizon: 100.0,
            epoch_length: 1.0,
            failure_seed: 0,
            hold_seed: 0,
            mean_hold: 10.0,
            fluctuation: None,
            reconcile_base_delay: 0.05,
            reconcile_per_app_delay: 0.01,
            policy: ReconcilePolicy::Fifo,
            monitor: None,
            defrag: None,
            system: SystemConfig::default(),
        }
    }
}

/// A displaced application waiting for a reconcile pass.
#[derive(Debug, Clone)]
pub struct PendingApp {
    /// Arrival sequence number (the stable identity across
    /// re-placements).
    pub index: u64,
    /// Simulated time of the displacement.
    pub since: f64,
    /// The lifted entry (placement preserved).
    pub displaced: DisplacedApp,
}

/// The online control plane: owns the [`SparcleSystem`], pops churn
/// events in deterministic `(time, insertion)` order, and repairs the
/// system after each one.
///
/// `F` produces the `index`-th arriving application; it is called
/// exactly once per arrival, in event order, so a seeded generator
/// closure stays deterministic.
pub struct SparcleRuntime<F> {
    config: RuntimeConfig,
    system: SparcleSystem,
    queue: EventQueue<ChurnEvent>,
    source: F,
    hold_rng: StdRng,
    /// Pre-sampled fluctuation steps (index = `ChurnEvent::Fluctuation`).
    fluct_steps: Vec<CapacityMap>,
    /// Latest fluctuated capacities, before zeroing downed elements.
    base_caps: CapacityMap,
    down: BTreeSet<NetworkElement>,
    /// Arrival index → current id of the live application.
    live: BTreeMap<u64, AppId>,
    index_of: BTreeMap<AppId, u64>,
    pending: Vec<PendingApp>,
    /// Arrival indices of *placed* GR applications whose guarantee the
    /// current capacities violate.
    violating: BTreeSet<u64>,
    ledger: SloLedger,
    monitor: Option<Monitor>,
    defrag: Option<Defragmenter>,
    events_processed: u64,
    /// Arrival index → provenance id of the app's latest lifecycle
    /// event (arrival/displace/readmit), so the next hop can link back
    /// to it. Only populated while the provenance plane is on; entries
    /// leave at departure.
    #[cfg(feature = "telemetry")]
    last_event: BTreeMap<u64, u64>,
}

impl<F> std::fmt::Debug for SparcleRuntime<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparcleRuntime")
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .field("live", &self.live.len())
            .field("displaced", &self.pending.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<F: FnMut(u64) -> Application> SparcleRuntime<F> {
    /// Builds the runtime: pre-schedules every arrival (within the
    /// horizon), every element up/down transition (at
    /// `epoch × epoch_length`), and every fluctuation step. Departures
    /// and reconciles are scheduled dynamically as the run unfolds.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive horizon, epoch length, or mean hold, or
    /// a negative reconcile delay.
    pub fn new(
        network: Network,
        arrivals: impl IntoIterator<Item = ArrivalEvent>,
        source: F,
        config: RuntimeConfig,
    ) -> Self {
        assert!(
            config.horizon.is_finite() && config.horizon > 0.0,
            "horizon must be positive"
        );
        assert!(config.epoch_length > 0.0, "epoch length must be positive");
        assert!(config.mean_hold > 0.0, "mean hold must be positive");
        assert!(
            config.reconcile_base_delay >= 0.0 && config.reconcile_per_app_delay >= 0.0,
            "reconcile delays must be non-negative"
        );
        let mut queue = EventQueue::new();
        for a in arrivals {
            if a.time < config.horizon {
                queue.schedule(a.time, ChurnEvent::Arrival { index: a.index });
            }
        }
        let epochs = (config.horizon / config.epoch_length).ceil() as u64;
        let stream =
            ElementStateStream::new(&network, network.elements(), epochs, config.failure_seed);
        for tr in stream.collect_transitions() {
            let t = tr.epoch as f64 * config.epoch_length;
            if t < config.horizon {
                queue.schedule(
                    t,
                    ChurnEvent::Element {
                        element: tr.element,
                        up: tr.up,
                    },
                );
            }
        }
        let mut fluct_steps = Vec::new();
        if let Some(f) = &config.fluctuation {
            assert!(f.period > 0.0, "fluctuation period must be positive");
            let mut series = f.model.series(&network);
            let mut step = 0usize;
            loop {
                let t = (step + 1) as f64 * f.period;
                if t >= config.horizon {
                    break;
                }
                fluct_steps.push(series.step());
                queue.schedule(t, ChurnEvent::Fluctuation { step });
                step += 1;
            }
        }
        let base_caps = network.capacity_map();
        // Monitor ticks are pre-validated here; the first tick lands one
        // period in, the handler reschedules the rest. Scheduled last so
        // a tick sorts after same-time exogenous events — deterministic
        // either way, but "observe after the world moved" reads better.
        let monitor = config.monitor.clone().map(|m| {
            let mon = Monitor::new(m);
            if mon.config().period <= config.horizon {
                queue.schedule(mon.config().period, ChurnEvent::MonitorTick);
            }
            mon
        });
        // Same pattern for the defragmenter: first tick one period in,
        // the handler reschedules the rest. With `defrag: None` nothing
        // is scheduled and the timeline is bitwise pre-defrag.
        let defrag = config.defrag.clone().map(|d| {
            let df = Defragmenter::new(d);
            if df.config().period <= config.horizon {
                queue.schedule(df.config().period, ChurnEvent::DefragTick);
            }
            df
        });
        let hold_rng = StdRng::seed_from_u64(config.hold_seed);
        let system = SparcleSystem::with_config(network, config.system.clone());
        SparcleRuntime {
            config,
            system,
            queue,
            source,
            hold_rng,
            fluct_steps,
            base_caps,
            down: BTreeSet::new(),
            live: BTreeMap::new(),
            index_of: BTreeMap::new(),
            pending: Vec::new(),
            violating: BTreeSet::new(),
            ledger: SloLedger::default(),
            monitor,
            defrag,
            events_processed: 0,
            #[cfg(feature = "telemetry")]
            last_event: BTreeMap::new(),
        }
    }

    /// Runs the timeline to the horizon without telemetry.
    pub fn run(&mut self) -> &SloLedger {
        self.run_traced(TraceHandle::none())
    }

    /// Runs the timeline to the horizon, emitting one `runtime_*`
    /// telemetry event per processed churn event into `trace`.
    pub fn run_traced(&mut self, trace: TraceHandle<'_>) -> &SloLedger {
        let run_span = trace.span("runtime.run");
        while let Some((t, event)) = self.queue.pop() {
            if t > self.config.horizon {
                break;
            }
            self.accrue(t);
            self.events_processed += 1;
            trace.counter("runtime.events", 1);
            match event {
                ChurnEvent::Arrival { index } => self.on_arrival(t, index, trace),
                ChurnEvent::Departure { index } => self.on_departure(t, index, trace),
                ChurnEvent::Element { element, up } => self.on_element(t, element, up, trace),
                ChurnEvent::Fluctuation { step } => self.on_fluctuation(t, step, trace),
                ChurnEvent::Reconcile { cause } => self.on_reconcile(t, cause, trace),
                ChurnEvent::MonitorTick => self.on_monitor_tick(t, trace),
                ChurnEvent::DefragTick => self.on_defrag_tick(t, trace),
            }
        }
        self.accrue(self.config.horizon);
        // Deterministic state-core counters (wall-clock nanos stay out:
        // traces are compared bit-for-bit across thread counts).
        let stats = self.system.state_stats();
        trace.counter("system.solves", stats.solves);
        trace.counter("system.warm_solves", stats.warm_solves);
        trace.counter("system.cold_solves", stats.cold_solves);
        trace.counter("system.warm_inner_iters", stats.inner_iters_warm);
        trace.counter("system.cold_inner_iters", stats.inner_iters_cold);
        trace.counter(
            "system.residual_element_updates",
            stats.residual_element_updates,
        );
        trace.counter(
            "system.residual_full_recomputes",
            stats.residual_full_recomputes,
        );
        trace.counter("system.txn_commits", stats.txn_commits);
        trace.counter("system.txn_rollbacks", stats.txn_rollbacks);
        trace.counter("system.gamma_cache_hits", stats.gamma_cache_hits);
        trace.counter("system.gamma_cache_misses", stats.gamma_cache_misses);
        run_span.finish();
        &self.ledger
    }

    /// Integrates the SLO ledger up to `t` using the pre-event state:
    /// displaced GR applications and placed-but-violated ones accrue
    /// violation-seconds; the current BE allocation accrues delivered
    /// work.
    fn accrue(&mut self, t: f64) {
        let be_rate: f64 = self.system.be_apps().iter().map(|a| a.allocated_rate).sum();
        let violating = self
            .violating
            .iter()
            .copied()
            .chain(
                self.pending
                    .iter()
                    .filter(|p| p.displaced.is_gr())
                    .map(|p| p.index),
            )
            .collect::<Vec<u64>>();
        self.ledger.advance_to(t, violating, be_rate);
    }

    /// Current capacities: the latest fluctuation step with every downed
    /// element zeroed.
    fn effective_caps(&self) -> CapacityMap {
        let mut caps = self.base_caps.clone();
        for &e in &self.down {
            caps.scale_element(e, 0.0);
        }
        caps
    }

    /// Pushes the effective capacities into the system and refreshes the
    /// violated-GR set from the system's verdict.
    fn apply_caps(&mut self) {
        let violated = self
            .system
            .apply_capacity_fluctuation(self.effective_caps());
        self.violating = violated
            .iter()
            .filter_map(|id| self.index_of.get(id).copied())
            .collect();
    }

    /// `true` when any path of the displaced placement crosses a downed
    /// element — exact reinstatement is pointless, go straight to a
    /// fresh placement search.
    fn placement_touches_down(&self, displaced: &DisplacedApp) -> bool {
        if self.down.is_empty() {
            return false;
        }
        let network = self.system.network();
        let crosses = |placement: &Placement| {
            placement
                .elements_used(network)
                .iter()
                .any(|e| self.down.contains(e))
        };
        match displaced {
            DisplacedApp::Gr(a) => a.paths.iter().any(|(p, _)| crosses(&p.placement)),
            DisplacedApp::Be(a) => a.paths.iter().any(|p| crosses(&p.placement)),
        }
    }

    fn rate_of(&self, id: AppId) -> f64 {
        if let Some(gr) = self.system.gr_apps().iter().find(|a| a.id == id) {
            return gr.guaranteed_rate();
        }
        self.system
            .be_apps()
            .iter()
            .find(|a| a.id == id)
            .map_or(0.0, |a| a.allocated_rate)
    }

    fn register(&mut self, index: u64, id: AppId) {
        self.live.insert(index, id);
        self.index_of.insert(id, index);
    }

    fn on_arrival(&mut self, t: f64, index: u64, trace: TraceHandle<'_>) {
        let app = (self.source)(index);
        let is_gr = matches!(app.qoe(), QoeClass::GuaranteedRate { .. });
        let admission = self
            .system
            .submit(app)
            .expect("arrival source produced a malformed application");
        let admitted = admission.is_admitted();
        let mut rate = 0.0;
        if let Some(id) = admission.id() {
            self.register(index, id);
            rate = self.rate_of(id);
            let u: f64 = self.hold_rng.gen_range(f64::MIN_POSITIVE..1.0);
            self.queue.schedule(
                t + -u.ln() * self.config.mean_hold,
                ChurnEvent::Departure { index },
            );
        }
        self.ledger.record_arrival(admitted);
        trace.counter("runtime.arrivals", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            // An arrival is exogenous: it roots the app's cause chain
            // (empty `causes`). The lineage is the arrival index; a
            // rejection records the binding constraint's cause code.
            let cause = match &admission {
                Admission::Rejected(reason) => Some(reason.cause_code().to_owned()),
                Admission::Admitted(_) => None,
            };
            let id = trace.event(&Event::RuntimeArrival {
                time: t,
                app: index as u32,
                lineage: index,
                class: if is_gr { "gr" } else { "be" }.to_owned(),
                admitted,
                rate,
                cause,
            });
            if admitted && id != 0 && trace.provenance_enabled() {
                self.last_event.insert(index, id);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (is_gr, rate);
    }

    fn on_departure(&mut self, t: f64, index: u64, trace: TraceHandle<'_>) {
        let was_present = if let Some(id) = self.live.remove(&index) {
            self.index_of.remove(&id);
            self.violating.remove(&index);
            self.system.remove(id);
            true
        } else if let Some(pos) = self.pending.iter().position(|p| p.index == index) {
            // The app's lifetime ran out while it sat displaced.
            self.pending.remove(pos);
            true
        } else {
            false
        };
        if !was_present {
            return;
        }
        self.ledger.record_departure();
        trace.counter("runtime.departures", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            let prev = self.last_event.remove(&index).unwrap_or(0);
            let buf = [prev];
            let causes: &[u64] = if prev != 0 { &buf } else { &[] };
            trace.event_caused(
                &Event::RuntimeDeparture {
                    time: t,
                    app: index as u32,
                    lineage: index,
                },
                causes,
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = t;
    }

    fn on_element(&mut self, t: f64, element: NetworkElement, up: bool, trace: TraceHandle<'_>) {
        if up {
            self.down.remove(&element);
        } else {
            self.down.insert(element);
        }
        let mut displaced_now = 0u64;
        let mut displaced_indices: Vec<u64> = Vec::new();
        if !up {
            // Blast radius: lift every application whose paths cross the
            // failed element in one transaction (a single BE re-solve),
            // keeping the placements for cheap reinstatement on
            // recovery.
            let ids = self.system.apps_using_element(element);
            let entries = self.system.displace_batch(&ids);
            for (id, displaced) in ids.into_iter().zip(entries) {
                let index = self
                    .index_of
                    .remove(&id)
                    .expect("admitted apps are indexed");
                self.live.remove(&index);
                self.violating.remove(&index);
                self.pending.push(PendingApp {
                    index,
                    since: t,
                    displaced,
                });
                displaced_indices.push(index);
                displaced_now += 1;
            }
        }
        self.apply_caps();
        self.ledger.record_displacements(displaced_now);
        trace.counter("runtime.element_transitions", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            let element_id = trace.event(&Event::RuntimeElementState {
                time: t,
                element: element_label(element),
                up,
                displaced: displaced_now,
            });
            // Per-app displacement provenance: each evicted app links
            // back to its latest lifecycle event and to the element
            // transition that evicted it — the binding constraint.
            if trace.provenance_enabled() {
                for &index in &displaced_indices {
                    let mut causes = Vec::with_capacity(2);
                    if let Some(&prev) = self.last_event.get(&index) {
                        causes.push(prev);
                    }
                    if element_id != 0 {
                        causes.push(element_id);
                    }
                    let id = trace.event_caused(
                        &Event::RuntimeDisplace {
                            time: t,
                            app: index as u32,
                            lineage: index,
                            element: element_label(element),
                            cause: DisplaceCause::ElementFailure.code().to_owned(),
                        },
                        &causes,
                    );
                    if id != 0 {
                        self.last_event.insert(index, id);
                    }
                }
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = &displaced_indices;
        if displaced_now > 0 || (up && !self.pending.is_empty()) {
            let delay = self.config.reconcile_base_delay
                + self.config.reconcile_per_app_delay * self.pending.len() as f64;
            self.queue
                .schedule(t + delay, ChurnEvent::Reconcile { cause: t });
        }
    }

    fn on_fluctuation(&mut self, t: f64, step: usize, trace: TraceHandle<'_>) {
        self.base_caps = self.fluct_steps[step].clone();
        self.apply_caps();
        trace.counter("runtime.fluctuations", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            trace.event(&Event::RuntimeFluctuation {
                time: t,
                violated: self.violating.len() as u64,
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = t;
    }

    fn on_reconcile(&mut self, t: f64, cause: f64, trace: TraceHandle<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let reconcile_span = trace.span("runtime.reconcile");
        let mut batch = std::mem::take(&mut self.pending);
        if self.config.policy == ReconcilePolicy::GammaProbe {
            self.order_by_probe(&mut batch, t, trace);
        } else {
            self.config.policy.order(&mut batch);
        }
        let (mut restored, mut replaced, mut failed) = (0u64, 0u64, 0u64);
        // Provenance ids of the lifecycle events (displacements) this
        // pass is resolving — the aggregate reconcile event links back
        // to all of them.
        #[cfg(feature = "telemetry")]
        let mut pass_causes: Vec<u64> = Vec::new();
        for mut p in batch {
            #[cfg(feature = "telemetry")]
            let prev = {
                let prev = self.last_event.get(&p.index).copied().unwrap_or(0);
                if prev != 0 {
                    pass_causes.push(prev);
                }
                prev
            };
            // Cheap path first: reinstate the preserved placement (no γ
            // evaluation) unless it crosses a still-downed element.
            if !self.placement_touches_down(&p.displaced) {
                match self.system.try_readmit(p.displaced) {
                    Ok(id) => {
                        restored += 1;
                        self.register(p.index, id);
                        self.ledger.record_restore(t - p.since);
                        #[cfg(feature = "telemetry")]
                        self.emit_readmit(
                            trace,
                            t,
                            p.index,
                            "restored",
                            self.rate_of(id),
                            None,
                            prev,
                        );
                        continue;
                    }
                    // Ownership comes back on rejection; fall through to
                    // the fresh-placement path.
                    Err((displaced, _)) => p.displaced = displaced,
                }
            }
            // Full re-placement: a fresh admission pipeline run on the
            // current capacities (a new id; the arrival index stays the
            // stable identity).
            let fresh = self
                .system
                .submit(p.displaced.application_arc())
                .expect("previously admitted apps are well-formed");
            match fresh {
                Admission::Admitted(id) => {
                    replaced += 1;
                    self.register(p.index, id);
                    self.ledger.record_replacement(t - p.since);
                    #[cfg(feature = "telemetry")]
                    self.emit_readmit(trace, t, p.index, "replaced", self.rate_of(id), None, prev);
                }
                Admission::Rejected(reason) => {
                    failed += 1;
                    #[cfg(feature = "telemetry")]
                    self.emit_readmit(
                        trace,
                        t,
                        p.index,
                        "failed",
                        0.0,
                        Some(reason.cause_code()),
                        prev,
                    );
                    #[cfg(not(feature = "telemetry"))]
                    let _ = reason;
                    self.pending.push(p);
                }
            }
        }
        self.ledger.record_reconcile();
        trace.counter("runtime.reconciles", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            pass_causes.sort_unstable();
            pass_causes.dedup();
            trace.event_caused(
                &Event::RuntimeReconcile {
                    time: t,
                    policy: self.config.policy.label().to_owned(),
                    restored,
                    replaced,
                    failed,
                    latency: t - cause,
                },
                &pass_causes,
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (t, cause, restored, replaced, failed);
        reconcile_span.finish();
    }

    fn on_monitor_tick(&mut self, t: f64, trace: TraceHandle<'_>) {
        let Some(monitor) = self.monitor.as_mut() else {
            return;
        };
        // `accrue(t)` already ran, so the ledger's integrals cover the
        // timeline up to this tick (the extra integration points only
        // move the float rounding, never the measured behaviour).
        let stats = self.system.state_stats();
        let input = TickInput {
            gr_violation_seconds: self.ledger.total_gr_violation_seconds(),
            arrivals: self.ledger.arrivals(),
            admitted: self.ledger.admitted(),
            cache_hits: stats.gamma_cache_hits,
            cache_misses: stats.gamma_cache_misses,
            solves: stats.solves,
            warm_inner_iters: stats.inner_iters_warm,
            be_rate: self.system.be_apps().iter().map(|a| a.allocated_rate).sum(),
            queue_depth: self.queue.len() as u64,
            backlog: self.pending.len() as u64,
            live: self.live.len() as u64,
            migrations: self.ledger.migrations(),
        };
        let sample = monitor.tick(t, &input);
        let next = t + monitor.config().period;
        if next <= self.config.horizon {
            self.queue.schedule(next, ChurnEvent::MonitorTick);
        }
        trace.counter("runtime.monitor_ticks", 1);
        #[cfg(feature = "telemetry")]
        if trace.is_enabled() {
            trace.event(&Event::MonitorSnapshot {
                time: sample.time,
                window: sample.window,
                gr_burn: sample.gr_burn,
                gr_violation_s: sample.gr_violation_s,
                be_rate: sample.be_rate,
                arrival_rate: sample.arrival_rate,
                admit_rate: sample.admit_rate,
                cache_hit_rate: sample.cache_hit_rate,
                cache_lookups: sample.cache_lookups,
                warm_iters_per_solve: sample.warm_iters_per_solve,
                solves: sample.solves,
                queue_depth: sample.queue_depth,
                queue_p95: sample.queue_p95,
                backlog: sample.backlog,
                live: sample.live,
                alerts_firing: sample.alerts_firing,
            });
            for tr in &sample.transitions {
                trace.event(&Event::MonitorAlert {
                    time: t,
                    rule: tr.rule.to_owned(),
                    state: if tr.firing { "firing" } else { "cleared" }.to_owned(),
                    value: tr.value,
                    threshold: tr.threshold,
                });
            }
        }
        if let Some(path) = &monitor.config().metrics_out {
            let text = monitor.render_prometheus(&sample);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!(
                    "warning: failed to write metrics file {}: {e}",
                    path.display()
                );
            }
        }
    }

    /// One background defragmentation pass (DESIGN.md §15). Reconcile
    /// repair always outranks optimization churn: the pass is skipped
    /// outright while displaced applications wait or while the modeled
    /// writer is still busy with a previous pass (the PR-8 cost model,
    /// shared with the admission service). A pass that does run:
    ///
    /// 1. **Probes** every live application with a rollback-only
    ///    [`sparcle_core::SystemTxn::migrate`] and scores the move by
    ///    the *system-wide* BE delivered-rate delta — per-app deltas
    ///    would miss moves whose value is the capacity they free for
    ///    everyone else (and would never move a GR app, whose own rate
    ///    is fixed at R_J wherever it sits).
    /// 2. **Selects greedily**: best probed gain first (arrival index
    ///    breaks ties), bounded by the epoch's displaced-seconds budget
    ///    (each commit consumes `move_cost`).
    /// 3. **Re-validates and commits**: earlier commits shift the
    ///    allocation, so each selected move is re-probed against the
    ///    current state and committed only if still net-positive;
    ///    otherwise its transaction rolls back (outcome `"kept"`).
    ///
    /// Committed moves are charged to the [`SloLedger`] as planned
    /// churn (`record_migration`), re-keyed in the arrival-index maps
    /// (the index stays the stable identity across the new [`AppId`]),
    /// and emitted as `runtime_migrate` lifecycle events chained to the
    /// app's previous lifecycle hop.
    fn on_defrag_tick(&mut self, t: f64, trace: TraceHandle<'_>) {
        let Some(d) = &self.defrag else {
            return;
        };
        let cfg = d.config().clone();
        let writer_idle = d.writer_idle(t);
        let next = t + cfg.period;
        if next <= self.config.horizon {
            self.queue.schedule(next, ChurnEvent::DefragTick);
        }
        trace.counter("runtime.defrag_ticks", 1);
        if !self.pending.is_empty() || !writer_idle {
            self.defrag.as_mut().expect("checked above").note_skip();
            return;
        }
        let pass_span = trace.span("runtime.defrag");
        let mut budget = self.defrag.as_mut().expect("checked above").begin_pass();
        let be_total =
            |sys: &SparcleSystem| -> f64 { sys.be_apps().iter().map(|a| a.allocated_rate).sum() };
        // Probe phase (rollback-only; the system is bitwise untouched).
        let before = be_total(&self.system);
        let mut probes = 0u64;
        let mut candidates: Vec<(f64, u64)> = Vec::new();
        for (&index, &id) in &self.live {
            let mut txn = self.system.begin();
            let gain = match txn.migrate(id) {
                Some(o) if o.moved() => be_total(txn.system()) - before,
                _ => f64::NEG_INFINITY,
            };
            txn.rollback();
            probes += 1;
            if gain > cfg.min_gain {
                candidates.push((gain, index));
            }
        }
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        // Commit phase: re-validate each selected move on the current
        // (post-earlier-commits) state, under the epoch budget.
        let mut moves = 0u64;
        for (_, index) in candidates {
            if budget < cfg.move_cost {
                break;
            }
            let id = self.live[&index];
            let current = be_total(&self.system);
            let mut txn = self.system.begin();
            let outcome = txn.migrate(id).expect("live apps are placed");
            let committed = outcome.moved() && be_total(txn.system()) - current > cfg.min_gain;
            if committed {
                txn.commit();
            } else {
                txn.rollback();
            }
            let mut new_rate = outcome.old_rate;
            if committed {
                let new_id = outcome.new_id().expect("committed moves were admitted");
                self.live.insert(index, new_id);
                self.index_of.remove(&outcome.old_id);
                self.index_of.insert(new_id, index);
                // The move re-ran admission on the current capacities,
                // so a previously violated guarantee is fit again.
                self.violating.remove(&index);
                budget -= cfg.move_cost;
                moves += 1;
                self.ledger.record_migration(cfg.move_cost);
                new_rate = self.rate_of(new_id);
            }
            #[cfg(feature = "telemetry")]
            if trace.is_enabled() {
                let prev = self.last_event.get(&index).copied().unwrap_or(0);
                let buf = [prev];
                let causes: &[u64] = if prev != 0 { &buf } else { &[] };
                let eid = trace.event_caused(
                    &Event::RuntimeMigrate {
                        time: t,
                        app: index as u32,
                        lineage: index,
                        outcome: if committed { "migrated" } else { "kept" }.to_owned(),
                        old_rate: outcome.old_rate,
                        new_rate,
                        cause: MigrationCause::Defragmentation.code().to_owned(),
                    },
                    causes,
                );
                if committed && eid != 0 && trace.provenance_enabled() {
                    self.last_event.insert(index, eid);
                }
            }
            #[cfg(not(feature = "telemetry"))]
            let _ = new_rate;
        }
        let d = self.defrag.as_mut().expect("checked above");
        d.note_probes(probes);
        d.note_moves(t, moves);
        trace.counter("runtime.defrag_passes", 1);
        trace.counter("runtime.defrag_moves", moves);
        pass_span.finish();
    }

    /// Emits one `runtime_readmit` lifecycle event linking back to the
    /// app's previous lifecycle hop, and advances the lineage cursor.
    #[cfg(feature = "telemetry")]
    #[allow(clippy::too_many_arguments)]
    fn emit_readmit(
        &mut self,
        trace: TraceHandle<'_>,
        t: f64,
        index: u64,
        outcome: &str,
        rate: f64,
        cause: Option<&'static str>,
        prev: u64,
    ) {
        if !trace.provenance_enabled() {
            return;
        }
        let buf = [prev];
        let causes: &[u64] = if prev != 0 { &buf } else { &[] };
        let id = trace.event_caused(
            &Event::RuntimeReadmit {
                time: t,
                app: index as u32,
                lineage: index,
                outcome: outcome.to_owned(),
                rate,
                cause: cause.map(str::to_owned),
            },
            causes,
        );
        if id != 0 {
            self.last_event.insert(index, id);
        }
    }

    /// Orders the displaced batch by what-if probes: each application is
    /// submitted inside a rollback-only transaction and the rate it
    /// would get *on the current capacities* is read before the
    /// transaction unwinds — the system (rates, residuals, and the id
    /// counter included) is left bitwise untouched. Highest probed rate
    /// first; failed probes last; ties fall back to the arrival index.
    ///
    /// With the provenance plane on, each probe's counterfactual answer
    /// is emitted as a `runtime_probe` event linked to the app's latest
    /// lifecycle event — the what-if results `sparcle-trace explain`
    /// attaches to the timeline.
    fn order_by_probe(&mut self, batch: &mut Vec<PendingApp>, t: f64, trace: TraceHandle<'_>) {
        #[cfg(not(feature = "telemetry"))]
        let _ = (t, trace);
        let mut keyed: Vec<(f64, PendingApp)> = batch
            .drain(..)
            .map(|p| {
                let mut txn = self.system.begin();
                let probed = match txn.submit(p.displaced.application_arc()) {
                    Ok(Admission::Admitted(_)) => {
                        if p.displaced.is_gr() {
                            // A GR admission guarantees exactly R_J.
                            p.displaced.displaced_rate()
                        } else {
                            txn.system()
                                .be_apps()
                                .last()
                                .map_or(f64::NEG_INFINITY, |a| a.allocated_rate)
                        }
                    }
                    _ => f64::NEG_INFINITY,
                };
                txn.rollback();
                #[cfg(feature = "telemetry")]
                if trace.provenance_enabled() {
                    let feasible = probed > f64::NEG_INFINITY;
                    let prev = self.last_event.get(&p.index).copied().unwrap_or(0);
                    let buf = [prev];
                    let causes: &[u64] = if prev != 0 { &buf } else { &[] };
                    trace.event_caused(
                        &Event::RuntimeProbe {
                            time: t,
                            app: p.index as u32,
                            lineage: p.index,
                            feasible,
                            rate: if feasible { probed } else { 0.0 },
                        },
                        causes,
                    );
                }
                (probed, p)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.index.cmp(&b.1.index)));
        batch.extend(keyed.into_iter().map(|(_, p)| p));
    }

    /// The owned scheduling system (final state after [`Self::run`]).
    pub fn system(&self) -> &SparcleSystem {
        &self.system
    }

    /// Consumes the runtime, handing out the owned system — for
    /// post-run state inspection (e.g. the differential suites compare
    /// final residuals and rates across configurations).
    pub fn into_system(self) -> SparcleSystem {
        self.system
    }

    /// The SLO ledger accrued so far.
    pub fn ledger(&self) -> &SloLedger {
        &self.ledger
    }

    /// The observability monitor, when enabled — for post-run alert
    /// inspection (`ticks()`, `alerts_total()`, `firing()`).
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// The background defragmenter, when enabled — for post-run budget
    /// and churn inspection (`passes()`, `probes()`, `moves()`).
    pub fn defrag(&self) -> Option<&Defragmenter> {
        self.defrag.as_ref()
    }

    /// Applications currently displaced and waiting for a reconcile.
    pub fn pending(&self) -> &[PendingApp] {
        &self.pending
    }

    /// Elements currently down.
    pub fn down_elements(&self) -> &BTreeSet<NetworkElement> {
        &self.down
    }

    /// Arrival indices of the currently live applications.
    pub fn live_indices(&self) -> Vec<u64> {
        self.live.keys().copied().collect()
    }

    /// Churn events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The simulated clock (time of the last processed event).
    pub fn now(&self) -> f64 {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{LinkDirection, NcpId, NetworkBuilder, ResourceVec};
    use sparcle_workloads::graphs::linear_task_graph;
    use sparcle_workloads::ArrivalTrace;

    /// Four NCPs, two disjoint source→sink routes: via a big `hub` over
    /// two flaky links, or via `alt` over two reliable ones — so element
    /// failures always leave a repair path.
    fn two_route_network(flaky: f64) -> Network {
        let mut b = NetworkBuilder::new();
        let src = b.add_ncp("src-host", ResourceVec::cpu(10.0));
        let hub = b.add_ncp("hub", ResourceVec::cpu(1000.0));
        let sink = b.add_ncp("sink-host", ResourceVec::cpu(10.0));
        let alt = b.add_ncp("alt", ResourceVec::cpu(800.0));
        b.add_link_full("l0", src, hub, 1e4, LinkDirection::Undirected, flaky)
            .unwrap();
        b.add_link_full("l1", hub, sink, 1e4, LinkDirection::Undirected, flaky)
            .unwrap();
        b.add_link("l2", src, alt, 1e4).unwrap();
        b.add_link("l3", alt, sink, 1e4).unwrap();
        b.build().unwrap()
    }

    /// Every third arrival is Guaranteed-Rate; priorities cycle.
    fn app_source(index: u64) -> Application {
        let graph = linear_task_graph(&[50.0], &[1000.0, 500.0]).unwrap();
        let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
        let qoe = if index.is_multiple_of(3) {
            QoeClass::guaranteed_rate(2.0, 0.5)
        } else {
            QoeClass::best_effort(1.0 + (index % 4) as f64)
        };
        Application::new(graph, qoe, [(src, NcpId::new(0)), (sink, NcpId::new(2))]).unwrap()
    }

    fn config(policy: ReconcilePolicy, threads: usize) -> RuntimeConfig {
        let mut c = RuntimeConfig {
            horizon: 40.0,
            epoch_length: 1.0,
            failure_seed: 11,
            hold_seed: 7,
            mean_hold: 15.0,
            policy,
            ..RuntimeConfig::default()
        };
        c.system.assigner_threads = threads;
        c
    }

    fn run_once(policy: ReconcilePolicy, threads: usize) -> SloLedger {
        let cfg = config(policy, threads);
        let arrivals = ArrivalTrace::Poisson { rate: 1.0 }.events(cfg.horizon, 42);
        let mut rt = SparcleRuntime::new(two_route_network(0.15), arrivals, app_source, cfg);
        rt.run().clone()
    }

    #[test]
    fn timeline_is_deterministic() {
        let a = run_once(ReconcilePolicy::Fifo, 1);
        let b = run_once(ReconcilePolicy::Fifo, 1);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.arrivals() > 10, "expected a busy timeline");
        assert!(a.displacements() > 0, "flaky links should displace apps");
    }

    #[test]
    fn thread_count_does_not_change_the_run() {
        let a = run_once(ReconcilePolicy::GammaImpact, 1);
        let b = run_once(ReconcilePolicy::GammaImpact, 8);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn policies_share_the_same_timeline_volume() {
        // Policies reorder re-placement, never the exogenous events.
        let a = run_once(ReconcilePolicy::Fifo, 1);
        let b = run_once(ReconcilePolicy::Priority, 1);
        assert_eq!(a.arrivals(), b.arrivals());
        assert_eq!(a.displacements(), b.displacements());
    }

    #[test]
    fn gamma_probe_policy_is_deterministic_across_threads() {
        // The probe transactions must roll back exactly: a probing run
        // is a pure function of the timeline, including across γ
        // evaluator thread counts.
        let a = run_once(ReconcilePolicy::GammaProbe, 1);
        let b = run_once(ReconcilePolicy::GammaProbe, 8);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // And probing never changes the exogenous event volume.
        let c = run_once(ReconcilePolicy::GammaImpact, 1);
        assert_eq!(a.arrivals(), c.arrivals());
        assert_eq!(a.displacements(), c.displacements());
    }

    #[test]
    fn failure_displaces_and_reconcile_repairs() {
        // One app, one permanently failing hub route: the app must end up
        // re-placed on the alt route.
        let mut net = NetworkBuilder::new();
        let src = net.add_ncp("src", ResourceVec::cpu(10.0));
        let hub = net.add_ncp("hub", ResourceVec::cpu(1000.0));
        let sink = net.add_ncp("sink", ResourceVec::cpu(10.0));
        let alt = net.add_ncp("alt", ResourceVec::cpu(1000.0));
        net.add_link_full("l0", src, hub, 1e6, LinkDirection::Undirected, 0.25)
            .unwrap();
        net.add_link_full("l1", hub, sink, 1e6, LinkDirection::Undirected, 0.25)
            .unwrap();
        net.add_link("l2", src, alt, 1e4).unwrap();
        net.add_link("l3", alt, sink, 1e4).unwrap();
        let net = net.build().unwrap();

        let cfg = RuntimeConfig {
            horizon: 20.0,
            mean_hold: 1e6, // never departs
            failure_seed: 3,
            ..RuntimeConfig::default()
        };
        let arrivals = vec![ArrivalEvent {
            time: 0.5,
            index: 0,
        }];
        let mut rt = SparcleRuntime::new(net, arrivals, |_| app_source(1), cfg);
        let ledger = rt.run().clone();
        assert_eq!(ledger.arrivals(), 1);
        assert_eq!(ledger.admitted(), 1);
        assert!(ledger.displacements() >= 1, "hub route must fail");
        assert!(
            ledger.restores() + ledger.placement_churn() >= 1,
            "the app must be repaired at least once"
        );
        assert!(
            rt.live_indices() == vec![0] || !rt.pending().is_empty(),
            "the app is either live or awaiting a reconcile"
        );
        assert!(ledger.mean_reaction_latency() > 0.0);
    }

    #[test]
    fn departures_release_their_apps() {
        let cfg = RuntimeConfig {
            horizon: 120.0,
            mean_hold: 4.0,
            ..RuntimeConfig::default()
        };
        let arrivals = ArrivalTrace::Poisson { rate: 0.3 }.events(30.0, 9);
        let mut rt = SparcleRuntime::new(two_route_network(0.0), arrivals, app_source, cfg);
        let ledger = rt.run().clone();
        assert!(ledger.arrivals() > 0);
        assert_eq!(
            ledger.departures(),
            ledger.admitted(),
            "with a 120 s horizon and 4 s holds every admitted app departs"
        );
        assert!(rt.live_indices().is_empty());
        assert_eq!(rt.system().app_ids().len(), 0);
    }

    #[test]
    fn monitor_ticks_do_not_perturb_the_timeline() {
        // A MonitorTick consumes no randomness and mutates no system
        // state, so enabling it must leave the ledger bit-identical.
        let run = |monitor: Option<MonitorConfig>| {
            let mut cfg = config(ReconcilePolicy::Fifo, 1);
            cfg.monitor = monitor;
            let arrivals = ArrivalTrace::Poisson { rate: 1.0 }.events(cfg.horizon, 42);
            let mut rt = SparcleRuntime::new(two_route_network(0.15), arrivals, app_source, cfg);
            rt.run();
            rt
        };
        let off = run(None);
        let on = run(Some(MonitorConfig::default()));
        // Event counts match exactly; integrals only to rounding, since
        // tick times split the ledger's piecewise integration intervals.
        assert_eq!(off.ledger().arrivals(), on.ledger().arrivals());
        assert_eq!(off.ledger().admitted(), on.ledger().admitted());
        assert_eq!(off.ledger().departures(), on.ledger().departures());
        assert_eq!(off.ledger().displacements(), on.ledger().displacements());
        assert_eq!(off.ledger().reconciles(), on.ledger().reconciles());
        assert_eq!(
            off.ledger().placement_churn(),
            on.ledger().placement_churn()
        );
        let (a, b) = (
            off.ledger().be_rate_integral(),
            on.ledger().be_rate_integral(),
        );
        assert!((a - b).abs() <= 1e-9 * a.abs(), "{a} vs {b}");
        let (a, b) = (
            off.ledger().total_gr_violation_seconds(),
            on.ledger().total_gr_violation_seconds(),
        );
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        // 40 s horizon, 5 s period: ticks at 5, 10, …, 40.
        let monitor = on.monitor().expect("monitor was enabled");
        assert_eq!(monitor.ticks(), 8);
        assert_eq!(
            on.events_processed(),
            off.events_processed() + monitor.ticks()
        );
    }

    #[test]
    fn defrag_commits_budgeted_net_positive_moves() {
        // A churny run fragments placements across the two routes; the
        // defragmenter must find net-positive moves and stay inside its
        // displaced-seconds budget (asserted from the ledger alone).
        let run = |defrag: Option<DefragConfig>, threads: usize| {
            let mut cfg = config(ReconcilePolicy::Fifo, threads);
            cfg.horizon = 80.0;
            cfg.defrag = defrag;
            let arrivals = ArrivalTrace::Poisson { rate: 1.0 }.events(cfg.horizon, 42);
            let mut rt = SparcleRuntime::new(two_route_network(0.15), arrivals, app_source, cfg);
            rt.run();
            rt
        };
        let on = run(Some(DefragConfig::default()), 1);
        let d = on.defrag().expect("defrag was enabled");
        assert!(d.passes() > 0, "an 80 s run must fit several passes");
        assert!(d.probes() > 0, "passes must probe live apps");
        assert!(
            on.ledger().migrations() > 0,
            "a fragmented run must yield at least one net-positive move"
        );
        assert_eq!(on.ledger().migrations(), d.moves());
        // The budget invariant, from the ledger alone: every pass spends
        // at most one epoch's allowance.
        let budget = DefragConfig::default().budget_per_epoch;
        assert!(
            on.ledger().migration_displaced_seconds() <= d.passes() as f64 * budget + 1e-12,
            "displaced-seconds {} exceed {} passes × {} budget",
            on.ledger().migration_displaced_seconds(),
            d.passes(),
            budget
        );
        // Migrated apps stay fully registered: the system and the
        // arrival-index maps agree.
        assert_eq!(on.system().app_ids().len(), on.live_indices().len());
        // Planned moves never change the exogenous arrival volume
        // (displacement counts *may* differ: migrated apps sit on
        // different paths, so failure blast radii shift).
        let off = run(None, 1);
        assert_eq!(off.ledger().arrivals(), on.ledger().arrivals());
        assert_eq!(off.ledger().migrations(), 0);
    }

    #[test]
    fn defrag_is_deterministic_across_threads() {
        // Migration probes and commits go through the same transactional
        // core as admission: a defragmenting run stays a pure function
        // of the timeline across γ-evaluator thread counts.
        let run = |threads: usize| {
            let mut cfg = config(ReconcilePolicy::GammaProbe, threads);
            cfg.horizon = 60.0;
            cfg.defrag = Some(DefragConfig::default());
            let arrivals = ArrivalTrace::Poisson { rate: 1.0 }.events(cfg.horizon, 42);
            let mut rt = SparcleRuntime::new(two_route_network(0.15), arrivals, app_source, cfg);
            rt.run();
            (format!("{:?}", rt.ledger()), rt.ledger().migrations())
        };
        let (a, moves_a) = run(1);
        let (b, moves_b) = run(8);
        assert_eq!(a, b);
        assert_eq!(moves_a, moves_b);
    }

    #[test]
    fn fluctuation_steps_are_applied() {
        let cfg = RuntimeConfig {
            horizon: 30.0,
            fluctuation: Some(FluctuationConfig {
                model: FluctuationModel {
                    floor: 0.4,
                    step: 0.2,
                    seed: 5,
                },
                period: 2.0,
            }),
            ..RuntimeConfig::default()
        };
        let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(cfg.horizon, 17);
        let mut rt = SparcleRuntime::new(two_route_network(0.0), arrivals, app_source, cfg);
        let before = rt.events_processed();
        rt.run();
        // 14 fluctuation steps land inside the horizon on top of
        // arrivals/departures.
        assert!(rt.events_processed() > before + 14);
        assert_eq!(rt.ledger().time(), 30.0);
    }
}
