//! The SLO ledger: damage accounting integrated over simulated time.
//!
//! Between any two consecutive timeline events the system state is
//! constant, so every integral quantity (GR violation-seconds, BE
//! delivered rate) accrues exactly as `state × Δt`. The runtime calls
//! [`SloLedger::advance_to`] with the pre-event state before applying
//! each event, which makes the ledger an exact — not sampled — account
//! of the run.

use std::collections::BTreeMap;

/// Per-run service-level accounting for one churn timeline.
#[derive(Debug, Clone, Default)]
pub struct SloLedger {
    last_time: f64,
    /// Seconds each GR application (keyed by arrival index) spent with
    /// its guarantee violated — displaced, or placed but unfit after a
    /// capacity change.
    gr_violation: BTreeMap<u64, f64>,
    /// `∫ Σ_BE allocated_rate dt` — total Best-Effort work delivered.
    be_rate_integral: f64,
    /// Disruption-to-re-placement latency per re-placed application.
    reaction_latencies: Vec<f64>,
    /// Applications re-placed onto a *new* placement (the churn count —
    /// exact reinstatements are tracked separately as `restores`).
    placement_churn: u64,
    restores: u64,
    arrivals: u64,
    admitted: u64,
    departures: u64,
    displacements: u64,
    reconciles: u64,
    /// Requests the admission service dropped under backpressure
    /// (charged here so shedding is SLO damage, not free capacity).
    sheds: u64,
    /// Requests the service pushed past their arrival window into a
    /// later batch (each deferral is one window of added decision
    /// latency).
    deferrals: u64,
    /// Planned migrations committed by the background defragmenter.
    migrations: u64,
    /// Modeled seconds of per-app unavailability charged for those
    /// migrations — the currency the defragmenter's per-epoch budget is
    /// denominated in.
    migration_displaced_seconds: f64,
}

impl SloLedger {
    /// Accrues the integrals from the previous event time up to `t`:
    /// each index in `violating_gr` gains `Δt` violation-seconds and the
    /// BE integral gains `be_rate × Δt`. Out-of-order times are clamped
    /// (Δt ≥ 0).
    pub fn advance_to(
        &mut self,
        t: f64,
        violating_gr: impl IntoIterator<Item = u64>,
        be_rate: f64,
    ) {
        let dt = (t - self.last_time).max(0.0);
        self.last_time = self.last_time.max(t);
        if dt == 0.0 {
            return;
        }
        for index in violating_gr {
            *self.gr_violation.entry(index).or_insert(0.0) += dt;
        }
        self.be_rate_integral += be_rate * dt;
    }

    /// Records one arrival and its admission outcome.
    pub fn record_arrival(&mut self, admitted: bool) {
        self.arrivals += 1;
        if admitted {
            self.admitted += 1;
        }
    }

    /// Records one departure (of a live or displaced application).
    pub fn record_departure(&mut self) {
        self.departures += 1;
    }

    /// Records `n` applications displaced by one disruption.
    pub fn record_displacements(&mut self, n: u64) {
        self.displacements += n;
    }

    /// Records one reconcile pass.
    pub fn record_reconcile(&mut self) {
        self.reconciles += 1;
    }

    /// Records one admission request shed by the service's
    /// backpressure/load-shedding policy (counted as an arrival that
    /// was not admitted, plus the shed charge).
    pub fn record_shed(&mut self) {
        self.arrivals += 1;
        self.sheds += 1;
    }

    /// Records `n` requests deferred past their arrival window into a
    /// later micro-batch.
    pub fn record_deferrals(&mut self, n: u64) {
        self.deferrals += n;
    }

    /// Records an exact reinstatement (original placement intact).
    pub fn record_restore(&mut self, latency: f64) {
        self.restores += 1;
        self.reaction_latencies.push(latency);
    }

    /// Records a re-placement onto a new placement (placement churn).
    pub fn record_replacement(&mut self, latency: f64) {
        self.placement_churn += 1;
        self.reaction_latencies.push(latency);
    }

    /// Records one committed planned migration, charging its modeled
    /// per-app unavailability. Migrations are deliberate churn: they
    /// count toward [`Self::placement_churn`] like a failure-driven
    /// re-placement, and their displaced-seconds are tracked separately
    /// so budget enforcement can be asserted from the ledger alone.
    pub fn record_migration(&mut self, displaced_seconds: f64) {
        self.migrations += 1;
        self.placement_churn += 1;
        self.migration_displaced_seconds += displaced_seconds;
    }

    /// Total GR violation-seconds across all applications.
    pub fn total_gr_violation_seconds(&self) -> f64 {
        self.gr_violation.values().sum()
    }

    /// Violation-seconds of one GR application by arrival index (`0.0`
    /// when it never violated).
    pub fn gr_violation_seconds(&self, index: u64) -> f64 {
        self.gr_violation.get(&index).copied().unwrap_or(0.0)
    }

    /// Per-application violation map (arrival index → seconds).
    pub fn gr_violations(&self) -> &BTreeMap<u64, f64> {
        &self.gr_violation
    }

    /// `∫ Σ_BE allocated_rate dt` over the run.
    pub fn be_rate_integral(&self) -> f64 {
        self.be_rate_integral
    }

    /// Mean disruption-to-re-placement latency (`NaN` when nothing was
    /// re-placed).
    pub fn mean_reaction_latency(&self) -> f64 {
        if self.reaction_latencies.is_empty() {
            f64::NAN
        } else {
            self.reaction_latencies.iter().sum::<f64>() / self.reaction_latencies.len() as f64
        }
    }

    /// Worst disruption-to-re-placement latency (`0.0` when nothing was
    /// re-placed).
    pub fn max_reaction_latency(&self) -> f64 {
        self.reaction_latencies.iter().fold(0.0, |m, &l| m.max(l))
    }

    /// All recorded reaction latencies, in re-placement order.
    pub fn reaction_latencies(&self) -> &[f64] {
        &self.reaction_latencies
    }

    /// Applications moved to a *new* placement after displacement.
    pub fn placement_churn(&self) -> u64 {
        self.placement_churn
    }

    /// Applications reinstated on their original placement.
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Arrivals processed.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Arrivals admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Departures processed.
    pub fn departures(&self) -> u64 {
        self.departures
    }

    /// Applications displaced by element failures.
    pub fn displacements(&self) -> u64 {
        self.displacements
    }

    /// Reconcile passes that ran.
    pub fn reconciles(&self) -> u64 {
        self.reconciles
    }

    /// Admission requests shed under backpressure.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Admission requests deferred past their arrival window.
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }

    /// Planned migrations committed by the defragmenter.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Modeled displaced-seconds charged for planned migrations.
    pub fn migration_displaced_seconds(&self) -> f64 {
        self.migration_displaced_seconds
    }

    /// The simulated time the ledger has accrued up to.
    pub fn time(&self) -> f64 {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrals_accrue_piecewise() {
        let mut l = SloLedger::default();
        l.advance_to(2.0, [7u64], 3.0);
        l.advance_to(5.0, [7u64, 9], 1.0);
        assert_eq!(l.gr_violation_seconds(7), 5.0);
        assert_eq!(l.gr_violation_seconds(9), 3.0);
        assert_eq!(l.gr_violation_seconds(4), 0.0);
        assert_eq!(l.total_gr_violation_seconds(), 8.0);
        assert_eq!(l.be_rate_integral(), 2.0 * 3.0 + 3.0 * 1.0);
        assert_eq!(l.time(), 5.0);
        // Same-instant and out-of-order advances accrue nothing.
        l.advance_to(5.0, [7u64], 100.0);
        l.advance_to(4.0, [7u64], 100.0);
        assert_eq!(l.be_rate_integral(), 9.0);
    }

    #[test]
    fn latency_stats() {
        let mut l = SloLedger::default();
        assert!(l.mean_reaction_latency().is_nan());
        assert_eq!(l.max_reaction_latency(), 0.0);
        l.record_restore(0.2);
        l.record_replacement(0.6);
        assert!((l.mean_reaction_latency() - 0.4).abs() < 1e-12);
        assert_eq!(l.max_reaction_latency(), 0.6);
        assert_eq!(l.restores(), 1);
        assert_eq!(l.placement_churn(), 1);
        assert_eq!(l.reaction_latencies(), &[0.2, 0.6]);
    }

    #[test]
    fn counters_count() {
        let mut l = SloLedger::default();
        l.record_arrival(true);
        l.record_arrival(false);
        l.record_departure();
        l.record_displacements(3);
        l.record_reconcile();
        assert_eq!((l.arrivals(), l.admitted(), l.departures()), (2, 1, 1));
        assert_eq!((l.displacements(), l.reconciles()), (3, 1));
    }

    #[test]
    fn migrations_are_charged_as_planned_churn() {
        let mut l = SloLedger::default();
        l.record_replacement(0.5);
        l.record_migration(0.2);
        l.record_migration(0.3);
        assert_eq!(l.migrations(), 2);
        // Migrations are churn too, but carry no reaction latency (they
        // are planned, not disruption responses).
        assert_eq!(l.placement_churn(), 3);
        assert_eq!(l.reaction_latencies().len(), 1);
        assert!((l.migration_displaced_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sheds_and_deferrals_are_charged() {
        let mut l = SloLedger::default();
        l.record_arrival(true);
        l.record_shed();
        l.record_shed();
        l.record_deferrals(3);
        // A shed request is an arrival that was never admitted.
        assert_eq!((l.arrivals(), l.admitted()), (3, 1));
        assert_eq!(l.sheds(), 2);
        assert_eq!(l.deferrals(), 3);
    }
}
