//! The SPARCLE **online churn runtime**: an event-driven control plane
//! that owns a [`sparcle_core::SparcleSystem`] and drives it through a
//! deterministic simulated timeline of
//!
//! * application **arrivals** (consumed from the lazy
//!   [`sparcle_workloads::ArrivalEvents`] iterators) and exponential
//!   hold-time **departures**,
//! * network-element **failures and recoveries** (the same
//!   [`sparcle_sim::ElementStateStream`] epochs the Figure-10 batch
//!   study samples), and
//! * background **capacity fluctuation** steps
//!   ([`sparcle_sim::FluctuationModel`]).
//!
//! The paper treats SPARCLE as an *online* scheduler — applications
//! "arrive over time" (§III-A), placements never move *implicitly*, and
//! admission reacts to the network as it is *now*. The batch experiments
//! elsewhere in this workspace study each mechanism in isolation; this
//! crate closes the loop: disruptions displace applications, a pluggable
//! [`ReconcilePolicy`] decides the order in which they are re-placed
//! after a configurable control-plane delay, and an [`SloLedger`]
//! integrates the damage (GR violation-seconds, BE delivered-rate,
//! reaction latency, placement churn) between events.
//!
//! Planned moves are the one sanctioned exception: the optional
//! [`defrag`] plane periodically probes placed applications with
//! rollback-only what-if migrations
//! ([`sparcle_core::SystemTxn::migrate`]) and commits the net-positive
//! ones under a bounded displaced-seconds-per-epoch budget, charged to
//! the ledger as deliberate churn.
//!
//! Everything is driven off the deterministic
//! [`sparcle_sim::des::EventQueue`]: the same seeds produce a
//! byte-identical `runtime_*` telemetry event log across runs *and
//! across γ-evaluator thread counts* (`SystemConfig::assigner_threads`).
//!
//! Long runs are watched from inside the timeline by the [`monitor`]
//! module: a periodic monitor-tick event folds the ledger and the state
//! core's work counters into sim-time sliding windows, evaluates
//! burn-rate/degradation detectors, and emits `monitor_*` telemetry
//! events (and an optional Prometheus-style metrics file) with the same
//! byte-identical determinism guarantee.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod defrag;
pub mod ledger;
pub mod monitor;
pub mod policy;
pub mod runtime;

pub use cost::SolveCostModel;
pub use defrag::{DefragConfig, Defragmenter};
pub use ledger::SloLedger;
pub use monitor::{
    AlertRules, AlertTransition, Monitor, MonitorConfig, MonitorSample, TickInput, ALERT_RULES,
};
pub use policy::ReconcilePolicy;
pub use runtime::{ChurnEvent, FluctuationConfig, PendingApp, RuntimeConfig, SparcleRuntime};
