//! The background **defragmentation re-optimizer** (DESIGN.md §15):
//! bookkeeping for the runtime's periodic migration pass.
//!
//! Long churn runs fragment the network: every failure, recovery, and
//! capacity step re-places applications on whatever paths were best *at
//! that moment*, so after enough churn many placements sit on paths the
//! current capacities no longer favour. The paper's no-migration
//! constraint means admission alone can never repair this — only an
//! explicit, planned move can ([`sparcle_core::SystemTxn::migrate`]).
//!
//! The defragmenter is deliberately split in two:
//!
//! * the **pass itself** lives in the runtime event loop (a
//!   [`crate::ChurnEvent::DefragTick`] handler) because it needs the
//!   live system, the arrival-index maps, and the trace handle;
//! * this module owns the **accounting**: the writer cost model gating
//!   (a pass only starts when the modeled writer is idle, and a
//!   committed pass occupies it for
//!   [`SolveCostModel::batch_cost`]`(moves)` — the same currency the
//!   admission service charges itself per PR 8), the per-epoch
//!   displaced-seconds budget, and the pass/probe/move counters the
//!   differential and budget tests assert on.
//!
//! Everything here is pure state-in/state-out on simulated time; a run
//! with `defrag: None` never constructs a [`Defragmenter`] and is
//! byte-identical to a run built before this plane existed.

use crate::cost::SolveCostModel;

/// Tunables of the background defragmentation pass.
#[derive(Debug, Clone)]
pub struct DefragConfig {
    /// Simulated seconds between defragmentation passes. One period is
    /// also one **budget epoch**: every pass starts with a fresh
    /// [`Self::budget_per_epoch`] allowance.
    pub period: f64,
    /// Displaced-seconds of planned unavailability the defragmenter may
    /// spend per epoch. Each committed move consumes
    /// [`Self::move_cost`]; the pass stops selecting moves when the
    /// remaining allowance cannot cover another one.
    pub budget_per_epoch: f64,
    /// Modeled displaced-seconds of unavailability charged to the
    /// [`crate::SloLedger`] per committed move (the app is briefly
    /// off-path while its placement switches).
    pub move_cost: f64,
    /// Minimum total-BE-delivered-rate improvement a move must show (at
    /// probe time *and* again at commit time) to be worth its churn.
    pub min_gain: f64,
    /// Writer cost model: a pass that commits `n` moves occupies the
    /// modeled writer for `batch_cost(n)` sim-seconds; a tick that lands
    /// while the writer is still busy skips its pass entirely.
    pub solve_cost: SolveCostModel,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            period: 5.0,
            budget_per_epoch: 1.0,
            move_cost: 0.25,
            min_gain: 1e-9,
            solve_cost: SolveCostModel::default(),
        }
    }
}

/// Accounting state of the background defragmenter: writer-busy
/// horizon, per-epoch budget, and the counters
/// (passes/skips/probes/moves) the budget invariant is asserted from.
#[derive(Debug, Clone)]
pub struct Defragmenter {
    config: DefragConfig,
    /// Simulated time the modeled writer becomes idle again.
    writer_free_at: f64,
    passes: u64,
    skipped: u64,
    probes: u64,
    moves: u64,
}

impl Defragmenter {
    /// Builds the accounting state.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive period or move cost, or a negative
    /// budget or gain threshold.
    pub fn new(config: DefragConfig) -> Self {
        assert!(
            config.period.is_finite() && config.period > 0.0,
            "defrag period must be positive"
        );
        assert!(
            config.budget_per_epoch >= 0.0,
            "defrag budget must be non-negative"
        );
        assert!(config.move_cost > 0.0, "defrag move cost must be positive");
        assert!(
            config.min_gain >= 0.0,
            "defrag min gain must be non-negative"
        );
        Defragmenter {
            config,
            writer_free_at: 0.0,
            passes: 0,
            skipped: 0,
            probes: 0,
            moves: 0,
        }
    }

    /// The configuration this defragmenter runs under.
    pub fn config(&self) -> &DefragConfig {
        &self.config
    }

    /// `true` when the modeled writer is idle at `t` — the precondition
    /// for starting a pass.
    pub fn writer_idle(&self, t: f64) -> bool {
        t >= self.writer_free_at
    }

    /// Records a tick that skipped its pass (writer busy or a reconcile
    /// owed).
    pub(crate) fn note_skip(&mut self) {
        self.skipped += 1;
    }

    /// Starts one pass and returns its fresh epoch budget in
    /// displaced-seconds.
    pub(crate) fn begin_pass(&mut self) -> f64 {
        self.passes += 1;
        self.config.budget_per_epoch
    }

    /// Records `n` rollback-only what-if probes.
    pub(crate) fn note_probes(&mut self, n: u64) {
        self.probes += n;
    }

    /// Records the committed moves of a pass ending at `t`, occupying
    /// the modeled writer for `batch_cost(moves)`. Probe-only passes
    /// (zero moves) are modeled as snapshot reads and leave the writer
    /// idle.
    pub(crate) fn note_moves(&mut self, t: f64, moves: u64) {
        self.moves += moves;
        if moves > 0 {
            self.writer_free_at = t + self.config.solve_cost.batch_cost(moves as usize);
        }
    }

    /// Passes that ran (ticks that passed the idle/backlog gate).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Ticks that skipped their pass.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Rollback-only migration probes issued.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Planned migrations committed.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// The simulated time the modeled writer becomes idle.
    pub fn writer_free_at(&self) -> f64 {
        self.writer_free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_gating_follows_the_cost_model() {
        let mut d = Defragmenter::new(DefragConfig::default());
        assert!(d.writer_idle(0.0));
        let budget = d.begin_pass();
        assert_eq!(budget, 1.0);
        d.note_moves(5.0, 3);
        // 0.05 fixed + 3 × 0.01 marginal.
        assert!((d.writer_free_at() - 5.08).abs() < 1e-12);
        assert!(!d.writer_idle(5.05));
        assert!(d.writer_idle(5.08));
        assert_eq!((d.passes(), d.moves()), (1, 3));
    }

    #[test]
    fn probe_only_passes_leave_the_writer_idle() {
        let mut d = Defragmenter::new(DefragConfig::default());
        d.begin_pass();
        d.note_probes(1);
        d.note_moves(5.0, 0);
        assert!(d.writer_idle(5.0));
        assert_eq!((d.probes(), d.moves(), d.skipped()), (1, 0, 0));
        d.note_skip();
        assert_eq!(d.skipped(), 1);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        Defragmenter::new(DefragConfig {
            period: 0.0,
            ..DefragConfig::default()
        });
    }
}
