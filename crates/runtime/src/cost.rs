//! The shared **writer cost model**: how long the single system writer
//! is busy after one batched solve, in simulated seconds.
//!
//! Two control planes charge themselves with this model. The admission
//! service (`sparcle-service`) holds the writer for
//! `fixed + per_request × batch_size` after each batched admission
//! commit and defers windows whose boundary falls inside that interval
//! (backpressure). The background defragmenter
//! ([`crate::defrag::Defragmenter`]) uses the same model for its
//! re-optimization passes — a pass only *starts* when the modeled
//! writer is idle, and a committed pass occupies the writer for
//! `fixed + per_request × moves`, so planned migrations can never
//! starve admission work they share a writer with.

/// Simulated cost of one batched solve, in sim-seconds: the writer is
/// busy for `fixed + per_request × batch_size` after each commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveCostModel {
    /// Per-solve fixed cost (transaction + warm solve setup).
    pub fixed: f64,
    /// Marginal cost per request in the batch (path search).
    pub per_request: f64,
}

impl SolveCostModel {
    /// Writer-busy seconds charged for one batch of `batch_size` items.
    pub fn batch_cost(&self, batch_size: usize) -> f64 {
        self.fixed + self.per_request * batch_size as f64
    }
}

impl Default for SolveCostModel {
    fn default() -> Self {
        SolveCostModel {
            fixed: 0.05,
            per_request: 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_cost_is_affine() {
        let m = SolveCostModel::default();
        assert!((m.batch_cost(0) - 0.05).abs() < 1e-12);
        assert!((m.batch_cost(10) - 0.15).abs() < 1e-12);
    }
}
