//! Reconcile policies: the order in which displaced applications are
//! re-placed.
//!
//! When a disruption displaces several applications at once, the first
//! one re-placed gets the pick of the residual capacity — so the order
//! *is* the policy. All orderings are deterministic: ties always fall
//! back to the arrival index.

use crate::runtime::PendingApp;

/// The order a reconcile pass works through the displaced queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconcilePolicy {
    /// Displacement order — first displaced, first re-placed.
    #[default]
    Fifo,
    /// Descending scheduling weight: every Guaranteed-Rate application
    /// before any Best-Effort one, BE ties broken by the
    /// proportional-fair priority `P_J`.
    Priority,
    /// Descending displaced rate (the γ-impact heuristic): the
    /// application that was carrying the most rate — and therefore
    /// loses the most while unplaced — goes first.
    GammaImpact,
    /// Descending *probed* rate: before ordering, the runtime submits
    /// each displaced application inside a rollback-only transaction
    /// and reads the rate it would actually get on the current
    /// capacities, so the ordering reflects the post-disruption
    /// network rather than pre-disruption history. Requires the
    /// transactional probe in `SparcleRuntime`; [`Self::order`] alone
    /// falls back to the γ-impact ordering.
    GammaProbe,
}

impl ReconcilePolicy {
    /// Stable label used in telemetry events and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReconcilePolicy::Fifo => "fifo",
            ReconcilePolicy::Priority => "priority",
            ReconcilePolicy::GammaImpact => "gamma",
            ReconcilePolicy::GammaProbe => "gamma-probe",
        }
    }

    /// Sorts `pending` into this policy's re-placement order. The input
    /// arrives in displacement order; sorting is stable with an explicit
    /// arrival-index tiebreak, so the result is deterministic.
    pub fn order(&self, pending: &mut [PendingApp]) {
        match self {
            ReconcilePolicy::Fifo => {}
            ReconcilePolicy::Priority => pending.sort_by(|a, b| {
                b.displaced
                    .priority_rank()
                    .total_cmp(&a.displaced.priority_rank())
                    .then(a.index.cmp(&b.index))
            }),
            // Without a system to probe against, GammaProbe degrades to
            // the historical-rate ordering.
            ReconcilePolicy::GammaImpact | ReconcilePolicy::GammaProbe => {
                pending.sort_by(|a, b| {
                    b.displaced
                        .displaced_rate()
                        .total_cmp(&a.displaced.displaced_rate())
                        .then(a.index.cmp(&b.index))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ReconcilePolicy::Fifo.label(), "fifo");
        assert_eq!(ReconcilePolicy::Priority.label(), "priority");
        assert_eq!(ReconcilePolicy::GammaImpact.label(), "gamma");
        assert_eq!(ReconcilePolicy::GammaProbe.label(), "gamma-probe");
        assert_eq!(ReconcilePolicy::default(), ReconcilePolicy::Fifo);
    }
}
