//! Property-based tests for SPARCLE's core algorithms.

use proptest::prelude::*;
use sparcle_core::widest_path::{
    csr_widest_path, widest_path, widest_path_brute_force, BucketQueue,
};
use sparcle_core::{DisplacedApp, DynamicRankingAssigner, PlacementEngine, SparcleSystem};
use sparcle_model::{
    Application, CapacityMap, CsrNetwork, LoadMap, NcpId, Network, NetworkBuilder, QoeClass,
    ResourceVec, TaskGraphBuilder,
};

/// Strategy: a random connected network of `n` NCPs — a spanning spine
/// plus random extra links, heterogeneous capacities.
fn arb_network(max_n: usize) -> impl Strategy<Value = Network> {
    (3..=max_n)
        .prop_flat_map(|n| {
            let cpus = proptest::collection::vec(10.0f64..1000.0, n);
            let spine_bw = proptest::collection::vec(5.0f64..500.0, n - 1);
            let extra = proptest::collection::vec((0..n, 0..n, 5.0f64..500.0), 0..n);
            (Just(n), cpus, spine_bw, extra)
        })
        .prop_map(|(_n, cpus, spine_bw, extra)| {
            let mut b = NetworkBuilder::new();
            let ids: Vec<NcpId> = cpus
                .iter()
                .enumerate()
                .map(|(i, &c)| b.add_ncp(format!("n{i}"), ResourceVec::cpu(c)))
                .collect();
            for (i, w) in ids.windows(2).enumerate() {
                b.add_link(format!("spine{i}"), w[0], w[1], spine_bw[i])
                    .expect("valid");
            }
            for (k, (x, y, bw)) in extra.into_iter().enumerate() {
                if x != y {
                    b.add_link(format!("extra{k}"), ids[x], ids[y], bw)
                        .expect("valid");
                }
            }
            b.build().expect("connected by construction")
        })
}

/// Strategy: like [`arb_network`] but larger (up to 12 NCPs) and with a
/// slice of zero-capacity links mixed in — the degenerate widths the
/// width formula maps to 0 must round-trip through every evaluator path.
fn arb_network_degenerate(max_n: usize) -> impl Strategy<Value = Network> {
    (4..=max_n)
        .prop_flat_map(|n| {
            let cpus = proptest::collection::vec(10.0f64..1000.0, n);
            // Roughly one spine link in five is dead (zero capacity).
            let spine_bw = proptest::collection::vec(
                prop_oneof![
                    Just(0.0f64),
                    5.0f64..500.0,
                    5.0f64..500.0,
                    5.0f64..500.0,
                    5.0f64..500.0
                ],
                n - 1,
            );
            let extra = proptest::collection::vec(
                (0..n, 0..n, prop_oneof![Just(0.0f64), 5.0f64..500.0]),
                0..n,
            );
            (Just(n), cpus, spine_bw, extra)
        })
        .prop_map(|(_n, cpus, spine_bw, extra)| {
            let mut b = NetworkBuilder::new();
            let ids: Vec<NcpId> = cpus
                .iter()
                .enumerate()
                .map(|(i, &c)| b.add_ncp(format!("n{i}"), ResourceVec::cpu(c)))
                .collect();
            for (i, w) in ids.windows(2).enumerate() {
                b.add_link(format!("spine{i}"), w[0], w[1], spine_bw[i])
                    .expect("valid");
            }
            for (k, (x, y, bw)) in extra.into_iter().enumerate() {
                if x != y {
                    b.add_link(format!("extra{k}"), ids[x], ids[y], bw)
                        .expect("valid");
                }
            }
            b.build().expect("connected by construction")
        })
}

/// Strategy: a random pipeline application pinned to the first and last
/// NCP of a network with at least `stages + 2` CTs.
fn arb_pipeline(max_stages: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..=max_stages).prop_flat_map(|s| {
        (
            proptest::collection::vec(1.0f64..100.0, s),
            proptest::collection::vec(1.0f64..100.0, s + 1),
        )
    })
}

fn pipeline_app(cpu: &[f64], bits: &[f64], src: NcpId, dst: NcpId) -> Application {
    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("src", ResourceVec::new());
    let mut prev = s;
    for (i, &c) in cpu.iter().enumerate() {
        let ct = tb.add_ct(format!("c{i}"), ResourceVec::cpu(c));
        tb.add_tt(format!("t{i}"), prev, ct, bits[i]).unwrap();
        prev = ct;
    }
    let t = tb.add_ct("sink", ResourceVec::new());
    tb.add_tt("tlast", prev, t, bits[cpu.len()]).unwrap();
    Application::new(
        tb.build().unwrap(),
        QoeClass::best_effort(1.0),
        [(s, src), (t, dst)],
    )
    .unwrap()
}

/// Largest relative per-entry difference between two capacity maps.
///
/// Needed because `subtract_load` clamps at zero and f64 subtraction is
/// order-sensitive: rebuilding the residual with the GR apps in a
/// different order can drift by a few ulps even when no load leaked.
fn residual_rel_diff(net: &Network, a: &CapacityMap, b: &CapacityMap) -> f64 {
    let mut worst = 0.0f64;
    for element in net.elements() {
        let (va, vb) = (a.element(element), b.element(element));
        for (kind, _) in va.iter().chain(vb.iter()) {
            let (x, y) = (va.amount(kind), vb.amount(kind));
            let denom = x.abs().max(y.abs()).max(1.0);
            worst = worst.max((x - y).abs() / denom);
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The modified Dijkstra agrees with the exhaustive widest path on
    /// random networks and loads.
    #[test]
    fn widest_path_matches_brute_force(
        net in arb_network(7),
        bits in 0.0f64..50.0,
        loads in proptest::collection::vec(0.0f64..100.0, 20),
    ) {
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for (i, link) in net.link_ids().enumerate() {
            load.add_tt_load(link, loads[i % loads.len()]);
        }
        let from = NcpId::new(0);
        let to = NcpId::new((net.ncp_count() - 1) as u32);
        let fast = widest_path(&net, &caps, &load, bits, from, to);
        let slow = widest_path_brute_force(&net, &caps, &load, bits, from, to);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                let rel = if s.width.is_finite() && s.width > 0.0 {
                    (f.width - s.width).abs() / s.width
                } else if f.width == s.width {
                    0.0
                } else {
                    1.0
                };
                prop_assert!(rel < 1e-9, "width {} vs {}", f.width, s.width);
            }
            (None, None) => {}
            other => prop_assert!(false, "reachability mismatch {other:?}"),
        }
    }

    /// Algorithm 2 always produces a complete, valid placement whose
    /// reported rate matches independent recomputation.
    #[test]
    fn assignment_is_always_valid(
        net in arb_network(8),
        (cpu, bits) in arb_pipeline(5),
        src in 0u32..8,
        dst in 0u32..8,
    ) {
        let n = net.ncp_count() as u32;
        let app = pipeline_app(&cpu, &bits, NcpId::new(src % n), NcpId::new(dst % n));
        let caps = net.capacity_map();
        let path = DynamicRankingAssigner::new()
            .assign(&app, &net, &caps)
            .expect("connected networks are always assignable");
        prop_assert!(path.placement.is_complete());
        path.placement.validate(app.graph(), &net).expect("valid");
        let recomputed = path.placement.bottleneck_rate(app.graph(), &net, &caps);
        prop_assert!((path.rate - recomputed).abs() <= 1e-9 * recomputed.max(1.0));
        prop_assert!(path.rate > 0.0);
    }

    /// For a single unplaced CT whose reachable CTs are all direct
    /// neighbors (a one-stage pipeline), γ equals the bottleneck rate
    /// obtained by actually committing that choice — eq. (2) is exact
    /// when no TT remains unrouted.
    #[test]
    fn gamma_is_exact_for_final_placement(
        net in arb_network(6),
        cpu in 1.0f64..100.0,
        bits_in in 1.0f64..100.0,
        bits_out in 1.0f64..100.0,
        host in 0u32..6,
    ) {
        let n = net.ncp_count() as u32;
        let app = pipeline_app(&[cpu], &[bits_in, bits_out], NcpId::new(0), NcpId::new(n - 1));
        let caps = net.capacity_map();
        let mut engine = PlacementEngine::new(&app, &net, &caps).expect("pins routable");
        let ct = engine.unplaced().next().expect("one unplaced CT");
        let host = NcpId::new(host % n);
        if let Some(gamma) = engine.gamma(ct, host) {
            engine.commit(ct, host).expect("gamma says routable");
            let rate_now = engine.capacities().bottleneck_rate(engine.load());
            // γ can be optimistic when the two TTs contend for the same
            // link (eq. (2) evaluates each path in isolation), so the
            // committed rate never exceeds γ but may fall below it.
            prop_assert!(
                rate_now <= gamma + 1e-9 * gamma.clamp(1.0, 1e12),
                "rate {rate_now} exceeded gamma {gamma}"
            );
        }
    }

    /// Multipath extraction never oversubscribes: after subtracting all
    /// extracted paths at their rates from fresh capacities, nothing is
    /// negative (guaranteed by clamping) and the total extracted rate on
    /// any single element never exceeds its capacity by more than
    /// rounding.
    #[test]
    fn multipath_respects_capacities(
        net in arb_network(6),
        (cpu, bits) in arb_pipeline(3),
    ) {
        let n = net.ncp_count() as u32;
        let app = pipeline_app(&cpu, &bits, NcpId::new(0), NcpId::new(n - 1));
        let caps = net.capacity_map();
        let (paths, _) = sparcle_core::assign_multipath(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &caps,
            5,
            1e-9,
        );
        // Accumulate the total load×rate per element and compare with
        // the original capacity.
        let mut total = LoadMap::zeroed(&net);
        for p in &paths {
            total.merge_scaled(&p.load, p.rate);
        }
        let full = CapacityMap::full(&net);
        for ncp in net.ncp_ids() {
            for (kind, used) in total.ncp(ncp).iter() {
                let cap = full.ncp(ncp).amount(kind);
                prop_assert!(used <= cap * (1.0 + 1e-6) + 1e-9, "{used} > {cap}");
            }
        }
        for link in net.link_ids() {
            let used = total.link(link);
            let cap = full.link(link);
            prop_assert!(used <= cap * (1.0 + 1e-6) + 1e-9, "{used} > {cap}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity conservation under churn: after an arbitrary sequence of
    /// admissions, departures, and displace/readmit round-trips, the
    /// GR-residual `CapacityMap` is *exactly* (bitwise) the one a fresh
    /// system reaches by replaying only the survivors' placements — no
    /// load leaks out of `remove`, no phantom capacity leaks in.
    #[test]
    fn churn_conserves_capacity(
        net in arb_network(6),
        ops in proptest::collection::vec(
            (0u8..4, 0usize..64, 1.0f64..20.0, 1.0f64..20.0, 0.1f64..1.5),
            1..40,
        ),
    ) {
        let n = net.ncp_count() as u32;
        let mut sys = SparcleSystem::new(net.clone());
        for (kind, pick, cpu, bits, min_rate) in ops {
            match kind {
                0 => {
                    // Best-Effort admission (may be rejected; fine).
                    let app = pipeline_app(&[cpu], &[bits, bits], NcpId::new(0), NcpId::new(n - 1));
                    let _ = sys.submit(app).expect("well-formed app");
                }
                1 => {
                    // Guaranteed-Rate admission.
                    let app = pipeline_app(&[cpu], &[bits, bits], NcpId::new(0), NcpId::new(n - 1))
                        .with_qoe(QoeClass::guaranteed_rate(min_rate, 0.5))
                        .expect("valid qoe");
                    let _ = sys.submit(app).expect("well-formed app");
                }
                2 => {
                    // Departure of a random admitted app.
                    let ids = sys.app_ids();
                    if !ids.is_empty() {
                        prop_assert!(sys.remove(ids[pick % ids.len()]));
                    }
                }
                _ => {
                    // Displace + readmit round-trip: must restore the
                    // residual exactly for GR apps.
                    let ids = sys.app_ids();
                    if !ids.is_empty() {
                        let id = ids[pick % ids.len()];
                        let before = sys.gr_residual().clone();
                        let displaced = sys.displace(id).expect("listed id");
                        let was_gr = displaced.is_gr();
                        let adm = sys.readmit(displaced);
                        prop_assert!(adm.is_admitted(), "round-trip readmit failed: {adm:?}");
                        if was_gr {
                            // Re-appending the app changes the f64
                            // subtraction order, so allow ulp drift.
                            let drift = residual_rel_diff(&net, sys.gr_residual(), &before);
                            prop_assert!(
                                drift < 1e-9,
                                "GR round-trip moved the residual by {drift:e}"
                            );
                        }
                    }
                }
            }
        }
        // Replay only the survivors into a fresh system, in the same
        // order; the residual must be bitwise identical.
        let mut fresh = SparcleSystem::new(net);
        for gr in sys.gr_apps().to_vec() {
            let adm = fresh.readmit(DisplacedApp::Gr(gr));
            prop_assert!(adm.is_admitted(), "survivor replay rejected: {adm:?}");
        }
        for be in sys.be_apps().to_vec() {
            let adm = fresh.readmit(DisplacedApp::Be(be));
            prop_assert!(adm.is_admitted(), "survivor replay rejected: {adm:?}");
        }
        prop_assert_eq!(
            sys.gr_residual(), fresh.gr_residual(),
            "load leaked: residual differs from the canonical survivor replay"
        );
    }

    /// The modified Dijkstra agrees with the exhaustive widest path on
    /// bigger (up to 12-NCP) graphs carrying nonzero pre-existing load
    /// and zero-capacity links — the degenerate widths must not confuse
    /// either search, and the returned optimum must be *exactly* equal
    /// (both are pure max-min folds over the same link widths, so no
    /// tolerance is needed).
    #[test]
    fn widest_path_matches_brute_force_with_degenerate_links(
        net in arb_network_degenerate(12),
        bits in 0.5f64..50.0,
        loads in proptest::collection::vec(0.5f64..100.0, 30),
        from in 0u32..12,
        to in 0u32..12,
    ) {
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for (i, link) in net.link_ids().enumerate() {
            load.add_tt_load(link, loads[i % loads.len()]);
        }
        let n = net.ncp_count() as u32;
        let (from, to) = (NcpId::new(from % n), NcpId::new(to % n));
        let fast = widest_path(&net, &caps, &load, bits, from, to);
        let slow = widest_path_brute_force(&net, &caps, &load, bits, from, to);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                prop_assert_eq!(
                    f.width.to_bits(), s.width.to_bits(),
                    "width {} vs brute-force {}", f.width, s.width
                );
            }
            (None, None) => {}
            other => prop_assert!(false, "reachability mismatch {other:?}"),
        }
    }

    /// The γ-cache never serves a stale value: at every Algorithm-2 step,
    /// on every (unplaced CT, host) probe, the cached batched evaluator
    /// is bit-identical to the uncached reference — including agreement
    /// on unroutability — and the committed `rank_round` pick carries the
    /// reference γ.
    #[test]
    fn gamma_cache_is_never_stale(
        net in arb_network(8),
        (cpu, bits) in arb_pipeline(5),
        probes in proptest::collection::vec((0usize..64, 0usize..64), 16),
        threads in 1usize..4,
    ) {
        let n = net.ncp_count() as u32;
        let app = pipeline_app(&cpu, &bits, NcpId::new(0), NcpId::new(n - 1));
        let caps = net.capacity_map();
        let mut engine = PlacementEngine::new(&app, &net, &caps).expect("pins routable");
        loop {
            let unplaced: Vec<_> = engine.unplaced().collect();
            if unplaced.is_empty() {
                break;
            }
            for &(ci, hi) in &probes {
                let ct = unplaced[ci % unplaced.len()];
                let host = NcpId::new((hi % net.ncp_count()) as u32);
                let fresh = engine.gamma(ct, host);
                let cached = engine.gamma_batched(ct, host);
                match (fresh, cached) {
                    (Some(f), Some(c)) => prop_assert_eq!(
                        f.to_bits(), c.to_bits(),
                        "stale cache for ({:?}, {:?}): {} vs fresh {}", ct, host, c, f
                    ),
                    (None, None) => {}
                    other => prop_assert!(false, "routability mismatch {other:?}"),
                }
            }
            match engine.rank_round(threads) {
                Ok(Some((ct, host, g))) => {
                    let fresh = engine.gamma(ct, host).expect("picked host is routable");
                    prop_assert_eq!(fresh.to_bits(), g.to_bits());
                    engine.commit(ct, host).expect("picked host is routable");
                }
                Ok(None) => prop_assert!(false, "rank_round saw no unplaced CTs"),
                Err(e) => prop_assert!(false, "rank_round failed: {e}"),
            }
        }
        engine.finish().expect("complete placement validates");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bucketed CSR Dijkstra is **exactly** the legacy heap Dijkstra:
    /// on random loaded graphs — including parallel edges (`arb_network`
    /// freely duplicates endpoint pairs) — both searches return the same
    /// reachability verdict, a bit-identical width, and the *same link
    /// sequence*. Width quantization spreads entries across buckets but
    /// each bucket is an exact heap, so the argmax path choice can never
    /// change.
    #[test]
    fn csr_widest_path_is_exactly_the_legacy_search(
        net in arb_network(10),
        bits in 0.0f64..50.0,
        loads in proptest::collection::vec(0.0f64..100.0, 24),
        from in 0u32..10,
        to in 0u32..10,
    ) {
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for (i, link) in net.link_ids().enumerate() {
            load.add_tt_load(link, loads[i % loads.len()]);
        }
        let n = net.ncp_count() as u32;
        let (from, to) = (NcpId::new(from % n), NcpId::new(to % n));
        let legacy = widest_path(&net, &caps, &load, bits, from, to);
        let csr = csr_widest_path(net.csr(), &caps, &load, bits, from, to);
        match (legacy, csr) {
            (Some(l), Some(c)) => {
                prop_assert_eq!(
                    l.width.to_bits(), c.width.to_bits(),
                    "CSR width {} vs legacy {}", c.width, l.width
                );
                prop_assert_eq!(l.links, c.links, "witness routes diverged");
            }
            (None, None) => {}
            other => prop_assert!(false, "reachability mismatch {other:?}"),
        }
    }

    /// Same exactness on degenerate graphs: zero-capacity links produce
    /// zero-width path candidates, which quantize into bucket 0 and must
    /// still pop in legacy heap order.
    #[test]
    fn csr_widest_path_is_exact_with_zero_width_links(
        net in arb_network_degenerate(12),
        bits in 0.5f64..50.0,
        loads in proptest::collection::vec(0.5f64..100.0, 30),
        from in 0u32..12,
        to in 0u32..12,
    ) {
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for (i, link) in net.link_ids().enumerate() {
            load.add_tt_load(link, loads[i % loads.len()]);
        }
        let n = net.ncp_count() as u32;
        let (from, to) = (NcpId::new(from % n), NcpId::new(to % n));
        let legacy = widest_path(&net, &caps, &load, bits, from, to);
        let csr = csr_widest_path(net.csr(), &caps, &load, bits, from, to);
        match (legacy, csr) {
            (Some(l), Some(c)) => {
                prop_assert_eq!(l.width.to_bits(), c.width.to_bits());
                prop_assert_eq!(l.links, c.links, "witness routes diverged");
            }
            (None, None) => {}
            other => prop_assert!(false, "reachability mismatch {other:?}"),
        }
    }

    /// The bucketed queue pops exactly the legacy `BinaryHeap` order:
    /// width descending, node id descending on width ties — even with
    /// duplicate widths, zeros, and infinities, and with pushes
    /// interleaved between pops (monotone non-increasing, as Dijkstra
    /// produces them).
    #[test]
    fn bucket_queue_pop_order_is_the_legacy_heap_order(
        entries in proptest::collection::vec(
            (prop_oneof![Just(0.0f64), Just(f64::INFINITY), 1e-300f64..1e300], 0u32..32),
            1..64,
        ),
    ) {
        let mut queue = BucketQueue::new();
        for &(w, node) in &entries {
            queue.push(w, NcpId::new(node));
        }
        let mut expected: Vec<(u64, u32)> = entries
            .iter()
            .map(|&(w, node)| (w.to_bits(), node))
            .collect();
        // Non-negative f64 bit patterns order like the floats, so this
        // is exactly (width desc, node desc) — the legacy heap order.
        expected.sort_unstable_by(|a, b| b.cmp(a));
        let mut popped = Vec::new();
        while let Some((w, node)) = queue.pop() {
            popped.push((w.to_bits(), node.as_u32()));
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(queue.is_empty());
    }

    /// CSR construction round-trips arbitrary topologies: element counts
    /// match, every forward arc list is the legacy `neighbors` order,
    /// every reverse arc is a real forward arc, and the SoA bandwidth
    /// mirror is bit-exact.
    #[test]
    fn csr_round_trips_arbitrary_topologies(net in arb_network_degenerate(12)) {
        let csr = CsrNetwork::build(&net);
        prop_assert_eq!(csr.ncp_count(), net.ncp_count());
        prop_assert_eq!(csr.link_count(), net.link_count());
        let mut forward_arcs = 0;
        for ncp in net.ncp_ids() {
            let (heads, links) = csr.out_arcs(ncp);
            let legacy: Vec<(u32, u32)> = net
                .neighbors(ncp)
                .map(|(link, peer)| (peer.as_u32(), link.as_u32()))
                .collect();
            let flat: Vec<(u32, u32)> = heads.iter().copied().zip(links.iter().copied()).collect();
            prop_assert_eq!(flat, legacy, "forward arcs of {:?} diverged", ncp);
            forward_arcs += heads.len();
        }
        prop_assert_eq!(forward_arcs, csr.arc_count());
        // Reverse arcs: grouped by head, each (tail, link) a real
        // forward arc, and the total count matches.
        let mut reverse_arcs = 0;
        for ncp in net.ncp_ids() {
            let (tails, links) = csr.in_arcs(ncp);
            for (&tail, &link) in tails.iter().zip(links) {
                let (heads, out_links) = csr.out_arcs(NcpId::new(tail));
                let found = heads
                    .iter()
                    .zip(out_links)
                    .any(|(&h, &l)| h == ncp.as_u32() && l == link);
                prop_assert!(found, "reverse arc {tail}->{:?} via {link} has no forward twin", ncp);
            }
            reverse_arcs += tails.len();
        }
        prop_assert_eq!(reverse_arcs, csr.arc_count());
        for link in net.link_ids() {
            prop_assert_eq!(
                csr.link_bandwidth(link).to_bits(),
                net.link(link).bandwidth().to_bits(),
                "bandwidth mirror diverged for {:?}", link
            );
        }
    }
}

/// A committed operation to replay on a fresh system when checking that
/// rolled-back transactions are invisible.
enum ReplayOp {
    Submit(std::sync::Arc<Application>),
    Displace(sparcle_model::AppId),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved transaction commit/rollback leaves the system state
    /// **bitwise** equal to a fresh system replaying only the committed
    /// operations. Rollbacks — including multi-operation what-if probes
    /// that displace one application and submit another — must be
    /// perfectly invisible: the GR residual, the admitted id sequence,
    /// every BE allocated rate, and the id counter all match the
    /// canonical replay, because undo restores exact rate snapshots and
    /// re-derives residual elements through the same canonical fold the
    /// fresh admission path uses.
    #[test]
    fn rolled_back_transactions_are_invisible(
        net in arb_network(6),
        ops in proptest::collection::vec(
            (0u8..4, 0usize..64, 1.0f64..20.0, 1.0f64..20.0, 0.1f64..1.5, 0u8..2),
            1..28,
        ),
    ) {
        use std::sync::Arc;
        let n = net.ncp_count() as u32;
        let mut sys = SparcleSystem::new(net.clone());
        let mut committed: Vec<ReplayOp> = Vec::new();
        for (kind, pick, cpu, bits, min_rate, commit) in ops {
            let commit = commit == 1;
            match kind {
                0 | 1 => {
                    // Single-op transaction: one BE or GR submission,
                    // committed or rolled back.
                    let app = pipeline_app(&[cpu], &[bits, bits], NcpId::new(0), NcpId::new(n - 1));
                    let app = if kind == 1 {
                        app.with_qoe(QoeClass::guaranteed_rate(min_rate, 0.5)).expect("valid qoe")
                    } else {
                        app
                    };
                    let app = Arc::new(app);
                    let mut txn = sys.begin();
                    let _ = txn.submit(app.clone()).expect("well-formed app");
                    if commit {
                        txn.commit();
                        committed.push(ReplayOp::Submit(app));
                    } else {
                        txn.rollback();
                    }
                }
                2 => {
                    // Single-op transaction: one displacement.
                    let ids = sys.app_ids();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[pick % ids.len()];
                    let mut txn = sys.begin();
                    prop_assert!(txn.displace(id));
                    if commit {
                        prop_assert_eq!(txn.commit().len(), 1);
                        committed.push(ReplayOp::Displace(id));
                    } else {
                        txn.rollback();
                    }
                }
                _ => {
                    // Multi-op transaction (the reconcile probe shape):
                    // displace an admitted app, then submit a new one,
                    // committed or rolled back as a unit.
                    let ids = sys.app_ids();
                    let app = Arc::new(pipeline_app(
                        &[cpu], &[bits, bits], NcpId::new(0), NcpId::new(n - 1),
                    ));
                    let mut txn = sys.begin();
                    let displaced = if ids.is_empty() {
                        None
                    } else {
                        let id = ids[pick % ids.len()];
                        prop_assert!(txn.displace(id));
                        Some(id)
                    };
                    let _ = txn.submit(app.clone()).expect("well-formed app");
                    if commit {
                        txn.commit();
                        if let Some(id) = displaced {
                            committed.push(ReplayOp::Displace(id));
                        }
                        committed.push(ReplayOp::Submit(app));
                    } else {
                        txn.rollback();
                    }
                }
            }
        }
        // Replay only the committed operations on a fresh system. If
        // every rollback was invisible, the two systems agree bitwise
        // at every step, so each replayed displacement finds its id.
        let mut fresh = SparcleSystem::new(net);
        for op in committed {
            match op {
                ReplayOp::Submit(app) => {
                    let _ = fresh.submit(app).expect("well-formed app");
                }
                ReplayOp::Displace(id) => {
                    prop_assert!(fresh.displace(id).is_some(), "replay lost id {id:?}");
                }
            }
        }
        prop_assert_eq!(
            sys.gr_residual(), fresh.gr_residual(),
            "rollback left a residual trace"
        );
        prop_assert_eq!(sys.app_ids(), fresh.app_ids(), "admitted id sequences differ");
        let rates: Vec<u64> =
            sys.be_apps().iter().map(|a| a.allocated_rate.to_bits()).collect();
        let fresh_rates: Vec<u64> =
            fresh.be_apps().iter().map(|a| a.allocated_rate.to_bits()).collect();
        prop_assert_eq!(rates, fresh_rates, "BE rates diverged from the canonical replay");
    }
}
