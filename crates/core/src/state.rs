//! The incrementally-maintained mutable state of a
//! [`SparcleSystem`](crate::SparcleSystem), and the undo machinery
//! behind its transactional mutation API.
//!
//! ## The canonical-state invariant
//!
//! At every transaction boundary, the derived state is a **pure
//! function** of the primary state:
//!
//! * `gr_residual` equals `current_capacities` minus every admitted GR
//!   reservation, folded in `gr_apps` vector order (each path's load
//!   subtracted with clamping at zero);
//! * `priority_loads` equals, per element, the sum of the priorities of
//!   the BE applications whose combined load touches that element,
//!   accumulated in `be_apps` vector order;
//! * the incremental constraint matrix equals
//!   `ConstraintSystem::from_loads` over the `be_apps` loads
//!   (maintained by [`sparcle_alloc::IncrementalConstraints`]).
//!
//! Incremental maintenance preserves these equalities **bitwise**, not
//! just approximately:
//!
//! * admissions extend the fold (subtract the new loads in path order —
//!   exactly the operations the canonical fold would append);
//! * removals and undos re-derive each *touched* element by replaying
//!   the canonical fold restricted to that element, using the
//!   per-element ops of [`CapacityMap`] that are bitwise identical to
//!   the dense ones;
//! * untouched elements keep their value, which is sound because
//!   subtracting a zero load is the bitwise identity on non-negative
//!   capacities (`(x − 0·r).max(0) = x`), so dropping a zero-load term
//!   from the fold cannot change it.
//!
//! [`StateMaintenance::Scratch`] replaces the per-element replays with
//! full rebuilds of the same folds — the reference the differential
//! suite (`tests/incremental_equivalence.rs`) compares against.

use crate::system::{DisplacedApp, PlacedBeApp, PlacedGrApp};
use sparcle_alloc::num::IncrementalConstraints;
use sparcle_alloc::predict::PriorityLoads;
use sparcle_model::{CapacityMap, Network, NetworkElement};

/// How the derived state (GR residual, priority loads, constraint
/// matrix) is kept in sync with the admitted applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateMaintenance {
    /// Delta-maintain: update only the elements an operation touches,
    /// replaying the canonical fold per element (bitwise identical to a
    /// full rebuild; see the module docs).
    #[default]
    Incremental,
    /// Rebuild the derived state from scratch on every mutation and
    /// solve — the slow reference path the differential suite compares
    /// the incremental path against.
    Scratch,
}

/// Counters describing the work the state core has done. Obtain via
/// [`crate::SparcleSystem::state_stats`].
///
/// All fields except [`Self::solve_nanos`] are deterministic functions
/// of the operation sequence; `solve_nanos` is wall-clock and must
/// never be exported into determinism-checked telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateStats {
    /// BE allocations solved (problem (4) or max-min).
    pub solves: u64,
    /// Solves that reused the previous rates via the solver's fast
    /// warm-start schedule.
    pub warm_solves: u64,
    /// Solves that ran the full cold barrier schedule.
    pub cold_solves: u64,
    /// Newton steps spent inside warm solves.
    pub inner_iters_warm: u64,
    /// Newton steps spent inside cold solves.
    pub inner_iters_cold: u64,
    /// Wall-clock nanoseconds spent in BE solves (including constraint
    /// refresh). **Not deterministic** — keep out of traced counters.
    pub solve_nanos: u64,
    /// Individual residual elements re-derived by the canonical
    /// per-element replay.
    pub residual_element_updates: u64,
    /// Full residual rebuilds (fluctuations, scratch mode, capacity
    /// restores).
    pub residual_full_recomputes: u64,
    /// Transactions committed.
    pub txn_commits: u64,
    /// Transactions rolled back (including what-if probes).
    pub txn_rollbacks: u64,
    /// γ-cache rows served without recomputation across every
    /// assignment the system ran (GR path collection and BE multipath
    /// extraction alike). Monotone work counters: like
    /// [`Self::txn_rollbacks`], rolled-back transactions keep the work
    /// they did.
    pub gamma_cache_hits: u64,
    /// γ-cache rows (re)computed across every assignment the system
    /// ran.
    pub gamma_cache_misses: u64,
}

/// The mutable state of a [`SparcleSystem`](crate::SparcleSystem):
/// admitted applications, current capacities, and the derived state
/// (GR residual, BE priority loads, incremental constraint matrix).
///
/// All mutation goes through [`crate::SystemTxn`] (obtained from
/// [`crate::SparcleSystem::begin`]), which records an undo log so any
/// prefix of a mutation sequence can be rolled back exactly; reads are
/// available here and via the owning system's accessors.
#[derive(Debug)]
pub struct SystemState {
    pub(crate) current_capacities: CapacityMap,
    pub(crate) gr_residual: CapacityMap,
    pub(crate) be_apps: Vec<PlacedBeApp>,
    pub(crate) gr_apps: Vec<PlacedGrApp>,
    pub(crate) priority_loads: PriorityLoads,
    pub(crate) constraints: IncrementalConstraints,
    pub(crate) next_id: u32,
    pub(crate) stats: StateStats,
}

impl SystemState {
    pub(crate) fn new(network: &Network) -> Self {
        let current_capacities = network.capacity_map();
        let gr_residual = current_capacities.clone();
        SystemState {
            current_capacities,
            gr_residual,
            be_apps: Vec::new(),
            gr_apps: Vec::new(),
            priority_loads: PriorityLoads::zeroed(network),
            constraints: IncrementalConstraints::new(),
            next_id: 0,
            stats: StateStats::default(),
        }
    }

    /// The network's current capacities (nominal until a fluctuation is
    /// applied).
    pub fn current_capacities(&self) -> &CapacityMap {
        &self.current_capacities
    }

    /// Current capacities minus all GR reservations.
    pub fn gr_residual(&self) -> &CapacityMap {
        &self.gr_residual
    }

    /// Admitted Best-Effort applications in admission order.
    pub fn be_apps(&self) -> &[PlacedBeApp] {
        &self.be_apps
    }

    /// Admitted Guaranteed-Rate applications in admission order.
    pub fn gr_apps(&self) -> &[PlacedGrApp] {
        &self.gr_apps
    }

    /// Work counters (see [`StateStats`]).
    pub fn stats(&self) -> &StateStats {
        &self.stats
    }

    /// The BE `allocated_rate` vector in admission order — the exact
    /// snapshot the undo log records before each solve so a rollback
    /// restores rates bitwise. Public so read-side consumers (the
    /// service plane's [`crate::StateSnapshot`], tests) can check the
    /// arity contract without relying on `debug_assert`s.
    pub fn snapshot_rates(&self) -> Vec<f64> {
        self.be_apps.iter().map(|a| a.allocated_rate).collect()
    }

    fn restore_rates(&mut self, rates: &[f64]) {
        debug_assert_eq!(rates.len(), self.be_apps.len(), "snapshot arity");
        for (entry, &rate) in self.be_apps.iter_mut().zip(rates) {
            entry.allocated_rate = rate;
        }
    }

    /// Re-derives one residual element from the canonical fold: copy
    /// the element's current capacity, then subtract every admitted GR
    /// path's load on it, in `gr_apps` order. This is the dense
    /// rebuild's arithmetic restricted to one element, so the result is
    /// bitwise identical to [`Self::rebuild_residual_full`].
    fn recompute_residual_element(&mut self, element: NetworkElement) {
        self.gr_residual
            .copy_element_from(&self.current_capacities, element);
        for gr in &self.gr_apps {
            for (path, rate) in &gr.paths {
                self.gr_residual
                    .subtract_load_element(element, &path.load, *rate);
            }
        }
    }

    pub(crate) fn rebuild_residual_full(&mut self) {
        let mut residual = self.current_capacities.clone();
        for gr in &self.gr_apps {
            for (path, rate) in &gr.paths {
                residual.subtract_load(&path.load, *rate);
            }
        }
        self.gr_residual = residual;
        self.stats.residual_full_recomputes += 1;
    }

    /// Restores the canonical residual value of `elements` after a
    /// structural change ([`StateMaintenance`] decides per-element
    /// replay vs. full rebuild; both produce bitwise-equal state).
    pub(crate) fn refresh_residual(&mut self, mode: StateMaintenance, elements: &[NetworkElement]) {
        match mode {
            StateMaintenance::Incremental => {
                for &e in elements {
                    self.recompute_residual_element(e);
                }
                self.stats.residual_element_updates += elements.len() as u64;
            }
            StateMaintenance::Scratch => self.rebuild_residual_full(),
        }
    }

    /// Re-derives one priority-load element from the canonical fold:
    /// the sum of the priorities of the BE applications whose combined
    /// load touches the element, in `be_apps` order — the same
    /// accumulation [`PriorityLoads::add_app`] performs.
    fn recompute_priority_element(&mut self, element: NetworkElement) {
        let mut total = 0.0;
        for be in &self.be_apps {
            // Same loaded-element criterion as `LoadMap::loaded_elements`.
            let touched = match element {
                NetworkElement::Ncp(id) => !be.combined_load.ncp(id).is_zero(),
                NetworkElement::Link(id) => be.combined_load.link(id) > 0.0,
            };
            if touched {
                total += be.priority;
            }
        }
        self.priority_loads.set_element(element, total);
    }

    pub(crate) fn rebuild_priorities_full(&mut self, network: &Network) {
        let mut loads = PriorityLoads::zeroed(network);
        for be in &self.be_apps {
            loads.add_app(&be.combined_load, be.priority);
        }
        self.priority_loads = loads;
    }

    /// Restores the canonical priority-load value of `elements` after a
    /// BE structural change.
    pub(crate) fn refresh_priorities(
        &mut self,
        network: &Network,
        mode: StateMaintenance,
        elements: &[NetworkElement],
    ) {
        match mode {
            StateMaintenance::Incremental => {
                for &e in elements {
                    self.recompute_priority_element(e);
                }
            }
            StateMaintenance::Scratch => self.rebuild_priorities_full(network),
        }
    }

    /// Applies one undo record. Returns the application entry popped
    /// off the admitted lists, if the record held one (so a failed
    /// readmit can hand ownership back to its caller).
    pub(crate) fn apply_undo(
        &mut self,
        op: UndoOp,
        network: &Network,
        mode: StateMaintenance,
    ) -> Option<DisplacedApp> {
        match op {
            UndoOp::PopGr => {
                let entry = self.gr_apps.pop().expect("undo log matches state");
                let touched = gr_touched_elements(&entry);
                self.refresh_residual(mode, &touched);
                Some(DisplacedApp::Gr(entry))
            }
            UndoOp::InsertGr(pos, entry) => {
                let touched = gr_touched_elements(&entry);
                self.gr_apps.insert(pos, entry);
                self.refresh_residual(mode, &touched);
                None
            }
            UndoOp::PopBe => {
                let entry = self.be_apps.pop().expect("undo log matches state");
                if mode == StateMaintenance::Incremental {
                    self.constraints.remove_app(self.be_apps.len());
                }
                let touched = entry.combined_load.loaded_elements();
                self.refresh_priorities(network, mode, &touched);
                Some(DisplacedApp::Be(entry))
            }
            UndoOp::InsertBe(pos, entry) => {
                let touched = entry.combined_load.loaded_elements();
                self.be_apps.insert(pos, entry);
                if mode == StateMaintenance::Incremental {
                    self.constraints
                        .insert_app(pos, &self.be_apps[pos].combined_load);
                }
                self.refresh_priorities(network, mode, &touched);
                None
            }
            UndoOp::RestoreRates(rates) => {
                self.restore_rates(&rates);
                None
            }
            UndoOp::RestoreNextId(id) => {
                self.next_id = id;
                None
            }
            UndoOp::RestoreCaps(old) => {
                self.current_capacities = old;
                self.rebuild_residual_full();
                None
            }
            UndoOp::RecomputeResidual(elements) => {
                self.refresh_residual(mode, &elements);
                None
            }
        }
    }
}

/// Union of the residual elements a GR entry's paths load, sorted and
/// deduplicated.
pub(crate) fn gr_touched_elements(entry: &PlacedGrApp) -> Vec<NetworkElement> {
    let mut out: Vec<NetworkElement> = entry
        .paths
        .iter()
        .flat_map(|(path, _)| path.load.loaded_elements())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One reversible step of a transaction, recorded *after* the forward
/// mutation it undoes. Undos run in reverse order; structural records
/// restore the canonical derived state of the elements they touch, so a
/// full unwind leaves the state bitwise equal to the pre-transaction
/// snapshot (see the module docs for the invariant).
#[derive(Debug)]
pub(crate) enum UndoOp {
    /// Undo a `gr_apps.push`: pop the entry (returning it) and restore
    /// the canonical residual of its touched elements.
    PopGr,
    /// Undo a `gr_apps.remove(pos)`: re-insert the stashed entry at its
    /// original position. Committing instead extracts the entry as a
    /// [`DisplacedApp`].
    InsertGr(usize, PlacedGrApp),
    /// Undo a `be_apps.push` (and its constraint column / priority
    /// fold-append).
    PopBe,
    /// Undo a `be_apps.remove(pos)` (see [`UndoOp::InsertGr`]).
    InsertBe(usize, PlacedBeApp),
    /// Restore every BE `allocated_rate` from a snapshot taken before
    /// the transaction's first solve.
    RestoreRates(Vec<f64>),
    /// Restore the id counter (undoes `fresh_id` / readmit id bumps).
    RestoreNextId(u32),
    /// Restore the previous capacity map wholesale (fluctuation undo);
    /// forces a full residual rebuild.
    RestoreCaps(CapacityMap),
    /// Re-derive the given residual elements from the canonical fold
    /// (undoes raw sparse subtractions made during GR path search and
    /// readmission before the entry exists in `gr_apps`).
    RecomputeResidual(Vec<NetworkElement>),
}

/// The undo log of one [`crate::SystemTxn`].
#[derive(Debug, Default)]
pub(crate) struct TxnLog {
    pub(crate) ops: Vec<UndoOp>,
}

impl TxnLog {
    pub(crate) fn push(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// A marker for partial unwinds: everything pushed after the
    /// savepoint can be undone without touching what came before.
    pub(crate) fn savepoint(&self) -> usize {
        self.ops.len()
    }
}
