//! Error types for task assignment and the system pipeline.

use sparcle_model::{CtId, ModelError, NcpId, TtId};
use std::error::Error;
use std::fmt;

/// Errors produced while assigning an application's tasks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AssignError {
    /// A transport task's endpoints are hosted on NCPs with no connecting
    /// path.
    NoRoute {
        /// The transport task that could not be routed.
        tt: TtId,
        /// Host of the upstream CT.
        from: NcpId,
        /// Host of the downstream CT.
        to: NcpId,
    },
    /// No NCP can host this CT while keeping every placed reachable CT
    /// routable.
    NoHostForCt(CtId),
    /// `finish` was called with CTs still unplaced.
    Incomplete {
        /// The first unplaced CT.
        ct: CtId,
    },
    /// An underlying model validation failed.
    Model(ModelError),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::NoRoute { tt, from, to } => {
                write!(f, "no path to route {tt} between {from} and {to}")
            }
            AssignError::NoHostForCt(ct) => {
                write!(f, "no feasible host for {ct}")
            }
            AssignError::Incomplete { ct } => {
                write!(f, "assignment is incomplete: {ct} is unplaced")
            }
            AssignError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl Error for AssignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AssignError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AssignError {
    fn from(e: ModelError) -> Self {
        AssignError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase() {
        let e = AssignError::NoHostForCt(CtId::new(3));
        assert!(e.to_string().starts_with("no feasible host"));
        let e = AssignError::Model(ModelError::EmptyNetwork);
        assert!(e.to_string().contains("model validation failed"));
    }

    #[test]
    fn model_error_converts() {
        let e: AssignError = ModelError::EmptyTaskGraph.into();
        assert!(matches!(e, AssignError::Model(_)));
        assert!(Error::source(&e).is_some());
    }
}
